"""Benchmark harness helpers (tables, ASCII charts, result capture)
and the wall-clock engine suite (:mod:`repro.bench.engine`)."""

from repro.bench.engine import check_regression, run_suite, write_report
from repro.bench.harness import (BenchTable, dump_tables, format_series,
                                 improvement_pct, replay)
from repro.bench.plot import ascii_bars, ascii_chart

__all__ = ["BenchTable", "ascii_bars", "ascii_chart", "check_regression",
           "dump_tables", "format_series", "improvement_pct", "replay",
           "run_suite", "write_report"]
