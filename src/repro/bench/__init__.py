"""Benchmark harness helpers (tables, ASCII charts, result capture)
and the wall-clock engine suite (:mod:`repro.bench.engine`)."""

from repro.bench.engine import check_regression, run_suite, write_report
from repro.bench.harness import BenchTable, format_series, improvement_pct
from repro.bench.plot import ascii_bars, ascii_chart

__all__ = ["BenchTable", "ascii_bars", "ascii_chart", "check_regression",
           "format_series", "improvement_pct", "run_suite", "write_report"]
