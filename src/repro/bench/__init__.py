"""Benchmark harness helpers (tables, ASCII charts, result capture)."""

from repro.bench.harness import BenchTable, format_series, improvement_pct
from repro.bench.plot import ascii_bars, ascii_chart

__all__ = ["BenchTable", "ascii_bars", "ascii_chart", "format_series",
           "improvement_pct"]
