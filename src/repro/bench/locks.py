"""Lock-design tournament benchmark + its CI regression gate.

Like :mod:`repro.bench.topo` these are *simulated* figures of merit —
fully deterministic for a given seed.  ``run_locks_suite`` runs the
five-design tournament (:func:`repro.dlm.tournament.lock_tournament`)
at each Zipf-skewed contention level, once more under crash chaos at
the middle level, and folds the results into a crossover table: which
design wins (highest grant throughput) at which contention level.

Every cell is replayed through the extended
:class:`~repro.verify.locks.LockOracle` inside ``lock_tournament`` —
a cell with any violation raises instead of reporting a number.

``repro locks bench`` writes ``BENCH_locks.json`` plus a timestamped
copy under ``benchmarks/results/``; ``check_locks_regression`` applies
the same 25 % drop rule as the engine/topo gates to each scheme's
throughput at the top contention level.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

from ..dlm.tournament import SCHEMES, lock_tournament
from .engine import RESULTS_DIR

__all__ = ["run_locks_suite", "check_locks_regression",
           "write_locks_report", "GUARDED_LOCKS_RATES",
           "DEFAULT_LOCKS_RESULT", "CONTENTION_LEVELS"]

#: canonical result file (repo root) — doubles as the committed baseline
DEFAULT_LOCKS_RESULT = "BENCH_locks.json"

#: Zipf-skewed contending-client counts (the contention axis)
CONTENTION_LEVELS = (64, 256, 1024)

#: Zipf skew for the lock-choice distribution
DEFAULT_ALPHA = 1.2

#: ``results.rates.<key>`` rates the CI gate guards against regression
GUARDED_LOCKS_RATES = tuple(
    ("rates", f"{scheme}_ops_per_s") for scheme in SCHEMES)

#: per-cell stats copied into the report (the full dict stays in the
#: tournament return value; the report keeps the comparable core)
_CELL_KEYS = ("grants", "failures", "ops_per_s", "p99_wait_us",
              "mean_wait_us", "max_wait_us", "jain", "max_chain",
              "violations", "events", "sim_now_us")


def _cell(stats: Dict[str, object]) -> Dict[str, object]:
    out = {k: stats[k] for k in _CELL_KEYS}
    out["ops_per_s"] = round(float(stats["ops_per_s"]), 1)
    for k in ("p99_wait_us", "mean_wait_us", "max_wait_us", "jain"):
        out[k] = round(float(stats[k]), 3)
    return out


def run_locks_suite(seed: int = 0,
                    levels: Sequence[int] = CONTENTION_LEVELS,
                    alpha: float = DEFAULT_ALPHA,
                    chaos_level: Optional[int] = None
                    ) -> Dict[str, object]:
    """Run the full tournament; returns a JSON-ready report.

    ``chaos_level`` picks the client count for the chaos column
    (default: the middle entry of ``levels``).
    """
    levels = tuple(int(n) for n in levels)
    if not levels:
        raise ValueError("need at least one contention level")
    if chaos_level is None:
        chaos_level = levels[len(levels) // 2]
    tournament: Dict[str, dict] = {}
    for n_clients in levels:
        for scheme in SCHEMES:
            stats = lock_tournament(scheme, n_clients=n_clients,
                                    alpha=alpha, chaos="none", seed=seed)
            tournament[f"{scheme}@{n_clients}"] = _cell(stats)
    chaos: Dict[str, dict] = {}
    for scheme in SCHEMES:
        stats = lock_tournament(scheme, n_clients=int(chaos_level),
                                alpha=alpha, chaos="crash", seed=seed)
        chaos[scheme] = _cell(stats)
    winners = {
        str(n): max(SCHEMES,
                    key=lambda s: tournament[f"{s}@{n}"]["ops_per_s"])
        for n in levels}
    top = levels[-1]
    rates = {f"{scheme}_ops_per_s": tournament[f"{scheme}@{top}"]
             ["ops_per_s"] for scheme in SCHEMES}
    return {
        "suite": "locks",
        "seed": seed,
        "alpha": alpha,
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "results": {
            "tournament": tournament,
            "chaos": chaos,
            "crossover": {"levels": list(levels), "winners": winners},
            "rates": rates,
        },
    }


def check_locks_regression(current: Dict[str, object],
                           baseline: Optional[Dict[str, object]],
                           threshold: float = 0.25) -> List[str]:
    """CI gate: guarded rates must stay within ``threshold`` of baseline.

    Returns human-readable failure lines (empty = pass); a missing or
    structurally alien baseline skips the gate.
    """
    if not isinstance(baseline, dict):
        return []
    base_results = baseline.get("results")
    cur_results = current.get("results", {})
    if not isinstance(base_results, dict):
        return []
    failures = []
    for bench, key in GUARDED_LOCKS_RATES:
        base = base_results.get(bench, {})
        cur = cur_results.get(bench, {})
        if not (isinstance(base, dict) and isinstance(cur, dict)):
            continue
        b, c = base.get(key), cur.get(key)
        if not (isinstance(b, (int, float)) and isinstance(c, (int, float))
                and b > 0):
            continue
        if c < b * (1.0 - threshold):
            failures.append(
                f"{bench}.{key}: {c:,.1f}/s is "
                f"{(1 - c / b) * 100:.1f}% below baseline {b:,.1f}/s "
                f"(threshold {threshold * 100:.0f}%)")
    return failures


def write_locks_report(report: Dict[str, object], out_path: str,
                       results_dir: Optional[str] = RESULTS_DIR
                       ) -> List[str]:
    """Write ``out_path`` plus a timestamped archive copy; returns paths."""
    paths = []
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    paths.append(out_path)
    if results_dir is not None:
        os.makedirs(results_dir, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        archive = os.path.join(results_dir, f"locks-{stamp}.json")
        with open(archive, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(archive)
    return paths
