"""Paper-style result tables for the benchmark suite.

Every figure/table bench builds a :class:`BenchTable`, prints it (so it
lands in ``bench_output.txt``) and can dump it as JSON next to the
pytest-benchmark data for later inspection.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

__all__ = ["BenchTable", "RENDERED", "format_series", "improvement_pct"]

#: every table ever ``show()``-n, in order — the benchmark conftest
#: replays these in the pytest terminal summary so they survive output
#: capture and land in bench_output.txt
RENDERED: List[str] = []


def improvement_pct(new: float, old: float) -> float:
    """Percent improvement of ``new`` over ``old``."""
    if old == 0:
        raise ValueError("baseline is zero")
    return 100.0 * (new / old - 1.0)


def format_series(xs: Sequence[float], ys: Sequence[float],
                  fmt: str = "{:.1f}") -> str:
    return "  ".join(f"{x}:{fmt.format(y)}" for x, y in zip(xs, ys))


class BenchTable:
    """Column-aligned table with a title and a paper reference."""

    def __init__(self, title: str, columns: Sequence[str],
                 paper_ref: str = ""):
        self.title = title
        self.columns = list(columns)
        self.paper_ref = paper_ref
        self.rows: List[List[object]] = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}")
        self.rows.append(list(values))

    def _cell(self, v) -> str:
        if isinstance(v, float):
            return f"{v:,.1f}"
        if isinstance(v, int):
            return f"{v:,}"
        return str(v)

    def render(self) -> str:
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [max(len(col), *(len(r[i]) for r in cells))
                  if cells else len(col)
                  for i, col in enumerate(self.columns)]
        lines = []
        bar = "=" * (sum(widths) + 2 * (len(widths) - 1))
        lines.append(bar)
        header = self.title
        if self.paper_ref:
            header += f"   [{self.paper_ref}]"
        lines.append(header)
        lines.append(bar)
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(self.columns, widths)))
        lines.append("-" * len(bar))
        for row in cells:
            lines.append("  ".join(c.rjust(w)
                                   for c, w in zip(row, widths)))
        lines.append(bar)
        return "\n".join(lines)

    def show(self) -> None:
        rendered = self.render()
        RENDERED.append(rendered)
        print()
        print(rendered)

    def to_dict(self) -> Dict[str, object]:
        return {"title": self.title, "paper_ref": self.paper_ref,
                "columns": self.columns, "rows": self.rows}

    def save_json(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
