"""Paper-style result tables for the benchmark suite.

Every figure/table bench builds a :class:`BenchTable`, prints it (so it
lands in ``bench_output.txt``) and can dump it as JSON next to the
pytest-benchmark data for later inspection.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterable, List, Sequence

__all__ = ["BenchTable", "RENDERED", "dump_tables", "format_series",
           "improvement_pct", "replay"]

#: every table ever ``show()``-n, in order — the benchmark conftest
#: replays these in the pytest terminal summary so they survive output
#: capture and land in bench_output.txt
RENDERED: List[str] = []


def improvement_pct(new: float, old: float) -> float:
    """Percent improvement of ``new`` over ``old``."""
    if old == 0:
        raise ValueError("baseline is zero")
    return 100.0 * (new / old - 1.0)


def format_series(xs: Sequence[float], ys: Sequence[float],
                  fmt: str = "{:.1f}") -> str:
    return "  ".join(f"{x}:{fmt.format(y)}" for x, y in zip(xs, ys))


class BenchTable:
    """Column-aligned table with a title and a paper reference."""

    def __init__(self, title: str, columns: Sequence[str],
                 paper_ref: str = ""):
        self.title = title
        self.columns = list(columns)
        self.paper_ref = paper_ref
        self.rows: List[List[object]] = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}")
        self.rows.append(list(values))

    def _cell(self, v) -> str:
        if isinstance(v, float):
            return f"{v:,.1f}"
        if isinstance(v, int):
            return f"{v:,}"
        return str(v)

    def render(self) -> str:
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [max(len(col), *(len(r[i]) for r in cells))
                  if cells else len(col)
                  for i, col in enumerate(self.columns)]
        lines = []
        bar = "=" * (sum(widths) + 2 * (len(widths) - 1))
        lines.append(bar)
        header = self.title
        if self.paper_ref:
            header += f"   [{self.paper_ref}]"
        lines.append(header)
        lines.append(bar)
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(self.columns, widths)))
        lines.append("-" * len(bar))
        for row in cells:
            lines.append("  ".join(c.rjust(w)
                                   for c, w in zip(row, widths)))
        lines.append(bar)
        return "\n".join(lines)

    def show(self) -> Dict[str, object]:
        """Print + register the table; returns :meth:`to_dict`.

        The return value is the table's serializable form so callers in
        worker processes can ship the table across a process boundary
        (module-global ``RENDERED`` only exists per process) and the
        parent can re-register it with :func:`replay`.
        """
        rendered = self.render()
        RENDERED.append(rendered)
        print()
        print(rendered)
        return self.to_dict()

    def to_dict(self) -> Dict[str, object]:
        return {"title": self.title, "paper_ref": self.paper_ref,
                "columns": self.columns, "rows": self.rows}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchTable":
        table = cls(data["title"], data["columns"],
                    paper_ref=data.get("paper_ref", ""))
        for row in data.get("rows", []):
            table.add(*row)
        return table

    def save_json(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)


def replay(tables: Iterable[Dict[str, object]]) -> List[BenchTable]:
    """Rebuild + ``show()`` tables serialized by another process.

    Entry point for the lab merge step: worker processes return
    ``table.show()`` dicts in their run records, and the parent replays
    them here so they land in this process's ``RENDERED`` (and therefore
    in the pytest terminal summary / bench_output.txt).
    """
    rebuilt = []
    for data in tables:
        table = BenchTable.from_dict(data)
        table.show()
        rebuilt.append(table)
    return rebuilt


def _slug(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug or "table"


def dump_tables(tables: Iterable[BenchTable], out_dir: str) -> List[str]:
    """Write one ``<title-slug>.json`` per table under ``out_dir``.

    Two tables with the same title get ``-2``, ``-3``… suffixes instead
    of silently overwriting each other (the old per-title dump path lost
    all but the last table of a multi-table figure).
    """
    os.makedirs(out_dir, exist_ok=True)
    used: Dict[str, int] = {}
    paths = []
    for table in tables:
        base = _slug(table.title)
        n = used.get(base, 0) + 1
        used[base] = n
        name = base if n == 1 else f"{base}-{n}"
        path = os.path.join(out_dir, f"{name}.json")
        table.save_json(path)
        paths.append(path)
    return paths
