"""Wall-clock engine benchmarks + the CI perf gate.

Unlike the figure runners (which report *simulated* microseconds), this
suite measures how fast the simulator itself executes on the host:

* ``events``       — raw kernel throughput (agenda entries / second) on
                     an interleaved-timer workload.
* ``small_verbs``  — one-sided small-verb round trips / second on a
                     2-node InfiniBand cluster; also re-runs the same
                     workload with the naive kernel paths
                     (``REPRO_SLOW_KERNEL=1`` semantics) to report
                     ``speedup_vs_slow`` and assert both modes agree on
                     the final simulated clock.
* ``lock_ops``     — N-CoSED exclusive acquire/release pairs / second.
* ``scenario_ddss``— wall seconds for the packaged ``ddss``
                     observability scenario end to end (tracing,
                     metrics and sanitizers on).

``run_suite`` returns a JSON-ready dict; the ``repro bench`` subcommand
writes it to ``BENCH_engine.json`` plus a timestamped copy under
``benchmarks/results/``, and ``check_regression`` implements the CI
gate: fail when a guarded rate drops more than 25 % below the committed
baseline (missing baseline ⇒ gate skipped).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional

__all__ = ["run_suite", "check_regression", "write_report",
           "GUARDED_RATES", "DEFAULT_RESULT", "RESULTS_DIR"]

#: canonical result file (repo root) — doubles as the committed baseline
DEFAULT_RESULT = "BENCH_engine.json"
#: per-run archive directory
RESULTS_DIR = os.path.join("benchmarks", "results")

#: ``results.<bench>.<key>`` rates the CI gate guards against regression
GUARDED_RATES = (
    ("events", "events_per_sec"),
    ("small_verbs", "verbs_per_sec"),
    ("lock_ops", "ops_per_sec"),
    ("agenda", "uniform_entries_per_sec"),
    ("agenda", "narrow_band_entries_per_sec"),
    ("agenda", "burst_entries_per_sec"),
)


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------

def _bench_events(n_events: int) -> Dict[str, object]:
    """Kernel-only: four interleaved timer processes, no net layer."""
    from repro.sim import Environment

    env = Environment()
    per_proc = n_events // 4

    def ticker(env, period):
        for _ in range(per_proc):
            yield env.timeout(period)

    for period in (1.0, 2.5, 3.0, 7.0):
        env.process(ticker(env, period))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    fired = 4 * per_proc
    return {
        "n": fired,
        "wall_s": round(wall, 4),
        "events_per_sec": round(fired / wall, 1),
    }


def _verb_workload(n_iters: int, slow: bool):
    """The small-verb loop: cas + faa + read + write per iteration."""
    from repro.net import Cluster

    if slow:
        prev = os.environ.get("REPRO_SLOW_KERNEL")
        os.environ["REPRO_SLOW_KERNEL"] = "1"
    try:
        cluster = Cluster(n_nodes=2, seed=0)
    finally:
        if slow:
            if prev is None:
                del os.environ["REPRO_SLOW_KERNEL"]
            else:
                os.environ["REPRO_SLOW_KERNEL"] = prev
    region = cluster.nodes[1].memory.register(4096, name="bench")
    key = region.remote_key()
    nic = cluster.nodes[0].nic
    env = cluster.env

    def client(env):
        for _ in range(n_iters):
            yield nic.cas_key(key, 0, 0, 1)
            yield nic.faa_key(key, 8, 1)
            yield nic.read_key(key, 16, 8)
            yield nic.write_key(key, b"12345678", 24)

    env.process(client(env))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return 4 * n_iters / wall, env.now


def _bench_small_verbs(n_iters: int) -> Dict[str, object]:
    """Verb round trips per second, fast kernel vs naive kernel.

    ``REPRO_SLOW_KERNEL`` is read per Environment at construction, so
    both modes run in this process; ``sim_now_match`` certifies they
    finished at the identical simulated instant (the cheap half of the
    equivalence bar — the byte-identical-export half lives in
    ``tests/sim/test_fastpath.py``).
    """
    fast_rate, fast_now = _verb_workload(n_iters, slow=False)
    slow_rate, slow_now = _verb_workload(n_iters, slow=True)
    return {
        "n": 4 * n_iters,
        "verbs_per_sec": round(fast_rate, 1),
        "verbs_per_sec_slow": round(slow_rate, 1),
        "speedup_vs_slow": round(fast_rate / slow_rate, 2),
        "sim_now_match": fast_now == slow_now,
    }


def _agenda_workload(mix: str, n_entries: int, heap: bool) -> float:
    """Raw agenda entries/s: ``_schedule_call`` noop chains, no processes.

    Measures the agenda data structure itself (ladder vs binary heap)
    without generator-resume overhead.  ``mix`` shapes the delay
    distribution; 4096 outstanding entries in the timed mixes push the
    ladder past its direct-mode threshold into bucket-window mode.
    """
    import random

    from repro.sim import Environment

    prev = os.environ.get("REPRO_HEAP_AGENDA")
    if heap:
        os.environ["REPRO_HEAP_AGENDA"] = "1"
    else:
        os.environ.pop("REPRO_HEAP_AGENDA", None)
    try:
        env = Environment()
    finally:
        if prev is None:
            os.environ.pop("REPRO_HEAP_AGENDA", None)
        else:
            os.environ["REPRO_HEAP_AGENDA"] = prev

    sched = env._schedule_call
    rng = random.Random(0xA6E2DA).random
    fired = [0]
    left = [n_entries]

    if mix in ("uniform", "narrow_band"):
        lo, span = (0.0, 1000.0) if mix == "uniform" else (0.5, 1.5)

        def fire():
            fired[0] += 1
            left[0] -= 1
            if left[0] > 0:
                sched(env._now + lo + rng() * span, fire)

        for _ in range(4096):
            sched(lo + rng() * span, fire)
    elif mix == "burst":
        # 64 completions at one shared instant per round — the
        # same-instant batch-dispatch shape of the NIC fast verbs.
        def fire():
            fired[0] += 1
            left[0] -= 1

        def round_end():
            fired[0] += 1
            left[0] -= 1
            if left[0] > 0:
                t = env._now + 5.0
                for _ in range(63):
                    sched(t, fire)
                sched(t, round_end)

        for _ in range(63):
            sched(5.0, fire)
        sched(5.0, round_end)
    else:  # pragma: no cover - caller passes a fixed mix list
        raise ValueError(f"unknown agenda mix: {mix!r}")

    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return fired[0] / wall


def _bench_agenda(n_entries: int) -> Dict[str, object]:
    """Agenda microbenchmark: ladder vs heap on three delay mixes."""
    out: Dict[str, object] = {"n": n_entries}
    for mix in ("uniform", "narrow_band", "burst"):
        ladder = _agenda_workload(mix, n_entries, heap=False)
        heap = _agenda_workload(mix, n_entries, heap=True)
        out[f"{mix}_entries_per_sec"] = round(ladder, 1)
        out[f"{mix}_heap_entries_per_sec"] = round(heap, 1)
        out[f"{mix}_ladder_speedup"] = round(ladder / heap, 2)
    return out


def _bench_lock_ops(n_ops: int) -> Dict[str, object]:
    """N-CoSED exclusive acquire/release pairs per second (4 clients)."""
    from repro.net import Cluster, NetworkParams
    from repro.dlm import LockMode, NCoSEDManager

    cluster = Cluster(n_nodes=5, params=NetworkParams.infiniband(),
                      seed=0)
    manager = NCoSEDManager(cluster, n_locks=16)
    env = cluster.env
    per_client = n_ops // 4

    def worker(env, client, lock_id):
        for _ in range(per_client):
            yield client.acquire(lock_id, LockMode.EXCLUSIVE)
            yield client.release(lock_id)

    for i in range(4):
        # distinct locks: measures the uncontended verb path, not
        # queueing policy (cascades are Fig 5's subject)
        env.process(worker(env, manager.client(cluster.nodes[i + 1]), i))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    done = 4 * per_client
    return {
        "n": done,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(done / wall, 1),
    }


def _bench_scenario() -> Dict[str, object]:
    """End-to-end wall time of the packaged ``ddss`` obs scenario."""
    from repro.obs.scenarios import run_scenario

    t0 = time.perf_counter()
    obs = run_scenario("ddss", seed=0, sanitize=True, strict=False)
    wall = time.perf_counter() - t0
    return {
        "wall_s": round(wall, 4),
        "sim_us": obs.env.now,
        "trace_events": obs.trace.emitted,
    }


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------

def run_suite(quick: bool = False, workers: int = 0) -> Dict[str, object]:
    """Run every engine benchmark; returns the JSON-ready report.

    The suite dispatches through the lab runner (an ephemeral in-memory
    store): ``workers=0`` executes in-process exactly as before, while
    ``workers=N`` fans the four benchmarks out over a process pool.
    Wall-clock rates measured with concurrent workers share the host
    with each other — only compare runs at the same ``workers`` setting
    (the CI gate always uses 0).
    """
    from repro.lab import Runner, Sweep

    sweep = Sweep(
        name="engine", scenario="repro.lab.scenarios:engine_bench",
        grid={"bench": ["events", "agenda", "small_verbs", "lock_ops",
                        "scenario_ddss"]},
        base={"scale": 1 if quick else 4})
    runner = Runner(sweep, workers=workers)
    report = runner.run()
    if report["failed"]:
        raise RuntimeError(
            f"engine benchmarks failed: {report['failures']}")
    results = {r["params"]["bench"]: r["result"]
               for r in runner.store.records()}
    return {
        "schema": 1,
        "suite": "engine",
        "quick": quick,
        "workers": workers,
        "python": platform.python_version(),
        "results": {
            "events": results["events"],
            "agenda": results["agenda"],
            "small_verbs": results["small_verbs"],
            "lock_ops": results["lock_ops"],
            "scenario_ddss": results["scenario_ddss"],
        },
    }


def check_regression(current: Dict[str, object],
                     baseline: Optional[Dict[str, object]],
                     threshold: float = 0.25) -> List[str]:
    """CI gate: guarded rates must stay within ``threshold`` of baseline.

    Returns human-readable failure lines (empty = pass).  A ``None`` or
    structurally alien baseline skips the gate — first runs and schema
    bumps must not brick CI.
    """
    if not isinstance(baseline, dict):
        return []
    base_results = baseline.get("results")
    cur_results = current.get("results", {})
    if not isinstance(base_results, dict):
        return []
    failures = []
    for bench, key in GUARDED_RATES:
        base = base_results.get(bench, {})
        cur = cur_results.get(bench, {})
        if not (isinstance(base, dict) and isinstance(cur, dict)):
            continue
        b, c = base.get(key), cur.get(key)
        if not (isinstance(b, (int, float)) and isinstance(c, (int, float))
                and b > 0):
            continue
        if c < b * (1.0 - threshold):
            failures.append(
                f"{bench}.{key}: {c:,.0f}/s is "
                f"{(1 - c / b) * 100:.1f}% below baseline {b:,.0f}/s "
                f"(threshold {threshold * 100:.0f}%)")
    return failures


def write_report(report: Dict[str, object], out_path: str,
                 results_dir: Optional[str] = RESULTS_DIR) -> List[str]:
    """Write ``out_path`` plus a timestamped archive copy; returns paths."""
    paths = []
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    paths.append(out_path)
    if results_dir is not None:
        os.makedirs(results_dir, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        archive = os.path.join(results_dir, f"engine-{stamp}.json")
        with open(archive, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(archive)
    return paths
