"""Topology benchmarks + their CI regression gate.

Unlike :mod:`repro.bench.engine` (host wall-clock), these report
*simulated* figures of merit for the rack/spine fabric, so the numbers
are fully deterministic for a given seed:

* ``verb_latency``     — one-sided read RTT within a rack vs across the
                         oversubscribed spine (microseconds, plus the
                         derived ops/s rates the gate guards).
* ``lock_throughput``  — N-CoSED acquire/release throughput with every
                         lock homed on one node vs consistent-hash
                         sharded across the membership.

``run_topo_suite`` returns a JSON-ready dict; ``repro topo bench``
writes it to ``BENCH_topo.json`` plus a timestamped copy under
``benchmarks/results/``, and ``check_topo_regression`` applies the same
25 % drop rule as the engine gate to the guarded rates.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional

from .engine import RESULTS_DIR

__all__ = ["run_topo_suite", "check_topo_regression", "write_topo_report",
           "GUARDED_TOPO_RATES", "DEFAULT_TOPO_RESULT"]

#: canonical result file (repo root) — doubles as the committed baseline
DEFAULT_TOPO_RESULT = "BENCH_topo.json"

#: ``results.<bench>.<key>`` rates the CI gate guards against regression
#: (latencies are guarded through their inverted ops/s forms so "lower
#: rate = regression" holds uniformly)
GUARDED_TOPO_RATES = (
    ("verb_latency", "intra_rack_ops_per_s"),
    ("verb_latency", "cross_rack_ops_per_s"),
    ("lock_throughput", "single_home_ops_per_s"),
    ("lock_throughput", "sharded_ops_per_s"),
)


def run_topo_suite(seed: int = 0) -> Dict[str, object]:
    """Run both topology benchmarks; returns a JSON-ready report."""
    from ..topo.scenarios import measure_lock_throughput, measure_verb_latency

    verbs = dict(measure_verb_latency(seed=seed))
    for k in ("intra_rack", "cross_rack"):
        us = verbs[f"{k}_us"]
        verbs[f"{k}_ops_per_s"] = round(1e6 / us, 1) if us > 0 else 0.0
    verbs["cross_over_intra"] = round(
        verbs["cross_rack_us"] / verbs["intra_rack_us"], 3)
    locks = dict(measure_lock_throughput(seed=seed))
    return {
        "suite": "topo",
        "seed": seed,
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "results": {"verb_latency": verbs, "lock_throughput": locks},
    }


def check_topo_regression(current: Dict[str, object],
                          baseline: Optional[Dict[str, object]],
                          threshold: float = 0.25) -> List[str]:
    """CI gate: guarded rates must stay within ``threshold`` of baseline.

    Returns human-readable failure lines (empty = pass); a missing or
    structurally alien baseline skips the gate.
    """
    if not isinstance(baseline, dict):
        return []
    base_results = baseline.get("results")
    cur_results = current.get("results", {})
    if not isinstance(base_results, dict):
        return []
    failures = []
    for bench, key in GUARDED_TOPO_RATES:
        base = base_results.get(bench, {})
        cur = cur_results.get(bench, {})
        if not (isinstance(base, dict) and isinstance(cur, dict)):
            continue
        b, c = base.get(key), cur.get(key)
        if not (isinstance(b, (int, float)) and isinstance(c, (int, float))
                and b > 0):
            continue
        if c < b * (1.0 - threshold):
            failures.append(
                f"{bench}.{key}: {c:,.1f}/s is "
                f"{(1 - c / b) * 100:.1f}% below baseline {b:,.1f}/s "
                f"(threshold {threshold * 100:.0f}%)")
    return failures


def write_topo_report(report: Dict[str, object], out_path: str,
                      results_dir: Optional[str] = RESULTS_DIR) -> List[str]:
    """Write ``out_path`` plus a timestamped archive copy; returns paths."""
    paths = []
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    paths.append(out_path)
    if results_dir is not None:
        os.makedirs(results_dir, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        archive = os.path.join(results_dir, f"topo-{stamp}.json")
        with open(archive, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(archive)
    return paths
