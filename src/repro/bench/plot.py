"""ASCII line/bar charts for bench output (paper-figure flavour).

Terminal-friendly rendering so ``bench_output.txt`` carries not just
tables but the *shape* of each figure — crossovers and slopes are
visible at a glance without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["ascii_chart", "ascii_bars"]

_MARKS = "*o+x#@%&"


def ascii_chart(series: Dict[str, Sequence[float]],
                x_labels: Sequence, height: int = 12,
                title: str = "") -> str:
    """Multi-series line chart; one column per x position."""
    if not series:
        raise ValueError("no series to plot")
    names = list(series)
    n_points = len(x_labels)
    for name in names:
        if len(series[name]) != n_points:
            raise ValueError(f"series {name!r} length != x labels")
    all_vals = [v for vs in series.values() for v in vs]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    # grid[row][col]; row 0 is the top
    width = n_points * 6
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        mark = _MARKS[si % len(_MARKS)]
        for pi, value in enumerate(series[name]):
            row = height - 1 - int((value - lo) / span * (height - 1))
            col = pi * 6 + 2
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:>10.1f} |"
        elif r == height - 1:
            label = f"{lo:>10.1f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    xaxis = " " * 12
    for x in x_labels:
        xaxis += f"{str(x):<6}"
    lines.append(xaxis)
    legend = "  ".join(f"{_MARKS[i % len(_MARKS)]}={name}"
                       for i, name in enumerate(names))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_bars(values: Dict[str, float], width: int = 44,
               title: str = "", fmt: str = "{:,.1f}") -> str:
    """Horizontal bar chart."""
    if not values:
        raise ValueError("no values to plot")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("all values non-positive")
    name_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{name:>{name_w}} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
