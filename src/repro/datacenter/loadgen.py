"""Closed-loop client population.

``n_sessions`` concurrent sessions live on the client node; each one
repeatedly draws a document from the Zipf stream, dispatches it to a
proxy (round robin by default, or a pluggable picker for the
monitoring-driven load balancer), and waits for the full response before
issuing the next request.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from repro.errors import ConfigError
from repro.net.node import Node

from repro.datacenter.server import ProxyServer
from repro.workloads.zipf import ZipfGenerator

__all__ = ["ClosedLoopClients"]

#: client->proxy request size on the wire
REQ_BYTES = 200


class ClosedLoopClients:
    """Session pool driving the proxy tier."""

    def __init__(self, client_node: Node, proxies: Sequence[ProxyServer],
                 zipf: ZipfGenerator, n_sessions: int = 32,
                 think_us: float = 0.0,
                 picker: Optional[Callable[[int], int]] = None):
        if not proxies:
            raise ConfigError("need at least one proxy server")
        if n_sessions <= 0:
            raise ConfigError("need at least one session")
        self.node = client_node
        self.env = client_node.env
        self.proxies = list(proxies)
        self.zipf = zipf
        self.n_sessions = n_sessions
        self.think_us = think_us
        self._rr = itertools.count()
        self._picker = picker or (lambda _doc: next(self._rr)
                                  % len(self.proxies))
        self.issued = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            raise ConfigError("clients already started")
        self._running = True
        for i in range(self.n_sessions):
            self.env.process(self._session(i), name=f"client-session-{i}")

    def _session(self, idx: int):
        # de-synchronize session starts slightly
        yield self.env.timeout(idx * 3.0)
        while True:
            doc = self.zipf.next()
            proxy = self.proxies[self._picker(doc)]
            self.issued += 1
            yield self.node.fabric.transfer(self.node.id,
                                            proxy.node.id, REQ_BYTES)
            yield proxy.handle(doc, self.node.id)
            if self.think_us:
                yield self.env.timeout(self.think_us)
