"""One-call assembly of a complete simulated data-center.

::

    dc = DataCenter(n_proxies=2, n_app=2, scheme="HYBCC",
                    n_docs=1500, doc_bytes=8192, alpha=0.8)
    tps = dc.run_tps(warmup_us=2e5, measure_us=1e6)
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.net.cluster import Cluster
from repro.net.params import NetworkParams

from repro.cache.schemes import SCHEMES
from repro.datacenter.backend import BackendTier
from repro.datacenter.loadgen import ClosedLoopClients
from repro.datacenter.metrics import DataCenterMetrics
from repro.datacenter.server import ProxyServer
from repro.workloads.filesets import FileSet
from repro.workloads.zipf import ZipfGenerator

__all__ = ["DataCenter"]


class DataCenter:
    """Client node + proxy tier + app/backend tier, fully wired."""

    def __init__(self, n_proxies: int = 2, n_app: int = 2,
                 scheme: str = "AC",
                 n_docs: int = 1500, doc_bytes: int = 8192,
                 alpha: float = 0.8,
                 cache_bytes: int = 4 * 1024 * 1024,
                 n_sessions: int = 48,
                 n_workers: int = 16,
                 params: Optional[NetworkParams] = None,
                 seed: int = 0,
                 fileset: Optional[FileSet] = None):
        if scheme not in SCHEMES:
            raise ConfigError(f"unknown scheme {scheme!r}; "
                              f"pick from {sorted(SCHEMES)}")
        names = (["client"]
                 + [f"proxy{i}" for i in range(n_proxies)]
                 + [f"app{i}" for i in range(n_app)])
        self.cluster = Cluster(names=names, params=params, seed=seed,
                               cores_per_node=2)
        self.env = self.cluster.env
        self.client_node = self.cluster.nodes[0]
        self.proxy_nodes = self.cluster.nodes[1:1 + n_proxies]
        self.app_nodes = self.cluster.nodes[1 + n_proxies:]
        self.fileset = fileset or FileSet(n_docs, doc_bytes, seed=seed)
        self.scheme = SCHEMES[scheme](
            self.proxy_nodes, self.fileset, cache_bytes,
            extra_nodes=self.app_nodes)
        self.backend = BackendTier(self.app_nodes, self.fileset)
        self.metrics = DataCenterMetrics(self.env)
        self.servers = [
            ProxyServer(node, self.scheme, self.backend, self.metrics,
                        n_workers=n_workers)
            for node in self.proxy_nodes
        ]
        zipf = ZipfGenerator(self.fileset.n_docs, alpha,
                             self.cluster.rng.get("zipf"))
        self.clients = ClosedLoopClients(self.client_node, self.servers,
                                         zipf, n_sessions=n_sessions)

    def run_tps(self, warmup_us: float = 200_000.0,
                measure_us: float = 1_000_000.0) -> float:
        """Warm the caches, measure steady-state TPS."""
        self.clients.start()
        self.env.run(until=self.env.now + warmup_us)
        self.metrics.start_window()
        self.env.run(until=self.env.now + measure_us)
        return self.metrics.tps()
