"""Throughput/latency accounting for data-center runs.

The latency summary is a :class:`repro.obs.metrics.LatencyHistogram`, so
data-center benches and the observability layer report quantiles through
the same nearest-rank machinery (``repro.sim.trace.rank_of``).
"""

from __future__ import annotations

from repro.obs.metrics import LatencyHistogram

__all__ = ["DataCenterMetrics"]


class DataCenterMetrics:
    """Completed-transaction counters and latency summary."""

    def __init__(self, env):
        self.env = env
        self.completed = 0
        self.latency = LatencyHistogram("latency_us")
        self._t0 = env.now

    def start_window(self) -> None:
        """Reset the measurement window (e.g. after warm-up)."""
        self.completed = 0
        self.latency = LatencyHistogram("latency_us")
        self._t0 = self.env.now

    def record(self, started_at: float) -> None:
        self.completed += 1
        self.latency.observe(self.env.now - started_at)

    @property
    def elapsed_us(self) -> float:
        return self.env.now - self._t0

    def tps(self) -> float:
        """Transactions per *second* over the current window."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed / (self.elapsed_us / 1e6)

    def mean_latency_us(self) -> float:
        return self.latency.tally.mean

    def p99_latency_us(self) -> float:
        """Conservative (bucket upper bound) 99th-percentile latency."""
        if self.latency.count == 0:
            return 0.0
        return self.latency.percentile(99)
