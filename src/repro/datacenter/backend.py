"""The app/backend tier: origin of documents on a cache miss.

A miss costs a request message to an app node, *dynamic content
generation* on that node's shared CPU (base + per-byte work — the
expensive part, cf. the dynamic-content workloads the paper targets),
and the transfer of the document back to the proxy.  App nodes are
selected round-robin; their processor-sharing CPUs make the tier
saturate under miss-heavy load, which is what cooperative caching is
protecting against.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.errors import ConfigError
from repro.net.node import Node
from repro.sim import Event

from repro.workloads.filesets import FileSet

__all__ = ["BackendTier"]

#: dynamic-generation CPU cost: base + per-byte (µs)
GEN_BASE_US = 250.0
GEN_PER_BYTE_US = 0.01
#: request message size proxy -> app
REQ_BYTES = 256


class BackendTier:
    """Round-robin pool of app/backend nodes serving origin fetches."""

    def __init__(self, nodes: Sequence[Node], fileset: FileSet,
                 gen_base_us: float = GEN_BASE_US,
                 gen_per_byte_us: float = GEN_PER_BYTE_US):
        if not nodes:
            raise ConfigError("backend tier needs at least one node")
        self.nodes = list(nodes)
        self.fileset = fileset
        self.env = self.nodes[0].env
        self.gen_base_us = gen_base_us
        self.gen_per_byte_us = gen_per_byte_us
        self._rr = itertools.count()
        self.requests = 0

    def fetch(self, proxy: Node, doc: int) -> Event:
        return self.env.process(self.fetch_gen(proxy, doc),
                                name=f"backend-fetch@{proxy.name}")

    def fetch_gen(self, proxy: Node, doc: int):
        """Generator: full origin fetch; returns the document token."""
        self.requests += 1
        app = self.nodes[next(self._rr) % len(self.nodes)]
        size = self.fileset.size(doc)
        fabric = proxy.fabric
        # request to the app server
        yield fabric.transfer(proxy.id, app.id, REQ_BYTES)
        # dynamic content generation on the app node's shared CPU
        yield app.cpu.run(self.gen_base_us + size * self.gen_per_byte_us,
                          name="backend-gen")
        # response back to the proxy
        yield fabric.transfer(app.id, proxy.id, size)
        return self.fileset.token(doc)

    def mean_load(self) -> float:
        return sum(n.cpu.load for n in self.nodes) / len(self.nodes)
