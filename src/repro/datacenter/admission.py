"""Admission control — the overload-control service the paper's
introduction lists among required data-center services.

A proxy-side controller consults a monitoring scheme's view of the
backend tier before accepting work.  When the mean reported backend
load exceeds ``high_water`` the controller sheds new requests (clients
get an immediate reject instead of joining a hopeless queue) until load
falls back under ``low_water``.  With an RDMA monitor the load view is
microseconds fresh, so the controller tracks overload onsets instead of
oscillating on stale data.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.monitor.schemes import MonitorBase

__all__ = ["AdmissionController"]


class AdmissionController:
    """Hysteresis-based request shedding driven by a monitor."""

    def __init__(self, monitor: MonitorBase,
                 high_water: float = 12.0, low_water: float = 8.0):
        if low_water >= high_water:
            raise ConfigError("low_water must be below high_water")
        self.monitor = monitor
        self.env = monitor.env
        self.high_water = high_water
        self.low_water = low_water
        self.shedding = False
        self.accepted = 0
        self.rejected = 0

    def _mean_load(self) -> float:
        ids = self.monitor.back_ids
        return sum(self.monitor.load_index(b) for b in ids) / len(ids)

    def admit(self) -> bool:
        """Accept or shed one incoming request (uses the current view)."""
        load = self._mean_load()
        if self.shedding:
            if load <= self.low_water:
                self.shedding = False
        elif load >= self.high_water:
            self.shedding = True
        if self.shedding:
            self.rejected += 1
            return False
        self.accepted += 1
        return True

    @property
    def reject_ratio(self) -> float:
        total = self.accepted + self.rejected
        return self.rejected / total if total else 0.0
