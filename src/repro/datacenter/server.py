"""Proxy-tier web server.

One :class:`ProxyServer` per proxy node: a bounded worker pool (Apache
worker model) that parses the request on the shared CPU, consults the
cooperative-cache scheme, falls back to the backend tier on a miss
(admitting the document afterwards), and streams the response to the
client over the fabric.
"""

from __future__ import annotations

from repro.errors import CacheError, ConfigError
from repro.net.node import Node
from repro.sim import Event, Resource

from repro.cache.base import CoopCacheBase
from repro.datacenter.backend import BackendTier
from repro.datacenter.metrics import DataCenterMetrics

__all__ = ["ProxyServer"]

#: request parsing / header handling on the proxy CPU (µs)
PARSE_US = 8.0
#: response assembly CPU per byte (checksums, headers; µs/B)
SEND_CPU_US_PER_BYTE = 0.0002


class ProxyServer:
    """Worker-pool server bound to one proxy node."""

    def __init__(self, node: Node, scheme: CoopCacheBase,
                 backend: BackendTier, metrics: DataCenterMetrics,
                 n_workers: int = 16, verify_tokens: bool = True):
        if n_workers <= 0:
            raise ConfigError("need at least one worker")
        self.node = node
        self.env = node.env
        self.scheme = scheme
        self.backend = backend
        self.metrics = metrics
        self.workers = Resource(self.env, capacity=n_workers)
        self.verify_tokens = verify_tokens
        self.served = 0
        self.queue_peak = 0

    def handle(self, doc: int, client_node_id: int) -> Event:
        """Serve one request; the event fires when the response has been
        delivered to the client."""
        return self.env.process(self._handle(doc, client_node_id),
                                name=f"serve@{self.node.name}")

    def _handle(self, doc: int, client_node_id: int):
        started = self.env.now
        self.queue_peak = max(self.queue_peak, self.workers.queue_len)
        yield self.workers.acquire()
        try:
            yield self.node.cpu.run(PARSE_US, name="parse")
            result = yield from self.scheme.fetch_gen(self.node, doc)
            if result.source == "miss":
                token = yield from self.backend.fetch_gen(self.node, doc)
                yield from self.scheme.admit_gen(self.node, doc)
            else:
                token = result.token
            if self.verify_tokens and not self.scheme.fileset.verify(
                    doc, token):
                raise CacheError(
                    f"cache served wrong content for doc {doc}")
            size = self.scheme.fileset.size(doc)
            yield self.node.cpu.run(size * SEND_CPU_US_PER_BYTE,
                                    name="respond")
            yield self.node.fabric.transfer(self.node.id, client_node_id,
                                            size)
        finally:
            self.workers.release()
        self.served += 1
        self.metrics.record(started)
        return None
