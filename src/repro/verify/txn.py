"""Serializability oracle for multi-key transaction traces.

Replays ``txn.*`` events (:mod:`repro.txn`) and checks that the
committed transactions form a serializable history:

* **Commit-order dependency graph** — nodes are committed (and wedged)
  transactions; edges are write-read (installer → reader of that
  version), write-write (installer → installer of a later version of
  the same key), and read-write anti-dependencies (reader → installer
  of the next version).  A cycle means no serial order explains the
  observed reads and installs.
* **Lost update** — two effective transactions installed the same
  ``(key, version)``: both validated against the same snapshot and both
  published, i.e. a CAS claim was skipped or broken.
* **Dirty read / dirty write** — a committed transaction read a version
  whose only writers aborted, or an aborted attempt published at all.
* **Torn install** — a ``txn.commit`` names write-set keys its attempt
  never installed (the write set was not published atomically), an
  install version skips its predecessor, or a version word carries the
  busy bit where a clean value is required.
* **Torn read** — a read's payload fingerprint differs from every
  install fingerprint at that ``(key, version)`` (readers must never
  observe a half-written unit).

Transactions wedged mid-publish (``txn.wedged``) are indeterminate:
their durable installs are legal to read and participate in the graph,
but they are exempt from the torn-install check.  Transactions still
in flight when the trace ends are ignored entirely.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.ddss.client import _fingerprint
from repro.verify.trace import Oracle, TraceEvent

__all__ = ["TxnOracle"]

_INSTALL_BIT = 1 << 63


class TxnOracle(Oracle):
    """Offline serializability checker for ``txn.*`` traces."""

    NAME = "txn"
    PREFIXES = ("txn.",)

    def __init__(self):
        super().__init__()
        self._begin: Dict[int, dict] = {}            # tid -> begin fields
        # (tid, attempt) -> [(key, version, fp, nbytes, idx, ev)]
        self._reads = defaultdict(list)
        # (key, version) -> [(tid, attempt, fp, idx, ev)]
        self._installs = defaultdict(list)
        self._installed_by = defaultdict(set)        # (tid, att) -> {key}
        self._commit: Dict[int, dict] = {}           # tid -> commit info
        self._aborted: Set[Tuple[int, int]] = set()
        self._wedged: Dict[int, dict] = {}           # tid -> wedged info

    # -- replay ---------------------------------------------------------
    def feed(self, idx: int, ev: TraceEvent) -> None:
        handler = getattr(self, "_on_" + ev.etype.split(".", 1)[1], None)
        if handler is not None:
            handler(idx, ev)

    def _on_begin(self, idx: int, ev: TraceEvent) -> None:
        tid = ev.fields["tid"]
        if tid in self._begin:
            self.flag(idx, ev, f"duplicate txn.begin for tid {tid}",
                      tid=tid)
        self._begin[tid] = dict(ev.fields)

    def _on_read(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        version = f["version"]
        if version & _INSTALL_BIT:
            self.flag(idx, ev,
                      f"txn {f['tid']} read key {f['key']} with the "
                      f"install busy bit set (torn read window)",
                      tid=f["tid"], key=f["key"])
        self._reads[(f["tid"], f["attempt"])].append(
            (f["key"], version, f["data"], f["nbytes"], idx, ev))

    def _on_validate(self, idx: int, ev: TraceEvent) -> None:
        pass  # bookkeeping only; outcomes are judged from installs

    def _on_install(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        tid, attempt, key, version = (f["tid"], f["attempt"], f["key"],
                                      f["version"])
        if version & _INSTALL_BIT or version < 1:
            self.flag(idx, ev,
                      f"txn {tid} installed key {key} at invalid "
                      f"version {version}", tid=tid, key=key)
        if key in self._installed_by[(tid, attempt)]:
            self.flag(idx, ev,
                      f"txn {tid} attempt {attempt} installed key "
                      f"{key} twice", tid=tid, key=key)
        self._installs[(key, version)].append((tid, attempt, f["data"],
                                               idx, ev))
        self._installed_by[(tid, attempt)].add(key)

    def _on_commit(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        tid = f["tid"]
        if tid in self._commit:
            self.flag(idx, ev, f"txn {tid} committed twice", tid=tid)
        if (tid, f["attempt"]) in self._aborted:
            self.flag(idx, ev,
                      f"txn {tid} committed an attempt that already "
                      f"aborted", tid=tid)
        self._commit[tid] = {"attempt": f["attempt"],
                             "keys": list(f["keys"]), "idx": idx,
                             "ev": ev}

    def _on_abort(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        tid = f["tid"]
        info = self._commit.get(tid)
        if info is not None and info["attempt"] == f["attempt"]:
            self.flag(idx, ev,
                      f"txn {tid} aborted an attempt that already "
                      f"committed", tid=tid)
        self._aborted.add((tid, f["attempt"]))

    def _on_wedged(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        self._wedged[f["tid"]] = {"attempt": f["attempt"],
                                  "installed": list(f["installed"]),
                                  "keys": list(f["keys"]), "idx": idx,
                                  "ev": ev}

    # -- end-of-trace checks --------------------------------------------
    def finish(self) -> None:
        self._check_writes()
        self._check_committed()
        self._check_cycles()

    def _attempt_status(self, tid: int, attempt: int) -> str:
        info = self._commit.get(tid)
        if info is not None and info["attempt"] == attempt:
            return "committed"
        winfo = self._wedged.get(tid)
        if winfo is not None and winfo["attempt"] == attempt:
            return "wedged"
        if (tid, attempt) in self._aborted:
            return "aborted"
        return "pending"

    def _effective_installs(self, key: int, version: int):
        """Installers of (key, version) whose attempt was not aborted."""
        return [rec for rec in self._installs.get((key, version), ())
                if self._attempt_status(rec[0], rec[1]) != "aborted"]

    def _check_writes(self) -> None:
        # dirty write: an aborted attempt must never have published
        for (tid, attempt) in sorted(self._aborted):
            keys = self._installed_by.get((tid, attempt))
            if keys and self._attempt_status(tid, attempt) == "aborted":
                self.flag(None, None,
                          f"dirty write: txn {tid} attempt {attempt} "
                          f"aborted after publishing keys "
                          f"{sorted(keys)}", tid=tid)
        # lost update + version continuity, per key
        versions_of = defaultdict(set)
        for (key, version) in self._installs:
            versions_of[key].add(version)
        for key in sorted(versions_of):
            for version in sorted(versions_of[key]):
                eff = self._effective_installs(key, version)
                if len(eff) > 1:
                    tids = sorted({rec[0] for rec in eff})
                    self.flag(eff[1][3], eff[1][4],
                              f"lost update: transactions {tids} all "
                              f"installed key {key} version {version}",
                              key=key, version=version)
                if version > 1 and (version - 1) not in versions_of[key]:
                    rec = self._installs[(key, version)][0]
                    self.flag(rec[3], rec[4],
                              f"torn install: key {key} version "
                              f"{version} installed but version "
                              f"{version - 1} never was (skipped CAS "
                              f"claim)", key=key, version=version)

    def _check_committed(self) -> None:
        for tid in sorted(self._commit):
            info = self._commit[tid]
            attempt = info["attempt"]
            installed = self._installed_by.get((tid, attempt), set())
            missing = [k for k in info["keys"] if k not in installed]
            if missing:
                self.flag(info["idx"], info["ev"],
                          f"torn install: txn {tid} committed but "
                          f"never installed write-set keys {missing}",
                          tid=tid)
            extra = sorted(installed - set(info["keys"]))
            if extra:
                self.flag(info["idx"], info["ev"],
                          f"txn {tid} installed keys {extra} outside "
                          f"its committed write set", tid=tid)
            for (key, version, fp, nbytes, idx, ev) in \
                    self._reads.get((tid, attempt), ()):
                self._check_read(tid, key, version, fp, nbytes, idx, ev)

    def _check_read(self, tid: int, key: int, version: int, fp: str,
                    nbytes: int, idx: int, ev: TraceEvent) -> None:
        if version == 0:
            expect = _fingerprint(b"\x00" * nbytes)
            if fp != expect:
                self.flag(idx, ev,
                          f"torn read: txn {tid} read key {key} at "
                          f"version 0 but the payload is not zeros",
                          tid=tid, key=key)
            return
        installers = self._installs.get((key, version), [])
        if not installers:
            self.flag(idx, ev,
                      f"torn read: txn {tid} read key {key} version "
                      f"{version} that no transaction installed",
                      tid=tid, key=key, version=version)
            return
        statuses = {self._attempt_status(t, a)
                    for (t, a, _fp, _i, _e) in installers}
        if statuses == {"aborted"}:
            writers = sorted({t for (t, a, _fp, _i, _e) in installers})
            self.flag(idx, ev,
                      f"dirty read: txn {tid} read key {key} version "
                      f"{version} written only by aborted "
                      f"transactions {writers}",
                      tid=tid, key=key, version=version)
            return
        if not any(w_fp == fp for (_t, _a, w_fp, _i, _e) in installers):
            self.flag(idx, ev,
                      f"torn read: txn {tid} read key {key} version "
                      f"{version} with a payload matching no install "
                      f"of that version", tid=tid, key=key,
                      version=version)

    # -- serializability graph ------------------------------------------
    def _check_cycles(self) -> None:
        nodes = set(self._commit) | set(self._wedged)
        if not nodes:
            return
        edges: Dict[int, Set[int]] = defaultdict(set)

        def installer_tids(key, version):
            return {rec[0] for rec in
                    self._effective_installs(key, version)
                    if rec[0] in nodes}

        # version chains per key (effective installs only)
        chain: Dict[int, List[int]] = defaultdict(list)
        for (key, version) in self._installs:
            if any(rec[0] in nodes for rec in
                   self._effective_installs(key, version)):
                chain[key].append(version)
        for key in chain:
            chain[key].sort()
            # ww edges along the chain
            for lo, hi in zip(chain[key], chain[key][1:]):
                for a in installer_tids(key, lo):
                    for b in installer_tids(key, hi):
                        if a != b:
                            edges[a].add(b)

        def next_version(key, version):
            for v in chain.get(key, ()):
                if v > version:
                    return v
            return None

        for tid, info in self._commit.items():
            for (key, version, _fp, _nb, _idx, _ev) in \
                    self._reads.get((tid, info["attempt"]), ()):
                # wr: installer of what we read happens before us
                for w in installer_tids(key, version):
                    if w != tid:
                        edges[w].add(tid)
                # rw: we happen before the next installer of the key
                nxt = next_version(key, version)
                if nxt is not None:
                    for w in installer_tids(key, nxt):
                        if w != tid:
                            edges[tid].add(w)

        cycle = self._find_cycle(nodes, edges)
        if cycle is not None:
            self.flag(None, None,
                      f"serializability violation: dependency cycle "
                      f"{' -> '.join(str(t) for t in cycle)}",
                      cycle=list(cycle))

    @staticmethod
    def _find_cycle(nodes: Set[int],
                    edges: Dict[int, Set[int]]) -> Optional[List[int]]:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in nodes}
        parent: Dict[int, Optional[int]] = {}
        for root in sorted(nodes):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, List[int]]] = [
                (root, sorted(edges.get(root, ())))]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, succ = stack[-1]
                while succ:
                    nxt = succ.pop(0)
                    if nxt not in color:
                        continue
                    if color[nxt] == GRAY:
                        # walk parents back to nxt to report the loop
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle + [cycle[0]]
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append(
                            (nxt, sorted(edges.get(nxt, ()))))
                        break
                else:
                    color[node] = BLACK
                    stack.pop()
        return None
