"""Mutual-exclusion + FIFO/fairness oracle for the five DLM designs.

The reference model is a per-lock automaton over the ledger event
stream (``lock.request`` / ``lock.enqueue`` / ``lock.grant`` /
``lock.release`` / ``lock.revoke`` / ``lock.reclaim`` / ``lock.word``):

* **Mutual exclusion** — an exclusive grant requires an empty holder
  set; a shared grant requires no exclusive holder.
* **FIFO fairness** — for the one-sided schemes (N-CoSED, DQNL) every
  ``lock.enqueue`` carries the predecessor token read *atomically* out
  of the lock word (the old tail), so the emitted chain reflects the
  true landing order at the home even when verb completions reach the
  requesters out of order.  A grant none of whose same-epoch enqueue
  attempts has a granted (or nil) chain predecessor is an overtake —
  "any attempt" because under faults a retrying client re-enqueues and
  may then consume the hand-off its earlier attempt earned.  For SRSL the server emits
  enqueues in decision order and the check is positional: two granted
  requests where either is exclusive must be granted in queue order
  (shared batches may reorder among themselves).
* **Epoch fencing** (FT N-CoSED) — grants carry the epoch they were
  issued under and must match the current epoch established by the
  authoritative ``lock.reclaim`` stream; reclaims advance the epoch by
  exactly one (mod 2^16) and every holder alive at a reclaim must be
  revoked — a surviving zombie is flagged at end of trace.
* **Word well-formedness** — observed lock words must name known
  tokens and never a *future* epoch.

Arena-design invariants (PR 10):

* **MCS queue order equals grant order** — a same-epoch grant must go
  to a token whose enqueue names either an empty queue (``prev == 0``)
  or the *immediately preceding* same-epoch grantee; skipping past the
  queue head is flagged even when the generic FIFO check (which allows
  any granted predecessor) would pass.
* **ALock cohort discipline** — grants carry ``cohort``/``chain``/
  ``budget``: the pass-off chain position must stay below the budget
  and advance by exactly one from the previous same-epoch grant of the
  same cohort; and a cohort may not win two consecutive tournaments
  while a leader of the other cohort was already queued (``prev == 0``)
  comfortably before the previous tenure began — the Peterson victim
  word makes back-to-back wins over a waiting rival impossible.
* **No grant to a fenced epoch** — the generic epoch check applies to
  every design: arena grants always carry ``ep`` (0 outside FT mode),
  so a grant issued under a reclaimed epoch is flagged for ALock/MCS
  exactly as for N-CoSED.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .trace import Oracle, TraceEvent

__all__ = ["LockOracle"]

_EP_MASK = 0xFFFF
_F24 = (1 << 24) - 1
_F32 = (1 << 32) - 1

#: slack (µs) for the ALock no-skip check: a rival cohort leader must
#: have been queued at least this long before the previous tenure began
#: for a repeat win to count as a skip (covers the enqueue-to-flag-set
#: window where the rival is queued but not yet in the tournament)
_ALOCK_SKIP_MARGIN_US = 50.0


def _ep_behind(ep: int, cur: int) -> bool:
    """True when ``ep`` is strictly behind ``cur`` (wrap-aware)."""
    return 0 < ((cur - ep) & _EP_MASK) < 0x8000


def _ep_ahead(ep: int, cur: int) -> bool:
    return 0 < ((ep - cur) & _EP_MASK) < 0x8000


class _LockState:
    __slots__ = ("epoch", "requests", "holders", "zombies",
                 "enqueues", "grants", "last_grant", "tenure")

    def __init__(self):
        self.epoch = 0
        #: token -> list of pending request modes (FIFO per token)
        self.requests: Dict[int, List[str]] = {}
        #: token -> (mode, ep, grant index)
        self.holders: Dict[int, Tuple[str, int, int]] = {}
        #: holders caught by a reclaim, awaiting their lock.revoke
        self.zombies: Dict[int, Tuple[str, int, int]] = {}
        #: enqueue records: dicts with token/mode/prev/ep/idx/grant_idx
        self.enqueues: List[dict] = []
        #: (token, ep, index) for every grant, in trace order
        self.grants: List[Tuple[int, int, int]] = []
        #: ALock: meta of the previous grant {token, ep, cohort, chain}
        self.last_grant: Optional[dict] = None
        #: ALock: tournament tenure in progress {cohort, ep, start_t}
        self.tenure: Optional[dict] = None


class LockOracle(Oracle):
    NAME = "locks"
    PREFIXES = ("lock.",)

    def __init__(self):
        super().__init__()
        self._locks: Dict[Tuple[str, int], _LockState] = {}
        #: mgr -> tokens seen requesting (the token registry we trust)
        self._tokens: Dict[str, Set[int]] = {}

    # -- helpers --------------------------------------------------------
    def _state(self, ev: TraceEvent) -> _LockState:
        key = (ev.fields["mgr"], ev.fields["lock"])
        st = self._locks.get(key)
        if st is None:
            st = self._locks[key] = _LockState()
        return st

    @staticmethod
    def _scheme(mgr: str) -> str:
        return mgr.rsplit("-", 1)[0]

    def _scope(self, ev: TraceEvent) -> dict:
        return {"mgr": ev.fields["mgr"], "lock": ev.fields["lock"]}

    # -- replay ---------------------------------------------------------
    def feed(self, idx: int, ev: TraceEvent) -> None:
        handler = getattr(self, "_on_" + ev.etype.split(".", 1)[1], None)
        if handler is not None:
            handler(idx, ev)

    def _on_request(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        self._tokens.setdefault(f["mgr"], set()).add(f["token"])
        st = self._state(ev)
        st.requests.setdefault(f["token"], []).append(f["mode"])

    def _on_enqueue(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._state(ev)
        if f["mode"] not in st.requests.get(f["token"], ()):
            self.flag(idx, ev,
                      f"enqueue by token {f['token']} without a pending "
                      f"{f['mode']} request", **self._scope(ev))
        st.enqueues.append({
            "token": f["token"], "mode": f["mode"],
            "prev": f.get("prev", 0), "ep": f.get("ep", 0),
            "cohort": f.get("cohort"), "t": ev.t,
            "idx": idx, "grant_idx": None, "void": False,
        })

    def _on_grant(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._state(ev)
        token, mode = f["token"], f["mode"]
        ep = f.get("ep", 0)
        scope = self._scope(ev)

        # epoch fencing: a grant must be issued under the current epoch
        if "ep" in f and ep != st.epoch:
            kind = "stale" if _ep_behind(ep, st.epoch) else "future"
            self.flag(idx, ev,
                      f"grant to token {token} fenced to {kind} epoch "
                      f"{ep} (current {st.epoch})", **scope)

        # a grant consumes a pending request of the same mode
        pending = st.requests.get(token, [])
        if mode in pending:
            pending.remove(mode)
        else:
            self.flag(idx, ev,
                      f"grant to token {token} without a pending "
                      f"{mode} request", **scope)

        # mutual exclusion against live (non-zombie) holders
        if mode == "EXCLUSIVE" and st.holders:
            self.flag(idx, ev,
                      f"exclusive grant to token {token} while held by "
                      f"{sorted(st.holders)}", **scope)
        elif mode == "SHARED" and any(
                m == "EXCLUSIVE" for m, _e, _i in st.holders.values()):
            self.flag(idx, ev,
                      f"shared grant to token {token} while exclusively "
                      f"held", **scope)

        rec = self._check_fairness(idx, ev, st, token, mode, ep, scope)
        scheme = self._scheme(f["mgr"])
        if scheme == "mcs" and rec is not None:
            self._check_mcs(idx, ev, st, token, ep, scope)
        elif scheme == "alock":
            self._check_alock(idx, ev, st, token, ep, scope)
        st.holders[token] = (mode, ep, idx)
        st.grants.append((token, ep, idx))

    def _check_fairness(self, idx, ev, st, token, mode, ep, scope
                        ) -> Optional[dict]:
        scheme = self._scheme(ev.fields["mgr"])
        cands = [c for c in st.enqueues
                 if (c["token"] == token and c["grant_idx"] is None
                     and not c["void"]
                     and (scheme == "srsl" or c["ep"] == ep))]
        if not cands:
            self.flag(idx, ev,
                      f"grant to token {token} with no matching enqueue "
                      f"(epoch {ep})", **scope)
            return None
        if scheme == "srsl":
            # server decision order: pair with the OLDEST open enqueue;
            # the positional check runs in finish()
            cands[0]["grant_idx"] = idx
            return cands[0]
        # consume the newest attempt (a retry supersedes its elders)
        cands[-1]["grant_idx"] = idx
        mgr = ev.fields["mgr"]
        for cand in cands:
            if (cand["prev"] != 0
                    and cand["prev"] not in self._tokens.get(mgr, ())):
                self.flag(idx, ev,
                          f"token {token} enqueued behind unknown token "
                          f"{cand['prev']} (corrupt lock word?)", **scope)
                return cands[-1]
        # FIFO: the grant is a hand-off addressed to ONE of this token's
        # attempts in the current epoch — under faults a retrying client
        # may legally consume a grant earned by an earlier attempt whose
        # predecessor completed, so any open attempt with a satisfied
        # (granted or nil) predecessor justifies the grant.
        if not any(c["prev"] == 0
                   or any(g_tok == c["prev"] and g_ep == ep and g_idx < idx
                          for g_tok, g_ep, g_idx in st.grants)
                   for c in cands):
            prev = cands[-1]["prev"]
            self.flag(idx, ev,
                      f"FIFO violation: token {token} granted before its "
                      f"queue predecessor {prev} (epoch {ep})", **scope)
        return cands[-1]

    def _check_mcs(self, idx, ev, st, token, ep, scope) -> None:
        """MCS: queue order equals grant order.

        The grantee must have entered the queue either on an empty tail
        (``prev == 0``) or directly behind the *immediately preceding*
        same-epoch grantee; the generic FIFO check (any granted
        predecessor) would let a grant skip past the queue head.  Any
        open same-epoch attempt (or the one just consumed) may justify
        the grant, mirroring the retry allowance above.
        """
        prev_grant = next(
            (g_tok for g_tok, g_ep, _i in reversed(st.grants)
             if g_ep == ep), 0)
        cands = [c for c in st.enqueues
                 if (c["token"] == token and c["ep"] == ep
                     and not c["void"]
                     and c["grant_idx"] in (None, idx))]
        if not any(c["prev"] in (0, prev_grant) for c in cands):
            named = sorted({c["prev"] for c in cands})
            self.flag(idx, ev,
                      f"MCS queue-order violation: grant to token {token} "
                      f"whose enqueue names predecessor(s) {named}, but "
                      f"the previous epoch-{ep} grant went to "
                      f"{prev_grant}", **scope)

    def _check_alock(self, idx, ev, st, token, ep, scope) -> None:
        """ALock: budget, chain continuity, and cohort no-skip."""
        f = ev.fields
        cohort = f.get("cohort")
        chain = f.get("chain")
        budget = f.get("budget")
        if cohort is None or chain is None or budget is None:
            self.flag(idx, ev,
                      f"ALock grant to token {token} without "
                      f"cohort/chain/budget fields", **scope)
            return
        if chain >= budget:
            self.flag(idx, ev,
                      f"cohort pass-off chain position {chain} reached "
                      f"the cohort budget {budget}", **scope)
        if chain > 0:
            prev = st.last_grant
            if prev is None or prev["ep"] != ep:
                self.flag(idx, ev,
                          f"chain continuation (chain={chain}) without a "
                          f"same-epoch predecessor grant", **scope)
            elif prev["cohort"] != cohort:
                self.flag(idx, ev,
                          f"in-budget pass-off crossed cohorts "
                          f"({prev['cohort']} -> {cohort})", **scope)
            elif chain != prev["chain"] + 1:
                self.flag(idx, ev,
                          f"pass-off chain jumped from {prev['chain']} "
                          f"to {chain}", **scope)
        else:
            # tournament win: the same cohort winning back to back while
            # a rival-cohort leader was already queued well before the
            # previous tenure began means the victim word was ignored
            ten = st.tenure
            if (ten is not None and ten["cohort"] == cohort
                    and ten["ep"] == ep):
                skipped = [
                    c for c in st.enqueues
                    if (c["cohort"] not in (None, cohort)
                        and c["ep"] == ep and c["prev"] == 0
                        and not c["void"] and c["grant_idx"] is None
                        and c["t"] + _ALOCK_SKIP_MARGIN_US
                        < ten["start_t"])]
                if skipped:
                    rivals = sorted(c["token"] for c in skipped)
                    self.flag(idx, ev,
                              f"cohort {cohort} won consecutive "
                              f"tournaments past waiting rival-cohort "
                              f"leader(s) {rivals}", **scope)
            st.tenure = {"cohort": cohort, "ep": ep, "start_t": ev.t}
        st.last_grant = {"token": token, "ep": ep,
                         "cohort": cohort, "chain": chain}

    def _on_release(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._state(ev)
        if st.holders.pop(f["token"], None) is None:
            where = ("revoked holder"
                     if f["token"] in st.zombies else "non-holder")
            self.flag(idx, ev,
                      f"release of lock by {where} token {f['token']}",
                      **self._scope(ev))

    def _on_revoke(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._state(ev)
        if st.zombies.pop(f["token"], None) is not None:
            return
        if st.holders.pop(f["token"], None) is not None:
            return
        self.flag(idx, ev,
                  f"revoke of non-holder token {f['token']}",
                  **self._scope(ev))

    def _on_reclaim(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._state(ev)
        scope = self._scope(ev)
        if f["new_ep"] != ((f["old_ep"] + 1) & _EP_MASK):
            self.flag(idx, ev,
                      f"reclaim skipped epochs: {f['old_ep']} -> "
                      f"{f['new_ep']}", **scope)
        if f["old_ep"] != st.epoch:
            self.flag(idx, ev,
                      f"reclaim from epoch {f['old_ep']} but current is "
                      f"{st.epoch}", **scope)
        st.epoch = f["new_ep"]
        # every live holder must now be revoked (checked in finish);
        # enqueues of dead epochs can never be legally granted
        st.zombies.update(st.holders)
        st.holders.clear()
        for rec in st.enqueues:
            if rec["grant_idx"] is None and _ep_behind(rec["ep"], st.epoch):
                rec["void"] = True

    def _on_word(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._state(ev)
        scope = self._scope(ev)
        word = f["word"]
        known = self._tokens.get(f["mgr"], set())
        if f.get("ft"):
            ep = (word >> 48) & _EP_MASK
            tail = (word >> 24) & _F24
            count = word & _F24
            if _ep_ahead(ep, st.epoch):
                self.flag(idx, ev,
                          f"lock word carries future epoch {ep} "
                          f"(current {st.epoch})", **scope)
        else:
            tail = (word >> 32) & _F32
            count = word & _F32
        if tail and tail not in known:
            self.flag(idx, ev,
                      f"lock word tail {tail} is not a known token",
                      **scope)
        if known and count > len(known):
            self.flag(idx, ev,
                      f"lock word shared count {count} exceeds the "
                      f"{len(known)} registered tokens", **scope)

    # -- end of trace ---------------------------------------------------
    def finish(self) -> None:
        for (mgr, lock), st in sorted(self._locks.items()):
            for token, (mode, ep, gidx) in sorted(st.zombies.items()):
                self.flag(None, None,
                          f"token {token} ({mode}, epoch {ep}) survived a "
                          f"reclaim without a revoke", mgr=mgr, lock=lock)
            if self._scheme(mgr) == "srsl":
                self._finish_srsl(mgr, lock, st)

    def _finish_srsl(self, mgr: str, lock: int, st: _LockState) -> None:
        granted = [r for r in st.enqueues if r["grant_idx"] is not None]
        for i, a in enumerate(granted):
            for b in granted[i + 1:]:
                if a["mode"] == "SHARED" and b["mode"] == "SHARED":
                    continue  # shared batches may grant in any order
                if a["grant_idx"] > b["grant_idx"]:
                    self.flag(b["grant_idx"], None,
                              f"SRSL FIFO violation: token {b['token']} "
                              f"(queued at #{b['idx']}) granted before "
                              f"token {a['token']} (queued at #{a['idx']})",
                              mgr=mgr, lock=lock)
