"""Metamorphic check driver: same scenario, equivalent configurations.

The simulator makes two strong determinism claims the oracles alone
cannot test:

1. **kernel equivalence** — the ladder-agenda fast kernel, the
   heap-agenda fallback (``REPRO_HEAP_AGENDA=1``) and the naive
   reference kernel must produce *byte-identical* trace exports for
   the same (check, seed, n_nodes);
2. **parameter robustness** — every packaged check must replay clean
   under permuted seeds and node counts, not just the defaults.

This driver expands the (check × kernel × n_nodes × seed) grid through
:mod:`repro.lab` — reusing its process pool, retry, and resumable
store — then folds the records: each (check, n_nodes, seed) cell must
have one ``trace_sha`` across all three kernels, and every cell must
report zero violations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .suites import CHECKS, _lookup

__all__ = ["metamorphic_sweep"]

SCENARIO = "repro.verify.suites:check_scenario"


def metamorphic_sweep(checks: Optional[Sequence[str]] = None,
                      seeds: Sequence[int] = (0, 1),
                      node_counts: Sequence[int] = (0,),
                      workers: int = 0,
                      store_path: Optional[str] = None,
                      progress: bool = False) -> Dict[str, Any]:
    """Run the metamorphic grid; returns the fold report.

    ``node_counts`` may include 0, meaning "each check's default".
    ``workers=0`` runs serially in-process (deterministic, test
    friendly); higher values dispatch through the lab process pool.
    """
    from ..lab import ResultStore, Runner, Sweep

    names = sorted(checks) if checks else sorted(CHECKS)
    for name in names:
        _lookup(name)  # fail fast on typos

    sweep = Sweep(
        name="verify-meta",
        scenario=SCENARIO,
        grid={
            "check": list(names),
            "kernel": ["fast", "heap", "slow"],
            "n_nodes": [int(n) for n in node_counts],
        },
        seeds=[int(s) for s in seeds],
    )
    store = ResultStore(store_path)
    runner = Runner(sweep, store=store, workers=workers,
                    progress=progress)
    summary = runner.run()

    # fold: group the kernels per cell, diff the trace digests
    cells: Dict[tuple, Dict[str, dict]] = {}
    for rec in store.records():
        p, res = rec["params"], rec["result"]
        key = (p["check"], p["n_nodes"], rec["seed"])
        cells.setdefault(key, {})[p["kernel"]] = res

    kernels = list(sweep.grid["kernel"])
    mismatches = []
    violations = []
    pairs = 0
    for (check, n_nodes, seed), by_kernel in sorted(cells.items()):
        for kern, res in sorted(by_kernel.items()):
            if res["verdict"] != "ok":
                violations.append({"check": check, "n_nodes": n_nodes,
                                   "seed": seed, "kernel": kern,
                                   "violations": res["violations"]})
        if any(k not in by_kernel for k in kernels):
            continue  # a failed run; already in summary.failures
        pairs += 1
        shas = {k: by_kernel[k]["trace_sha"] for k in kernels}
        if len(set(shas.values())) != 1:
            mismatches.append({
                "check": check, "n_nodes": n_nodes, "seed": seed,
                "shas": shas,
                "events": {k: by_kernel[k]["events"] for k in kernels},
            })

    ok = (not mismatches and not violations
          and not summary.get("failed", 0))
    return {
        "checks": names,
        "kernels": kernels,
        "seeds": list(sweep.seeds),
        "node_counts": list(sweep.grid["n_nodes"]),
        "runs": summary.get("completed", 0) + summary.get("skipped", 0),
        "run_failures": summary.get("failed", 0),
        "pairs": pairs,
        "kernel_mismatches": mismatches,
        "violations": violations,
        "verdict": "ok" if ok else "violation",
    }
