"""Per-model DDSS coherence oracles (paper §4.1).

Replays ``ddss.alloc`` / ``ddss.put.done`` / ``ddss.get.done`` events
against a sequential reference of each coherence contract.  Every done
event carries the op's conservative interval ``[t0, t]`` (generator
entry to completion emission), the version involved, and a payload
fingerprint, which is all the reference needs:

* **torn/corrupt read** (all models) — a get's bytes must be a prefix
  of some put's payload (or the unit's zero-initialised state); READ
  additionally requires the (version, data) pair to match one atomic
  snapshot put.
* **staleness** (every direct-home read) — a get may return put ``p``
  only if ``p`` is not *superseded*: no put ``p'`` with
  ``p'.t0 > p.done`` and ``p'.done < g.t0`` (then ``p'`` wholly
  followed ``p`` in memory and was committed before the get started).
  This encodes WRITE's serialized-put and STRICT's exclusion as their
  observable effect, with zero false positives under overlap.
* **VERSION monotonicity** — non-overlapping direct reads never see
  the version counter go backwards.
* **lost update** — counter-carrying models (WRITE/STRICT via the
  locked bump, VERSION/DELTA via FAA) must commit versions exactly
  ``{1..N}`` for N puts; READ's per-client counters are checked
  per node.
* **DELTA bound** — a cache hit's version may trail the newest version
  committed before the get started by at most ``delta``.
* **TEMPORAL bound** — a cache hit's age may not exceed ``ttl_us``.

Replicated keys are skipped (failover tolerates divergent copies by
design) as is NULL (no contract to check).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from .trace import Oracle, TraceEvent

__all__ = ["DDSSOracle"]

#: mirror of repro.ddss.client._FP_MAX — payloads above this are digests
_FP_MAX = 64


def _zeros_fp(nbytes: int) -> str:
    if nbytes <= _FP_MAX:
        return "00" * nbytes
    return ("b2:" + hashlib.blake2b(b"\x00" * nbytes,
                                    digest_size=16).hexdigest())


def _value_matches(g: dict, p: dict) -> bool:
    """Could the get's bytes have come from this put?  Unknown (digest
    vs differing length) counts as a match — conservative, no false
    positives."""
    gd, pd = g["data"], p["data"]
    g_digest = gd.startswith("b2:")
    p_digest = pd.startswith("b2:")
    if not g_digest and not p_digest:
        m = 2 * min(g["nbytes"], p["nbytes"])
        return gd[:m] == pd[:m]
    if g["nbytes"] == p["nbytes"]:
        return gd == pd
    return True  # prefix of a digested payload: cannot refute


_INIT = {"version": 0, "data": None, "init": True}


class _KeyState:
    __slots__ = ("model", "delta", "ttl_us", "replicas", "puts", "gets")

    def __init__(self):
        self.model: Optional[str] = None
        self.delta: Optional[int] = None
        self.ttl_us: Optional[float] = None
        self.replicas = 0
        self.puts: List[dict] = []
        self.gets: List[dict] = []


class DDSSOracle(Oracle):
    NAME = "ddss"
    PREFIXES = ("ddss.alloc", "ddss.put.done", "ddss.get.done")

    def __init__(self):
        super().__init__()
        self._keys: Dict[int, _KeyState] = {}

    # -- collection (checks run at end of trace: an overlapping put's
    # completion may legally appear after the get it justifies) --------
    def _key(self, key: int) -> _KeyState:
        st = self._keys.get(key)
        if st is None:
            st = self._keys[key] = _KeyState()
        return st

    def feed(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        st = self._key(f["key"])
        if ev.etype == "ddss.alloc":
            st.model = f["model"]
            st.delta = f["delta"]
            st.ttl_us = f["ttl_us"]
            st.replicas = f["replicas"]
            return
        if st.model is None:
            st.model = f["model"]
        rec = {"idx": idx, "ev": ev, "t0": f["t0"], "t": ev.t,
               "node": ev.node, "version": f["version"],
               "nbytes": f["nbytes"], "data": f["data"],
               "hit": f.get("hit", False), "age_us": f.get("age_us")}
        (st.puts if ev.etype == "ddss.put.done" else st.gets).append(rec)

    # -- checks ---------------------------------------------------------
    def finish(self) -> None:
        for key in sorted(self._keys):
            st = self._keys[key]
            if st.model in (None, "NULL") or st.replicas:
                continue
            self._check_put_versions(key, st)
            for g in st.gets:
                self._check_get(key, st, g)
            self._check_monotonic(key, st)

    def _check_put_versions(self, key: int, st: _KeyState) -> None:
        if st.model == "READ":
            groups: Dict[int, List[int]] = {}
            for p in st.puts:
                groups.setdefault(p["node"], []).append(p["version"])
        else:
            groups = {-1: [p["version"] for p in st.puts
                           if p["version"] is not None]}
        for node, versions in sorted(groups.items()):
            if not versions:
                continue
            expect = set(range(1, len(versions) + 1))
            if set(versions) != expect:
                where = "" if node == -1 else f" from node {node}"
                last = max((p["idx"] for p in st.puts), default=None)
                self.flag(last, None,
                          f"lost update: {len(versions)} puts{where} "
                          f"committed versions {sorted(set(versions))}, "
                          f"expected {{1..{len(versions)}}}",
                          key=key, model=st.model)

    def _candidates(self, st: _KeyState, g: dict) -> List[dict]:
        out = []
        gv = g["version"]
        for p in st.puts:
            if p["t0"] > g["t"]:
                continue  # started after the get finished
            if not _value_matches(g, p):
                continue
            if st.model == "READ" and p["version"] != gv:
                continue  # snapshot pairs (version, data) atomically
            if (st.model in ("VERSION", "DELTA") and gv is not None
                    and p["version"] is not None and p["version"] > gv):
                continue  # data write lands after its own FAA
            out.append(p)
        if g["data"] == _zeros_fp(g["nbytes"]) and (gv in (None, 0)):
            out.append(dict(_INIT))
        return out

    def _superseded(self, st: _KeyState, cand: dict, g: dict) -> bool:
        if cand.get("init"):
            return any(p["t"] < g["t0"] for p in st.puts)
        return any(p["t0"] > cand["t"] and p["t"] < g["t0"]
                   for p in st.puts)

    def _check_get(self, key: int, st: _KeyState, g: dict) -> None:
        scope = {"key": key, "model": st.model}
        cands = self._candidates(st, g)
        if not cands:
            what = ("version/data snapshot matches no atomic put"
                    if st.model == "READ"
                    else "returned bytes match no committed put")
            self.flag(g["idx"], g["ev"], f"torn read: {what}", **scope)
            return
        if g["hit"]:
            self._check_hit(key, st, g, scope)
            return
        if all(self._superseded(st, c, g) for c in cands):
            newest = max((p["version"] or 0) for p in st.puts)
            self.flag(g["idx"], g["ev"],
                      f"stale read: every value the get could have "
                      f"returned was superseded by a put committed "
                      f"before the get began (newest version {newest})",
                      **scope)

    def _check_hit(self, key: int, st: _KeyState, g: dict,
                   scope: dict) -> None:
        if st.model == "DELTA" and st.delta is not None:
            bound = max((p["version"] for p in st.puts
                         if p["t"] <= g["t0"]
                         and p["version"] is not None), default=0)
            if g["version"] is not None and g["version"] < bound - st.delta:
                self.flag(g["idx"], g["ev"],
                          f"DELTA bound exceeded: hit served version "
                          f"{g['version']} but version {bound} was "
                          f"committed before the get (delta={st.delta})",
                          **scope)
        if st.model == "TEMPORAL" and st.ttl_us is not None:
            if g["age_us"] is not None and g["age_us"] > st.ttl_us:
                self.flag(g["idx"], g["ev"],
                          f"TEMPORAL bound exceeded: hit served a copy "
                          f"aged {g['age_us']:.1f}us "
                          f"(ttl {st.ttl_us:.1f}us)", **scope)

    def _check_monotonic(self, key: int, st: _KeyState) -> None:
        if st.model not in ("VERSION", "DELTA"):
            return
        direct = [g for g in st.gets
                  if not g["hit"] and g["version"] is not None]
        direct.sort(key=lambda g: g["idx"])
        for i, g1 in enumerate(direct):
            for g2 in direct[i + 1:]:
                if g1["t"] <= g2["t0"] and g2["version"] < g1["version"]:
                    self.flag(g2["idx"], g2["ev"],
                              f"version went backwards: read {g2['version']}"
                              f" after a non-overlapping read of "
                              f"{g1['version']}", key=key, model=st.model)
