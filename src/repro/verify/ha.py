"""HA choreography oracle: failover should(-not) happen, and liveness.

Chaos scenarios know, from their own fault schedule, what correct
recovery looks like: *"node 3's lock home must move within the
detection bound"*, or *"the minority side must NOT evict any majority
node while the partition holds"*.  They declare those expectations in
the trace itself as ``ha.expect`` events; this oracle replays the trace
and checks each declaration against what actually happened.

Expectation kinds
-----------------

``failover``
    fields ``victims`` (node ids), ``after``, ``by``: every victim must
    show a recovery action — ``reconfig.evict``/``reconfig.backfill``
    of it, or a ``lock.rehome`` away from it — at a time in
    ``(after, by]``.  A victim with no recovery action by the deadline
    is a *liveness* violation (the system sat on a dead node).

``no-failover``
    fields ``victims``, ``start``, ``until``: no recovery action may
    target a victim inside ``[start, until)``.  A match is a *safety*
    violation — the classic split-brain signature, a minority view
    evicting healthy majority nodes.

``lock-settle``
    fields ``settle`` (µs): every ``lock.request`` must reach a grant,
    release, revoke or explicit ``lock.fail`` within ``settle`` of the
    request (checked only for requests whose window fits inside the
    trace).  Bounded-retry clients always resolve one way or the other;
    a silent hang means recovery stalled.

Like every oracle this one is inert on traces without its events, so it
rides in ``ALL_ORACLES`` for free.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..obs.events import TraceEvent
from .trace import Oracle

__all__ = ["HAOracle"]


class HAOracle(Oracle):
    """Checks ``ha.expect`` declarations against observed recovery."""

    NAME = "ha"
    PREFIXES = ("ha.expect", "reconfig.evict", "reconfig.backfill",
                "lock.rehome", "lock.request", "lock.grant",
                "lock.release", "lock.revoke", "lock.fail")

    def __init__(self):
        super().__init__()
        self._failover: List[dict] = []      # pending failover expects
        self._no_failover: List[dict] = []
        self._settle: List[float] = []
        #: (t, victim, etype) of every observed recovery action
        self._recoveries: List[Tuple[float, int, str]] = []
        #: (mgr, lock, token) -> (idx, request event) awaiting outcome
        self._requests: Dict[tuple, Tuple[int, TraceEvent]] = {}
        self._max_t = 0.0

    # -- replay ---------------------------------------------------------
    def feed(self, idx: int, ev: TraceEvent) -> None:
        self._max_t = max(self._max_t, ev.t)
        if ev.etype == "ha.expect":
            self._declare(idx, ev)
            return
        if ev.etype in ("reconfig.evict", "reconfig.backfill"):
            victim = ev.fields.get("mnode")
            if victim is not None:
                self._recovery(idx, ev, victim)
            return
        if ev.etype == "lock.rehome":
            victim = ev.fields.get("frm")
            if victim is not None:
                self._recovery(idx, ev, victim)
            return
        # lock request lifecycle (for lock-settle)
        key = (ev.fields.get("mgr"), ev.fields.get("lock"),
               ev.fields.get("token"))
        if ev.etype == "lock.request":
            self._requests[key] = (idx, ev)
        else:  # grant/release/revoke/fail all settle the request
            self._requests.pop(key, None)

    def _declare(self, idx: int, ev: TraceEvent) -> None:
        kind = ev.fields.get("kind")
        if kind == "failover":
            for victim in ev.fields.get("victims", ()):
                self._failover.append({
                    "idx": idx, "ev": ev, "victim": victim,
                    "after": float(ev.fields.get("after", ev.t)),
                    "by": float(ev.fields["by"])})
        elif kind == "no-failover":
            for victim in ev.fields.get("victims", ()):
                self._no_failover.append({
                    "idx": idx, "ev": ev, "victim": victim,
                    "start": float(ev.fields.get("start", ev.t)),
                    "until": float(ev.fields["until"])})
        elif kind == "lock-settle":
            self._settle.append(float(ev.fields["settle"]))
        else:
            self.flag(idx, ev, f"unknown ha.expect kind {kind!r}")

    def _recovery(self, idx: int, ev: TraceEvent, victim: int) -> None:
        self._recoveries.append((ev.t, victim, ev.etype))
        for exp in self._no_failover:
            if (exp["victim"] == victim
                    and exp["start"] <= ev.t < exp["until"]):
                self.flag(
                    idx, ev,
                    f"forbidden failover: {ev.etype} of node {victim} at "
                    f"t={ev.t:.1f} inside no-failover window "
                    f"[{exp['start']:.1f}, {exp['until']:.1f}) — "
                    f"split-brain signature",
                    victim=victim)

    # -- end-of-trace ----------------------------------------------------
    def finish(self) -> None:
        for exp in self._failover:
            if exp["by"] > self._max_t:
                continue  # deadline beyond the trace: not judgeable
            hit = any(exp["after"] < t <= exp["by"]
                      and victim == exp["victim"]
                      for t, victim, _etype in self._recoveries)
            if not hit:
                self.flag(
                    exp["idx"], exp["ev"],
                    f"missing failover: no recovery action for node "
                    f"{exp['victim']} in ({exp['after']:.1f}, "
                    f"{exp['by']:.1f}] — liveness violation",
                    victim=exp["victim"])
        for settle in self._settle:
            for (mgr, lock, token), (idx, ev) in self._requests.items():
                if ev.t + settle <= self._max_t:
                    self.flag(
                        idx, ev,
                        f"lock request never settled: {mgr} lock {lock} "
                        f"token {token} requested at t={ev.t:.1f} saw no "
                        f"grant/revoke/fail within {settle:.0f}us",
                        mgr=mgr, lock=lock, token=token)
