"""Cooperative-cache oracle: hits serve real, current content.

Replays ``cache.admit`` / ``cache.evict`` / ``cache.hit.*`` against a
reference copy of every store:

* **residency** — a hit must fall inside a ``[admit, evict]`` interval
  of the serving store (local hits against the proxy's own store,
  remote hits against the claimed holder's).  Hit events carry ``t0``,
  the instant the lookup started, because a concurrent evict may land
  between the lookup and the hit's emission — the interval check is
  therefore against ``t0``, closed on both ends.
* **content** — the token served must equal the token admitted by the
  covering interval: a hit can never serve bytes other than the
  committed document content.  This is the directory/state agreement
  check — a stale directory hint is legal (the probe misses), but a
  hit claiming holder H is only legal if H really held the doc.
* **accounting** — ``used`` equals the sum of resident sizes and never
  exceeds ``capacity``; evictions name resident documents.

All five schemes (AC/BCC/CCWR/MTACC/HYBCC) emit the same event shapes,
so one oracle covers them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .trace import Oracle, TraceEvent

__all__ = ["CacheOracle"]


class _Interval:
    __slots__ = ("t_admit", "t_evict", "tok")

    def __init__(self, t_admit: float, tok: str):
        self.t_admit = t_admit
        self.t_evict = None  # open
        self.tok = tok


class CacheOracle(Oracle):
    NAME = "cache"
    PREFIXES = ("cache.",)

    def __init__(self):
        super().__init__()
        #: node -> doc -> (size, tok) currently resident
        self._stores: Dict[int, Dict[int, Tuple[int, str]]] = {}
        #: (node, doc) -> admit/evict intervals, in time order
        self._history: Dict[Tuple[int, int], List[_Interval]] = {}
        self._capacity: Dict[int, int] = {}

    def feed(self, idx: int, ev: TraceEvent) -> None:
        handler = getattr(self, "_on_" + ev.etype.split(".")[1], None)
        if handler is not None:
            handler(idx, ev)

    # -- store replay ---------------------------------------------------
    def _on_admit(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        node, doc = ev.node, f["doc"]
        store = self._stores.setdefault(node, {})
        hist = self._history.setdefault((node, doc), [])
        if doc in store:
            # refresh/overwrite: the old interval ends here
            if hist:
                hist[-1].t_evict = ev.t
        store[doc] = (f["size"], f.get("tok"))
        hist.append(_Interval(ev.t, f.get("tok")))
        used = sum(size for size, _tok in store.values())
        if f["used"] != used:
            self.flag(idx, ev,
                      f"accounting mismatch after admit: store reports "
                      f"used={f['used']} but resident sizes sum to {used}",
                      node=node, doc=doc)
        cap = f["capacity"]
        prev_cap = self._capacity.setdefault(node, cap)
        if cap != prev_cap:
            self.flag(idx, ev,
                      f"store capacity changed {prev_cap} -> {cap}",
                      node=node, doc=doc)
        if f["used"] > cap:
            self.flag(idx, ev,
                      f"store over capacity: used={f['used']} > "
                      f"capacity={cap}", node=node, doc=doc)

    def _on_evict(self, idx: int, ev: TraceEvent) -> None:
        f = ev.fields
        node, doc = ev.node, f["doc"]
        store = self._stores.setdefault(node, {})
        entry = store.pop(doc, None)
        if entry is None:
            self.flag(idx, ev,
                      f"evict of doc {doc} which is not resident on "
                      f"node {node}", node=node, doc=doc)
            return
        if entry[0] != f["size"]:
            self.flag(idx, ev,
                      f"evict size {f['size']} != admitted size "
                      f"{entry[0]}", node=node, doc=doc)
        hist = self._history.get((node, doc))
        if hist:
            hist[-1].t_evict = ev.t

    # -- hit checks -----------------------------------------------------
    def _serving_intervals(self, node: int, doc: int, t0: float):
        """Every interval covering t0 (closed: an evict landing exactly
        between the lookup and the hit's emission still covers it)."""
        return [iv for iv in self._history.get((node, doc), ())
                if iv.t_admit <= t0 and (iv.t_evict is None
                                         or iv.t_evict >= t0)]

    def _check_hit(self, idx: int, ev: TraceEvent, holder: int,
                   kind: str) -> None:
        f = ev.fields
        doc = f["doc"]
        t0 = f.get("t0", ev.t)
        ivs = self._serving_intervals(holder, doc, t0)
        scope = {"node": ev.node, "doc": doc, "holder": holder}
        if not ivs:
            self.flag(idx, ev,
                      f"{kind} hit served doc {doc} from node {holder} "
                      f"which did not hold it at t0={t0:.3f}", **scope)
            return
        tok = f.get("tok")
        if tok is not None and not any(
                iv.tok is None or iv.tok == tok for iv in ivs):
            self.flag(idx, ev,
                      f"{kind} hit served stale content for doc {doc}: "
                      f"token {tok} but the resident copy holds "
                      f"{ivs[-1].tok}", **scope)

    def _on_hit(self, idx: int, ev: TraceEvent) -> None:
        kind = ev.etype.rsplit(".", 1)[1]  # local | remote
        if kind == "local":
            self._check_hit(idx, ev, ev.node, "local")
        else:
            holder = ev.fields.get("holder", ev.node)
            self._check_hit(idx, ev, holder, "remote")

    def _on_miss(self, idx: int, ev: TraceEvent) -> None:
        pass  # counted via ``checked``; nothing to verify
