"""Shrink a failing trace to a small reproducer.

Strategy, cheapest first:

1. **truncate** — events after the first violation cannot have caused
   it; cut the trace right past the violating event.
2. **scope filter** — keep only events sharing the violation's scope
   (same manager+lock, same key, same node+doc ...), kept only if the
   filtered trace still reproduces an equivalent violation.
3. **prefix bisection** — binary-search the shortest failing prefix.
   Violations of the streaming oracles are monotone in prefix length;
   the handful of end-of-trace checks are not, so the result is
   re-verified and the search falls back to the last known-failing
   trace when bisection overshoots.

The reproducer that comes out is a valid ``repro-trace-v1`` event list:
feed it back through :func:`repro.verify.trace.replay` (or ``repro
check trace``) to watch the violation fire in isolation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from .trace import Oracle, TraceView, replay

__all__ = ["shrink"]


def _first_violation(events, factories) -> Optional[Dict[str, Any]]:
    violations = replay(TraceView(events), [f() for f in factories])
    return violations[0] if violations else None


def _scope_keeps(ev, scope: Dict[str, Any]) -> bool:
    """An event stays if it does not contradict the violation's scope:
    fields it carries must match; fields it lacks don't exclude it."""
    for k, want in scope.items():
        if k == "node":
            if ev.node != want and ev.fields.get("node", ev.node) != want:
                return False
        elif k in ev.fields and ev.fields[k] != want:
            return False
    return True


def shrink(events: Sequence, factories: Sequence[Callable[[], Oracle]],
           max_probes: int = 64) -> Optional[Dict[str, Any]]:
    """Return a shrink report for the first violation in ``events``, or
    None when the trace replays clean.

    The report carries the (possibly reduced) ``events`` list, the
    violation it still reproduces, and how much was shed.
    """
    events = list(events)
    head = _first_violation(events, factories)
    if head is None:
        return None
    original = len(events)
    probes = 1

    # 1. truncate past the violating event
    if head["index"] is not None:
        events = events[:head["index"] + 1]

    # 2. scope filter, kept only if the failure survives
    scope = {k: v for k, v in head["scope"].items() if v is not None}
    if scope:
        narrowed = [ev for ev in events if _scope_keeps(ev, scope)]
        if len(narrowed) < len(events):
            v = _first_violation(narrowed, factories)
            probes += 1
            if v is not None and v["oracle"] == head["oracle"]:
                events, head = narrowed, v

    # 3. shortest failing prefix (verified bisection)
    lo, hi = 0, len(events)  # fails at hi, passes at lo
    best = list(events)
    while hi - lo > 1 and probes < max_probes:
        mid = (lo + hi) // 2
        v = _first_violation(events[:mid], factories)
        probes += 1
        if v is not None and v["oracle"] == head["oracle"]:
            hi, head, best = mid, v, events[:mid]
        else:
            lo = mid
    events = best

    return {
        "events": events,
        "violation": head,
        "original_events": original,
        "kept_events": len(events),
        "probes": probes,
    }
