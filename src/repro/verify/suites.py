"""Packaged correctness checks: scenario + oracles + verdict.

Each check drives a seeded workload against one subsystem with
observability attached, exports the full trace, and replays it through
every oracle.  ``run_check`` produces a machine-readable verdict;
``check_scenario`` is the dotted-path entry the metamorphic sweeps
dispatch through :mod:`repro.lab`.

A check is only meaningful if the oracles saw traffic, so every verdict
carries per-oracle ``checked`` counts and ``run_suite`` fails a check
whose primary oracle consumed zero events (a vacuous pass is a bug in
the scenario, not a clean protocol).
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigError
from .cache import CacheOracle
from .ddss import DDSSOracle
from .ha import HAOracle
from .locks import LockOracle
from .shrink import shrink as _shrink
from .trace import TraceView, replay
from .txn import TxnOracle

__all__ = ["CHECKS", "ALL_ORACLES", "run_check", "run_suite",
           "check_scenario", "check_trace", "canonical_trace_sha"]

#: every oracle; each consumes only the event prefixes it declares, so
#: running all of them over any trace is safe and catches cross-talk.
ALL_ORACLES: Sequence[Callable] = (LockOracle, DDSSOracle, CacheOracle,
                                   HAOracle, TxnOracle)


@contextmanager
def _kernel(mode: str):
    """Pin the event-kernel flavour for Environments built inside.

    ``fast`` is the default ladder-agenda kernel, ``heap`` keeps every
    fast path but swaps the agenda back to the binary heap
    (``REPRO_HEAP_AGENDA=1``), ``slow`` is the naive reference kernel.
    """
    if mode not in ("fast", "heap", "slow"):
        raise ConfigError(f"unknown kernel {mode!r} (fast|heap|slow)")
    prev_slow = os.environ.get("REPRO_SLOW_KERNEL")
    prev_heap = os.environ.get("REPRO_HEAP_AGENDA")
    os.environ.pop("REPRO_SLOW_KERNEL", None)
    os.environ.pop("REPRO_HEAP_AGENDA", None)
    if mode == "slow":
        os.environ["REPRO_SLOW_KERNEL"] = "1"
    elif mode == "heap":
        os.environ["REPRO_HEAP_AGENDA"] = "1"
    try:
        yield
    finally:
        for var, prev in (("REPRO_SLOW_KERNEL", prev_slow),
                          ("REPRO_HEAP_AGENDA", prev_heap)):
            if prev is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = prev


# -- scenario builders ---------------------------------------------------
# Each takes (seed, n_nodes) and returns a populated Observability.

def _lock_traffic(manager_cls, seed: int, n_nodes: int, n_actors: int,
                  n_locks: int = 4, horizon: float = 80_000.0, **mgr_kw):
    from ..net import Cluster
    from ..dlm import LockMode

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    manager = manager_cls(cluster, n_locks=n_locks, **mgr_kw)
    env = cluster.env
    rng = cluster.rng.get("check-locks")

    def actor(env, client, lock_i, shared, delay, hold):
        mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
        yield env.timeout(delay)
        yield client.acquire(lock_i, mode)
        yield env.timeout(hold)
        yield client.release(lock_i)

    for i in range(n_actors):
        client = manager.client(cluster.nodes[i % n_nodes])
        env.process(actor(env, client, i % n_locks, rng.random() < 0.5,
                          rng.uniform(0.0, 400.0),
                          rng.uniform(5.0, 60.0)),
                    name=f"check-lock-{i}")
    env.run(until=horizon)
    return obs


def _ncosed(seed: int, n_nodes: int):
    from ..dlm import NCoSEDManager
    return _lock_traffic(NCoSEDManager, seed, n_nodes, n_actors=4 * n_nodes)


def _dqnl(seed: int, n_nodes: int):
    from ..dlm import DQNLManager
    return _lock_traffic(DQNLManager, seed, n_nodes, n_actors=4 * n_nodes)


def _srsl(seed: int, n_nodes: int):
    from ..dlm import SRSLManager
    return _lock_traffic(SRSLManager, seed, n_nodes, n_actors=4 * n_nodes)


def _mcs(seed: int, n_nodes: int):
    from ..dlm import MCSManager
    return _lock_traffic(MCSManager, seed, n_nodes, n_actors=4 * n_nodes)


def _alock(seed: int, n_nodes: int):
    from ..dlm import ALockManager
    return _lock_traffic(ALockManager, seed, n_nodes,
                         n_actors=4 * n_nodes, cohort_budget=3)


def _lock_chaos(manager_cls, seed: int, n_nodes: int, shared_frac: float,
                **mgr_kw):
    """Fault-tolerant lock traffic: crashes force lease reclaims, so
    the oracle exercises epoch fencing, revocation, and zombies."""
    from ..net import Cluster
    from ..faults import FaultPlan
    from ..dlm import LockMode
    from ..errors import LockError

    crash_a = 2 % n_nodes or 1
    crash_b = (n_nodes - 1) or 1
    plan = (FaultPlan()
            .crash(crash_a, at=3_000.0, restart_at=9_000.0)
            .crash(crash_b, at=5_000.0))
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    cluster.install_faults(plan)
    manager = manager_cls(cluster, n_locks=4, lease_us=400.0, **mgr_kw)
    env = cluster.env
    rng = cluster.rng.get("check-chaos")

    def actor(env, client, lock_i, shared, delay, hold):
        mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
        yield env.timeout(delay)
        try:
            yield client.acquire(lock_i, mode)
        except LockError:
            return
        yield env.timeout(hold)
        try:
            yield client.release(lock_i)
        except LockError:
            pass

    for i in range(3 * n_nodes):
        client = manager.client(cluster.nodes[i % n_nodes])
        env.process(actor(env, client, i % 4, rng.random() < shared_frac,
                          rng.uniform(0.0, 8_000.0),
                          rng.uniform(500.0, 4_000.0)),
                    name=f"check-chaos-{i}")
    env.run(until=30_000.0)
    return obs


def _ncosed_chaos(seed: int, n_nodes: int):
    from ..dlm import NCoSEDManager
    return _lock_chaos(NCoSEDManager, seed, n_nodes, shared_frac=0.4)


def _mcs_chaos(seed: int, n_nodes: int):
    from ..dlm import MCSManager
    return _lock_chaos(MCSManager, seed, n_nodes, shared_frac=0.2)


def _alock_chaos(seed: int, n_nodes: int):
    from ..dlm import ALockManager
    return _lock_chaos(ALockManager, seed, n_nodes, shared_frac=0.2,
                       cohort_budget=3)


def _ddss(seed: int, n_nodes: int):
    """Every coherence model, multiple writers per key, repeat reads so
    DELTA/TEMPORAL client caches serve hits the oracle can bound."""
    from ..net import Cluster
    from ..ddss import DDSS, Coherence

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    env = cluster.env
    rng = cluster.rng.get("check-ddss")

    def owner(env, client, model, keys_out):
        key = yield client.allocate(128, coherence=model, placement=0,
                                    delta=2, ttl_us=300.0)
        keys_out.append(key)

    def worker(env, client, key, stamp, delay):
        yield env.timeout(delay)
        for i in range(1, 5):
            yield client.put(key, bytes([stamp]) * 96)
            yield client.get(key)
            yield env.timeout(float(i))
            yield client.get(key)  # repeat read: may hit a client cache

    for m_i, model in enumerate(Coherence):
        keys: List[int] = []
        opener = ddss.client(cluster.nodes[1 % n_nodes])
        p = env.process(owner(env, opener, model, keys),
                        name=f"check-ddss-alloc-{m_i}")
        env.run_until_event(p)
        for w in range(3):
            node = cluster.nodes[(1 + w) % n_nodes]
            env.process(worker(env, ddss.client(node), keys[0],
                               16 * (m_i + 1) + w,
                               rng.uniform(0.0, 50.0)),
                        name=f"check-ddss-{m_i}-{w}")
    env.run(until=200_000.0)
    return obs


def _cache(scheme_name: str, seed: int, n_nodes: int):
    """Zipf-ish accesses over a fileset sized to force evictions, so
    residency intervals open and close under the oracle's feet."""
    from ..net import Cluster
    from ..cache import SCHEMES
    from ..workloads import FileSet

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    n_proxies = max(2, n_nodes - 1)
    proxies = cluster.nodes[:n_proxies]
    extra = cluster.nodes[n_proxies:]
    fileset = FileSet(30, 1000, seed=seed)
    scheme = SCHEMES[scheme_name](proxies, fileset, 4000,
                                  extra_nodes=extra)
    env = cluster.env
    rng = cluster.rng.get("check-cache")

    def client(env, proxy, accesses, delay):
        yield env.timeout(delay)
        for doc in accesses:
            result = yield scheme.fetch(proxy, doc)
            if result.source == "miss":
                yield scheme.admit(proxy, doc)
                yield scheme.fetch(proxy, doc)

    for i, proxy in enumerate(proxies):
        accesses = [min(int(rng.random() * rng.random() * 30), 29)
                    for _ in range(40)]
        env.process(client(env, proxy, accesses, rng.uniform(0.0, 20.0)),
                    name=f"check-cache-{i}")
    env.run(until=300_000.0)
    return obs


def _cache_check(scheme_name: str):
    def fn(seed: int, n_nodes: int):
        return _cache(scheme_name, seed, n_nodes)
    fn.__name__ = f"_cache_{scheme_name.lower()}"
    return fn


def _shard(seed: int, n_nodes: int):
    """Sharded DDSS + sharded N-CoSED on a two-rack topology with a
    live ring rebalance (migrate off / restore) under client load:
    exercises directory bounces, tombstone re-resolution, and rehoming."""
    from ..topo.scenarios import shard_check
    return shard_check(seed, n_nodes)


def _txn_check(variant: str):
    """Contended multi-key transactions (OCC / 2PL / a mix of both) over
    the TPC-C-like transfer + new-order workload."""
    def fn(seed: int, n_nodes: int):
        from ..txn.scenarios import build_txn_scenario
        return build_txn_scenario(variant, seed, n_nodes, n_keys=4,
                                  n_workers=6, txns_per_worker=4)[0]
    fn.__name__ = f"_txn_{variant}"
    return fn


#: name -> (builder, default n_nodes, primary oracle NAME)
CHECKS: Dict[str, tuple] = {
    "ncosed": (_ncosed, 6, "locks"),
    "dqnl": (_dqnl, 6, "locks"),
    "srsl": (_srsl, 6, "locks"),
    "mcs": (_mcs, 6, "locks"),
    "alock": (_alock, 6, "locks"),
    "ncosed-chaos": (_ncosed_chaos, 8, "locks"),
    "mcs-chaos": (_mcs_chaos, 8, "locks"),
    "alock-chaos": (_alock_chaos, 8, "locks"),
    "ddss": (_ddss, 4, "ddss"),
    "cache-bcc": (_cache_check("BCC"), 5, "cache"),
    "cache-ccwr": (_cache_check("CCWR"), 5, "cache"),
    "cache-mtacc": (_cache_check("MTACC"), 5, "cache"),
    "cache-hybcc": (_cache_check("HYBCC"), 5, "cache"),
    "txn-occ": (_txn_check("occ"), 4, "txn"),
    "txn-2pl": (_txn_check("2pl"), 4, "txn"),
    "txn-mixed": (_txn_check("mixed"), 4, "txn"),
    "shard": (_shard, 8, "locks"),
}


# -- drivers -------------------------------------------------------------

def _lookup(name: str):
    spec = CHECKS.get(name)
    if spec is None:
        raise ConfigError(f"unknown check {name!r}; available: "
                          f"{', '.join(sorted(CHECKS))}")
    return spec


def _verdict(view: TraceView, oracles, violations, sanitizers):
    ok = not violations and not sanitizers
    return {
        "sim_now_us": view.meta.get("sim_now_us"),
        "events": len(view),
        "oracles": {o.NAME: o.to_dict() for o in oracles},
        "sanitizers": list(sanitizers),
        "verdict": "ok" if ok else "violation",
    }


def run_check(name: str, seed: int = 0, n_nodes: Optional[int] = None,
              kernel: str = "fast", shrink: bool = True) -> dict:
    """Run one packaged check end to end; returns the verdict dict.

    On violation and ``shrink=True`` the verdict carries a ``repro``
    entry: the shrunk failing event list plus the violation it still
    reproduces.
    """
    builder, default_nodes, _primary = _lookup(name)
    n = n_nodes or default_nodes
    with _kernel(kernel):
        obs = builder(seed, n)
    view = TraceView.from_obs(obs).require_complete()
    oracles = [f() for f in ALL_ORACLES]
    violations = replay(view, oracles)
    out = _verdict(view, oracles, violations, obs.violations())
    out.update({"check": name, "seed": seed, "n_nodes": n,
                "kernel": kernel})
    if violations and shrink:
        report = _shrink(view.events, ALL_ORACLES)
        if report is not None:
            out["repro"] = {
                "violation": report["violation"],
                "original_events": report["original_events"],
                "kept_events": report["kept_events"],
                "probes": report["probes"],
                "events": [[ev.t, ev.node, ev.etype, ev.fields]
                           for ev in report["events"]],
            }
    return out


def run_suite(checks: Optional[Sequence[str]] = None, seed: int = 0,
              kernels: Sequence[str] = ("fast",),
              shrink: bool = True) -> dict:
    """Run a set of checks under one or both kernels; aggregate."""
    names = list(checks) if checks else sorted(CHECKS)
    results = []
    for name in names:
        _builder, _n, primary = _lookup(name)
        for kern in kernels:
            r = run_check(name, seed=seed, kernel=kern, shrink=shrink)
            if (r["verdict"] == "ok"
                    and r["oracles"][primary]["checked"] == 0):
                r["verdict"] = "vacuous"
            results.append(r)
    bad = [r for r in results if r["verdict"] != "ok"]
    return {
        "seed": seed,
        "kernels": list(kernels),
        "checks": results,
        "failed": [{"check": r["check"], "kernel": r["kernel"],
                    "verdict": r["verdict"]} for r in bad],
        "verdict": "ok" if not bad else "violation",
    }


def check_trace(path: str, shrink: bool = True) -> dict:
    """Replay an exported ``repro-trace-v1`` file through every oracle."""
    view = TraceView.load(path)
    oracles = [f() for f in ALL_ORACLES]
    violations = replay(view, oracles)
    out = _verdict(view, oracles, violations, ())
    out["trace"] = path
    if violations and shrink:
        report = _shrink(view.events, ALL_ORACLES)
        if report is not None:
            out["repro"] = {
                "violation": report["violation"],
                "original_events": report["original_events"],
                "kept_events": report["kept_events"],
                "probes": report["probes"],
            }
    return out


def canonical_trace_sha(doc: dict) -> str:
    """Digest of a trace quotiented by same-instant *cross-node* order.

    The agenda breaks same-time ties by insertion sequence, and the
    fast event kernel collapses a transfer's multi-event cascade into
    fewer (earlier-inserted) entries than the naive kernel — so two
    causally *independent* chains landing at one simulated instant may
    pop in either order depending on the kernel, with no
    observable-state difference.  A stable sort by ``(t, node)`` keeps
    every node's own event order (and all timestamps, fields, and
    counts) byte-exact while erasing only that tie-break, which is the
    strongest cross-kernel equivalence the trace actually carries.
    """
    events = sorted(doc["events"], key=lambda e: (e[0], e[1]))
    blob = json.dumps({"sim_now_us": doc["sim_now_us"],
                       "emitted": doc["emitted"], "events": events},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def check_scenario(check: str = "ncosed", seed: int = 0,
                   n_nodes: Optional[int] = None,
                   kernel: str = "fast") -> dict:
    """Lab-dispatchable check runner (``repro.verify.suites:check_scenario``).

    Returns a flat, canonical-JSON-able record; ``trace_sha`` is the
    canonical trace digest (:func:`canonical_trace_sha`), which the
    metamorphic driver diffs across kernels and permuted seeds.
    """
    builder, default_nodes, _primary = _lookup(check)
    n = n_nodes or default_nodes
    with _kernel(kernel):
        obs = builder(seed, n)
    doc = obs.trace_dict()
    view = TraceView.from_obs(obs).require_complete()
    oracles = [f() for f in ALL_ORACLES]
    violations = replay(view, oracles)
    sanitizers = obs.violations()
    return {
        "check": check,
        "kernel": kernel,
        "n_nodes": n,
        "events": len(view),
        "sim_now_us": view.meta.get("sim_now_us"),
        "violations": len(violations) + len(sanitizers),
        "trace_sha": canonical_trace_sha(doc),
        "verdict": "ok" if not violations and not sanitizers
                   else "violation",
    }
