"""Trace loading and the offline oracle base class.

The verify layer consumes ``repro-trace-v1`` documents — the full-event
export produced by :meth:`repro.obs.Observability.trace_dict` — and
replays them through *oracles*: sequential reference models that flag
the first divergence from a protocol's contract.

Oracles are deliberately shaped like the online sanitizers
(``feed``/``finish``/``violations``/``clean``) but run offline, so they
may look at the whole trace (e.g. a get may be justified by a put whose
completion event appears later in the trace because the two overlapped
in simulated time).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..obs.events import TraceEvent

__all__ = ["TRACE_FORMAT", "TraceView", "Oracle", "replay",
           "replay_fresh"]

TRACE_FORMAT = "repro-trace-v1"


class TraceView:
    """An event list plus provenance, as the oracles consume it."""

    def __init__(self, events: Sequence[TraceEvent], emitted: int = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.events: List[TraceEvent] = list(events)
        self.emitted = len(self.events) if emitted is None else emitted
        self.meta = dict(meta or {})

    @property
    def complete(self) -> bool:
        """False when the tracer ring overflowed: events fell off the
        front and the trace cannot be replayed end to end."""
        return self.emitted == len(self.events)

    def require_complete(self) -> "TraceView":
        if not self.complete:
            raise ConfigError(
                f"trace is incomplete: {self.emitted} events emitted but "
                f"only {len(self.events)} buffered (raise the obs ring "
                f"capacity to capture the full run)")
        return self

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_obs(cls, obs) -> "TraceView":
        return cls(list(obs.trace), emitted=obs.trace.emitted,
                   meta={"sim_now_us": obs.env.now})

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TraceView":
        fmt = doc.get("format")
        if fmt != TRACE_FORMAT:
            raise ConfigError(
                f"not a {TRACE_FORMAT} document (format={fmt!r}); "
                f"export one with Observability.export_trace_json / "
                f"`repro obs run --trace`")
        events = [TraceEvent(t, node, etype, dict(fields))
                  for t, node, etype, fields in doc["events"]]
        return cls(events, emitted=doc.get("emitted", len(events)),
                   meta={"sim_now_us": doc.get("sim_now_us")})

    @classmethod
    def load(cls, path: str) -> "TraceView":
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"cannot read trace {path}: {exc}")
        except ValueError as exc:
            raise ConfigError(f"corrupt trace {path}: {exc}")
        return cls.from_dict(doc)

    def __len__(self) -> int:
        return len(self.events)


class Oracle:
    """Sequential reference model replaying one subsystem's events.

    Subclasses set ``NAME`` and ``PREFIXES`` (dotted-type prefixes they
    consume), implement :meth:`feed` and optionally :meth:`finish`.
    ``checked`` counts consumed events so a suite can prove an oracle
    actually saw traffic (a clean verdict over zero events is vacuous).
    """

    NAME = "oracle"
    PREFIXES: Sequence[str] = ()

    def __init__(self):
        self.violations: List[Dict[str, Any]] = []
        self.checked = 0

    # -- replay hooks ---------------------------------------------------
    def wants(self, etype: str) -> bool:
        return any(etype.startswith(p) for p in self.PREFIXES)

    def feed(self, idx: int, ev: TraceEvent) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Called once after the last event (end-of-trace checks)."""

    # -- verdict --------------------------------------------------------
    def flag(self, idx: Optional[int], ev: Optional[TraceEvent],
             msg: str, **scope) -> None:
        self.violations.append({
            "oracle": self.NAME,
            "index": idx,
            "t": None if ev is None else ev.t,
            "node": None if ev is None else ev.node,
            "etype": None if ev is None else ev.etype,
            "msg": msg,
            "scope": dict(scope),
        })

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {"checked": self.checked,
                "violations": list(self.violations)}


def replay(view: TraceView,
           oracles: Sequence[Oracle]) -> List[Dict[str, Any]]:
    """Feed every event through every interested oracle; return the
    combined violation list ordered by trace position."""
    for idx, ev in enumerate(view.events):
        for oracle in oracles:
            if oracle.wants(ev.etype):
                oracle.checked += 1
                oracle.feed(idx, ev)
    for oracle in oracles:
        oracle.finish()
    out = []
    for oracle in oracles:
        out.extend(oracle.violations)
    out.sort(key=lambda v: (v["index"] is None,
                            v["index"] if v["index"] is not None else 0))
    return out


def replay_fresh(view: TraceView,
                 factories: Sequence[Callable[[], Oracle]]):
    """Replay with freshly constructed oracles; returns (oracles,
    violations).  The shrinker re-runs this on candidate sub-traces."""
    oracles = [f() for f in factories]
    return oracles, replay(view, oracles)
