"""Offline trace-replay correctness oracles (``repro check``).

Differential checking for the protocol layers: a run's full event trace
(``repro-trace-v1``, exported by the obs layer) is replayed against
sequential reference models — the *oracles* — which flag the first
divergence from each protocol's contract:

* :class:`LockOracle` — mutual exclusion, FIFO/fairness, and epoch
  fencing for the three DLM designs (N-CoSED, DQNL, SRSL);
* :class:`DDSSOracle` — per-coherence-model read/write contracts
  (atomic snapshots, serialized puts, version monotonicity, DELTA and
  TEMPORAL staleness bounds, lost updates);
* :class:`CacheOracle` — cooperative-cache hits serve the committed
  content from a store that really held it, with exact accounting;
* :class:`TxnOracle` — committed multi-key transactions form a
  serializable history (acyclic dependency graph, no lost updates,
  dirty reads, or torn installs).

On a violation, :func:`shrink` reduces the trace to a small reproducer
(truncate → scope filter → verified prefix bisection).  Packaged check
scenarios live in :data:`CHECKS`; :func:`run_check` / :func:`run_suite`
produce machine-readable verdicts and :func:`metamorphic_sweep` drives
the same checks across kernels, seeds, and node counts through
:mod:`repro.lab`, diffing the deterministic exports.
"""

from .trace import TRACE_FORMAT, Oracle, TraceView, replay, replay_fresh
from .locks import LockOracle
from .ddss import DDSSOracle
from .cache import CacheOracle
from .ha import HAOracle
from .txn import TxnOracle
from .shrink import shrink
from .suites import (ALL_ORACLES, CHECKS, canonical_trace_sha,
                     check_scenario, check_trace, run_check, run_suite)
from .metamorphic import metamorphic_sweep

__all__ = [
    "TRACE_FORMAT",
    "TraceView",
    "Oracle",
    "replay",
    "replay_fresh",
    "LockOracle",
    "DDSSOracle",
    "CacheOracle",
    "HAOracle",
    "TxnOracle",
    "shrink",
    "ALL_ORACLES",
    "CHECKS",
    "canonical_trace_sha",
    "check_scenario",
    "check_trace",
    "run_check",
    "run_suite",
    "metamorphic_sweep",
]
