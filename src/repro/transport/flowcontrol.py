"""Credit-based vs packetized flow control (paper §6).

The paper's observation: with credit-based flow control every message
consumes one preposted temporary buffer **regardless of its size** — two
1-byte messages burn two 8 KB buffers, wasting 99.98 % of the space and
capping small-message rate at ``credits / round-trip``.  Packetized flow
control instead lets the *sender* manage the receiver's buffer pool as a
byte ring via RDMA writes, packing messages tightly, so the small-message
rate is bounded by bandwidth and ack frequency instead of message count.

These classes are a focused micro-model used by the E10 bench:

* :class:`FlowReceiver` — owns ``nbufs`` buffers of ``buf_bytes`` each
  and drains them at a fixed per-message application cost.
* :class:`CreditFlowSender.stream` — sends N messages under credits.
* :class:`PacketizedFlowSender.stream` — sends N messages into the
  remote ring via RDMA write, space-limited rather than credit-limited.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim import Event, Resource, Store

__all__ = ["FlowReceiver", "CreditFlowSender", "PacketizedFlowSender"]

#: application-level drain cost per delivered message (µs)
DRAIN_PER_MSG_US = 0.05
#: receiver posts an ack/credit-return after this many drained messages
ACK_BATCH = 4


def _stall_release(fabric, node_id: int):
    """End of an active ``stall_credits`` window on ``node_id``, if any.

    The receiver application keeps draining buffers during a stall —
    the gray failure wedges only the credit/space *returns*, which is
    exactly what starves the sender.
    """
    injector = fabric.injector
    if injector is None:
        return None
    return injector.credit_stall_until(node_id)


class FlowReceiver:
    """Receiving peer with a fixed preposted buffer pool."""

    def __init__(self, node, nbufs: int = 16, buf_bytes: int = 8192):
        if nbufs <= 0 or buf_bytes <= 0:
            raise ConfigError("nbufs and buf_bytes must be positive")
        self.node = node
        self.env = node.env
        self.nbufs = nbufs
        self.buf_bytes = buf_bytes
        self.delivered = 0
        self.delivered_bytes = 0

    @property
    def pool_bytes(self) -> int:
        return self.nbufs * self.buf_bytes


class CreditFlowSender:
    """Sender limited by one credit per message."""

    def __init__(self, node, receiver: FlowReceiver):
        self.node = node
        self.env = node.env
        self.receiver = receiver
        self._credits = Resource(self.env, capacity=receiver.nbufs)
        self._ack_due = 0

    def stream(self, n_msgs: int, msg_bytes: int):
        """Generator: send ``n_msgs`` of ``msg_bytes`` each; returns the
        achieved bandwidth in bytes/µs."""
        if msg_bytes > self.receiver.buf_bytes:
            raise ConfigError("message larger than a preposted buffer")
        env = self.env
        fabric = self.node.fabric
        rnode = self.receiver.node
        t0 = env.now
        inflight = Store(env)
        # Per-stream completion: signalled by rx_side once *this* stream's
        # n_msgs have drained.  Gating on the receiver's cumulative
        # ``delivered`` counter would let a second stream() against the
        # same FlowReceiver return early, and polling quantized the
        # measured elapsed time to the poll period.
        drained_all = Event(env)

        sender_id = self.node.id
        capacity = self.receiver.nbufs

        def credits_back(n: int) -> None:
            for _ in range(n):
                self._credits.release()
            obs = env.obs
            if obs is not None:
                obs.trace.emit("flow.credit.return", node=sender_id,
                               sender=sender_id, n=n)

        def rx_side():
            """Receiver app: drain arrivals, return credits in batches."""
            acked = 0
            for i in range(n_msgs):
                yield inflight.get()
                # drain + repost a fresh receive WQE for the freed buffer
                # (packetized flow control has no per-message repost: the
                # sender manages the ring with RDMA writes)
                yield env.timeout(DRAIN_PER_MSG_US + fabric.params.post_us)
                self.receiver.delivered += 1
                self.receiver.delivered_bytes += msg_bytes
                acked += 1
                if acked == ACK_BATCH or i == n_msgs - 1:
                    release = _stall_release(fabric, rnode.id)
                    if release is not None:
                        # gray failure: receiver wedged, credits held
                        # back until the stall window closes
                        yield env.timeout(release - env.now)
                    # credit-return control message flows back
                    ret = fabric.transfer(rnode.id, self.node.id,
                                          fabric.params.header_bytes)
                    n = acked
                    ret.add_callback(lambda _ev, n=n: credits_back(n))
                    acked = 0
            drained_all.succeed()

        env.process(rx_side(), name="credit-rx")
        for _ in range(n_msgs):
            yield self._credits.acquire()
            obs = env.obs
            if obs is not None:
                obs.trace.emit("flow.credit.take", node=sender_id,
                               sender=sender_id, capacity=capacity)
            # every message occupies one whole preposted buffer slot
            done = fabric.transfer(self.node.id, rnode.id,
                                   msg_bytes + fabric.params.header_bytes)
            done.add_callback(lambda _ev: inflight.try_put(1))
        yield drained_all
        elapsed = env.now - t0
        return (n_msgs * msg_bytes) / elapsed if elapsed > 0 else 0.0


class PacketizedFlowSender:
    """Sender managing the receiver's pool as a byte ring over RDMA."""

    def __init__(self, node, receiver: FlowReceiver):
        self.node = node
        self.env = node.env
        self.receiver = receiver
        # sender-side view of free bytes in the remote ring
        self._free = receiver.pool_bytes

    def stream(self, n_msgs: int, msg_bytes: int):
        """Generator: send ``n_msgs`` packed tightly; returns bytes/µs."""
        env = self.env
        fabric = self.node.fabric
        rnode = self.receiver.node
        p = fabric.params
        t0 = env.now
        inflight = Store(env)
        space_freed = Store(env)
        drained_all = Event(env)  # per-stream; see CreditFlowSender.stream
        # packed wire footprint: payload + a small per-message header
        footprint = msg_bytes + 8

        sender_id = self.node.id
        pool = self.receiver.pool_bytes

        def space_back(f: int) -> None:
            space_freed.try_put(f)
            obs = env.obs
            if obs is not None:
                obs.trace.emit("flow.ring.free", node=sender_id,
                               sender=sender_id, nbytes=f)

        def rx_side():
            drained = 0
            freed = 0
            for i in range(n_msgs):
                yield inflight.get()
                yield env.timeout(DRAIN_PER_MSG_US)
                self.receiver.delivered += 1
                self.receiver.delivered_bytes += msg_bytes
                drained += 1
                freed += footprint
                if drained == ACK_BATCH or i == n_msgs - 1:
                    release = _stall_release(fabric, rnode.id)
                    if release is not None:
                        yield env.timeout(release - env.now)
                    ret = fabric.transfer(rnode.id, self.node.id,
                                          p.header_bytes)
                    f = freed
                    ret.add_callback(lambda _ev, f=f: space_back(f))
                    drained = 0
                    freed = 0
            drained_all.succeed()

        env.process(rx_side(), name="packetized-rx")
        for _ in range(n_msgs):
            while self._free < footprint:
                self._free += yield space_freed.get()
            self._free -= footprint
            obs = env.obs
            if obs is not None:
                obs.trace.emit("flow.ring.reserve", node=sender_id,
                               sender=sender_id, nbytes=footprint,
                               pool=pool)
            # sender-managed RDMA write straight into the packed ring
            done = fabric.transfer(self.node.id, rnode.id,
                                   footprint + p.header_bytes)
            done.add_callback(lambda _ev: inflight.try_put(1))
        yield drained_all
        elapsed = env.now - t0
        return (n_msgs * msg_bytes) / elapsed if elapsed > 0 else 0.0
