"""AZ-SDP — Asynchronous Zero-copy SDP (Balaji et al., CAC'06, ref [3]).

The key idea from the paper: keep the *synchronous* sockets interface but
perform the transfer *asynchronously*.  On ``send`` the user buffer is
memory-protected (so the application cannot scribble on in-flight data)
and control returns immediately; the receiver pulls the payload with an
RDMA read exactly as in ZSDP.  If the application touches a protected
buffer before its transfer completes, the page-fault handler blocks it
until RdmaDone and charges a fault penalty.

Model knobs:

* ``PROTECT_US`` — mprotect + bookkeeping per send.
* ``FAULT_US`` — page-fault handling when a buffer is touched early.
* ``max_inflight`` — window of outstanding protected buffers; ``send``
  blocks when the window is full (mirrors the real stack's limit on
  outstanding SrcAvails).

``send(payload, size, buf=...)`` identifies the user buffer; re-sending
from (or explicitly ``touch``-ing) a buffer that is still in flight
triggers the page-fault path.  Distinct buffers overlap freely — that is
the whole point.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.errors import TransportError
from repro.sim import Event, Resource

from repro.transport.base import Connection, Datagram
from repro.transport.sdp import _SdpEndpointBase, pin_us

__all__ = ["AzSdpEndpoint", "AzSdpConnection", "PROTECT_US", "FAULT_US"]

_xfer_ids = itertools.count(1)

PROTECT_US = 1.5
FAULT_US = 8.0


class AzSdpConnection(Connection):
    """AZ-SDP connection: asynchronous zero-copy sends."""

    def __init__(self, endpoint, peer_node, conn_id, peer_conn_id,
                 max_inflight: int = 8):
        super().__init__(endpoint, peer_node, conn_id=conn_id)
        self.peer_conn_id = peer_conn_id
        self._window = Resource(self.env, capacity=max_inflight)
        self._done_events: Dict[int, Event] = {}
        #: buffer name -> completion event of its in-flight transfer
        self._inflight_bufs: Dict[Any, Event] = {}
        self.page_faults = 0

    # -- send path ---------------------------------------------------------
    def send(self, payload: Any = None, size: int = 0,
             buf: Optional[Any] = None) -> Event:
        """Asynchronous send; the event fires when send() *returns* to the
        app (after protect), not when the data has moved."""
        self._check_open()
        self._account_tx(size)
        return self.env.process(self._send_proc(payload, size, buf),
                                name=f"azsdp-send@{self.node.name}")

    def _send_proc(self, payload, size, buf):
        # Touching a buffer that is still in flight faults and blocks.
        if buf is not None and buf in self._inflight_bufs:
            yield from self._fault_wait(buf)
        yield self._window.acquire()
        yield self.env.timeout(PROTECT_US + pin_us(size))
        datagram = Datagram(payload=payload, size=size, sent_at=self.env.now)
        xid = next(_xfer_ids)
        done = self.env.event()
        self._done_events[xid] = done
        if buf is not None:
            self._inflight_bufs[buf] = done
        key = self.endpoint.staging.remote_key()
        self.node.nic.send(self.peer_node, payload={
            "kind": "srcavail", "conn_id": self.peer_conn_id,
            "xid": xid, "dgram": datagram, "key": key, "buf": buf,
        }, size=0, tag=self.endpoint.WIRE_TAG)

        def on_done(_ev, buf=buf):
            self._window.release()
            if buf is not None and self._inflight_bufs.get(buf) is _ev:
                del self._inflight_bufs[buf]

        done.add_callback(on_done)
        # Control returns to the app immediately: async under the hood.
        return None

    def touch(self, buf: Any) -> Event:
        """Application touches ``buf``; blocks through a fault if in flight."""
        return self.env.process(self._touch_proc(buf),
                                name=f"azsdp-touch@{self.node.name}")

    def _touch_proc(self, buf):
        if buf in self._inflight_bufs:
            yield from self._fault_wait(buf)
        else:
            yield self.env.timeout(0.0)
        return None

    def _fault_wait(self, buf):
        self.page_faults += 1
        done = self._inflight_bufs[buf]
        yield self.env.timeout(FAULT_US)
        yield done

    def drain(self) -> Event:
        """Event firing once every outstanding transfer has completed."""
        pending = [ev for ev in self._done_events.values()
                   if not ev.triggered]
        return self.env.all_of(pending)

    # -- receive path (identical pull to ZSDP) ------------------------------
    def recv(self) -> Event:
        self._check_open()
        return self.env.process(self._recv_proc(),
                                name=f"azsdp-recv@{self.node.name}")

    def _recv_proc(self):
        frame = yield self._inbox.get()
        datagram, key, xid = frame["dgram"], frame["key"], frame["xid"]
        wire = max(datagram.size, 8)
        yield self.node.nic.rdma_read(key.node, key.addr, key.rkey, 8,
                                      wire_bytes=wire)
        self.node.nic.send(self.peer_node, payload={
            "kind": "rdmadone", "conn_id": self.peer_conn_id, "xid": xid,
        }, size=0, tag=self.endpoint.WIRE_TAG)
        datagram.delivered_at = self.env.now
        return datagram

    def _on_frame(self, kind: str, body: dict) -> None:
        if kind == "srcavail":
            self._inbox.try_put(body)
        elif kind == "rdmadone":
            done = self._done_events.pop(body["xid"], None)
            if done is not None:
                done.succeed()
        else:  # pragma: no cover - defensive
            raise TransportError(f"unexpected AZ-SDP frame {kind!r}")


class AzSdpEndpoint(_SdpEndpointBase):
    """SDP endpoint in asynchronous zero-copy mode."""

    WIRE_TAG = "azsdp"
    CONN_CLS = AzSdpConnection
