"""Host-based TCP/IP socket emulation — the paper's baseline transport.

Cost structure (per :class:`repro.net.params.NetworkParams`):

* ``send``: host CPU ``sock_cpu_us(size)`` (kernel copy + protocol
  processing, competing with everything else on the node's
  processor-sharing CPU), then the wire transfer.
* ``recv``: the datagram lands in the connection's kernel buffer at wire
  arrival; the application's recv then pays host CPU ``sock_cpu_us(size)``
  before data is returned.

Because both ends charge the *shared* CPU, socket latency inflates when a
node is loaded — the effect that makes socket-based monitoring inaccurate
(Fig. 8a) and the SRSL lock server slow (Fig. 5).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict

from repro.errors import TransportError
from repro.sim import Event

from repro.transport.base import Connection, Datagram, Endpoint

__all__ = ["TcpEndpoint", "TcpConnection"]

_tcp_conn_ids = itertools.count(1)


class TcpConnection(Connection):
    """One side of an established emulated-TCP connection."""

    def __init__(self, endpoint: "TcpEndpoint", peer_node: int,
                 conn_id: int, peer_conn_id: int):
        super().__init__(endpoint, peer_node, conn_id=conn_id)
        self.peer_conn_id = peer_conn_id

    def send(self, payload: Any = None, size: int = 0) -> Event:
        """Application send; fires when the send() call would return."""
        self._check_open()
        self._account_tx(size)
        return self.env.process(self._send_proc(payload, size),
                                name=f"tcp-send@{self.node.name}")

    def _send_proc(self, payload, size):
        params = self.node.nic.params
        datagram = Datagram(payload=payload, size=size, sent_at=self.env.now)
        # Kernel copy / protocol processing on the shared CPU.
        yield self.node.cpu.run(params.sock_cpu_us(size), name="tcp-tx")
        self.endpoint._wire_send(self, datagram)
        # Buffered semantics: send returns once the data is in the kernel.
        return None

    def recv(self) -> Event:
        """Application recv; fires with the Datagram after rx CPU costs."""
        self._check_open()
        return self.env.process(self._recv_proc(),
                                name=f"tcp-recv@{self.node.name}")

    def _recv_proc(self):
        params = self.node.nic.params
        datagram = yield self._inbox.get()
        # Kernel->user copy / protocol processing on the shared CPU.
        yield self.node.cpu.run(params.sock_cpu_us(datagram.size),
                                name="tcp-rx")
        datagram.delivered_at = self.env.now
        return datagram


class TcpEndpoint(Endpoint):
    """Emulated TCP/IP stack bound to one node."""

    WIRE_TAG = "tcp"

    def __init__(self, node):
        super().__init__(node)
        self._conns: Dict[int, TcpConnection] = {}
        self._pending_connects: Dict[int, Event] = {}
        self.env.process(self._dispatch(), name=f"tcp-dispatch@{node.name}")

    # -- connection setup ---------------------------------------------
    def connect(self, peer_node: int, port: int) -> Event:
        """Three-way handshake; event value is the client TcpConnection."""
        my_id = next(_tcp_conn_ids)
        done = self.env.event()
        self._pending_connects[my_id] = done
        self.node.nic.send(peer_node, payload={
            "kind": "syn", "port": port, "conn_id": my_id,
        }, size=0, tag=self.WIRE_TAG)
        return done

    # -- wire plumbing ---------------------------------------------------
    def _wire_send(self, conn: TcpConnection, datagram: Datagram) -> None:
        self.node.nic.send(conn.peer_node, payload={
            "kind": "data", "conn_id": conn.peer_conn_id, "dgram": datagram,
        }, size=datagram.size, tag=self.WIRE_TAG)

    def _dispatch(self):
        """Demultiplex inbound wire messages to listeners/connections."""
        while True:
            msg = yield self.node.nic.recv(tag=self.WIRE_TAG)
            body = msg.payload
            kind = body["kind"]
            if kind == "syn":
                self._on_syn(msg.src, body)
            elif kind == "synack":
                self._on_synack(msg.src, body)
            elif kind == "data":
                self._on_data(body)
            else:  # pragma: no cover - defensive
                raise TransportError(f"unknown tcp frame {kind!r}")

    def _on_syn(self, src: int, body: dict) -> None:
        listener = self._listener(body["port"])
        my_id = next(_tcp_conn_ids)
        conn = TcpConnection(self, peer_node=src, conn_id=my_id,
                             peer_conn_id=body["conn_id"])
        self._conns[my_id] = conn
        listener._offer(conn)
        self.node.nic.send(src, payload={
            "kind": "synack", "conn_id": body["conn_id"],
            "server_conn_id": my_id,
        }, size=0, tag=self.WIRE_TAG)

    def _on_synack(self, src: int, body: dict) -> None:
        done = self._pending_connects.pop(body["conn_id"], None)
        if done is None:  # pragma: no cover - defensive
            raise TransportError("synack for unknown connect")
        conn = TcpConnection(self, peer_node=src,
                             conn_id=body["conn_id"],
                             peer_conn_id=body["server_conn_id"])
        self._conns[body["conn_id"]] = conn
        done.succeed(conn)

    def _on_data(self, body: dict) -> None:
        conn = self._conns.get(body["conn_id"])
        if conn is None or conn.closed:
            return  # RST-equivalent: silently drop to a closed port
        conn._deliver(body["dgram"])
