"""Sockets Direct Protocol (SDP) over the RDMA fabric.

Two operation modes from the paper's prior work ([5], [3]):

* **BSDP** (:class:`BufferedSdpEndpoint`) — buffered copy mode.  Small
  messages are memcpy'd into preposted 8 KB buffers under credit-based
  flow control.  Cheap per message (no kernel TCP stack) but pays one
  copy per end and stalls when credits run out.
* **ZSDP** (:class:`ZeroCopySdpEndpoint`) — synchronous zero copy.  The
  sender pins the user buffer and advertises it (SrcAvail); the receiver
  RDMA-reads the payload directly and replies RdmaDone.  ``send`` blocks
  until RdmaDone, preserving synchronous socket semantics with no copies
  — a win for large messages, a loss for small ones (handshake cost).

The asynchronous variant AZ-SDP lives in :mod:`repro.transport.azsdp`.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict

from repro.errors import TransportError
from repro.sim import Event, Resource

from repro.transport.base import Connection, Datagram, Endpoint

__all__ = ["BufferedSdpEndpoint", "ZeroCopySdpEndpoint",
           "BufferedSdpConnection", "ZeroCopySdpConnection"]

_sdp_conn_ids = itertools.count(1)
_xfer_ids = itertools.count(1)

#: memcpy-style copy costs (protocol offloaded; no kernel TCP stack).
#: 2007-era sustained copy with cache pollution runs ~800 MB/s — below
#: the IB wire rate, which is exactly why zero copy pays off for large
#: messages.
BCOPY_PER_MSG_US = 1.0
BCOPY_PER_BYTE_US = 0.0012

#: credit-based flow control defaults (paper's example: 8 KB buffers)
SDP_BUF_BYTES = 8192
SDP_CREDITS = 16

#: zero-copy costs
PIN_BASE_US = 5.0          # buffer pinning / SrcAvail preparation
PIN_PER_KB_US = 0.01       # page-table walk scales mildly with size


def bcopy_us(nbytes: int) -> float:
    """CPU cost of one buffered-SDP copy of ``nbytes``."""
    return BCOPY_PER_MSG_US + nbytes * BCOPY_PER_BYTE_US


def pin_us(nbytes: int) -> float:
    """Cost of pinning a user buffer for zero-copy transmission."""
    return PIN_BASE_US + (nbytes / 1024.0) * PIN_PER_KB_US


class _SdpEndpointBase(Endpoint):
    """Shared handshake + dispatch for all SDP variants."""

    WIRE_TAG = "sdp"
    CONN_CLS: type = None  # set by subclasses

    def __init__(self, node):
        super().__init__(node)
        self._conns: Dict[int, Connection] = {}
        self._pending_connects: Dict[int, Event] = {}
        # Staging region standing in for pinned user buffers: remote
        # zero-copy reads target this window (timed at full payload size).
        self.staging = node.memory.register(4096, name="sdp-staging")
        self.env.process(self._dispatch(), name=f"sdp-dispatch@{node.name}")

    # -- connection setup ---------------------------------------------
    def connect(self, peer_node: int, port: int) -> Event:
        my_id = next(_sdp_conn_ids)
        done = self.env.event()
        self._pending_connects[my_id] = done
        self.node.nic.send(peer_node, payload={
            "kind": "syn", "port": port, "conn_id": my_id,
        }, size=0, tag=self.WIRE_TAG)
        return done

    def _make_conn(self, peer_node: int, conn_id: int,
                   peer_conn_id: int) -> Connection:
        conn = type(self).CONN_CLS(self, peer_node, conn_id, peer_conn_id)
        self._conns[conn_id] = conn
        return conn

    # -- dispatcher -----------------------------------------------------
    def _dispatch(self):
        while True:
            msg = yield self.node.nic.recv(tag=self.WIRE_TAG)
            body = msg.payload
            kind = body["kind"]
            if kind == "syn":
                listener = self._listener(body["port"])
                my_id = next(_sdp_conn_ids)
                conn = self._make_conn(msg.src, my_id, body["conn_id"])
                listener._offer(conn)
                self.node.nic.send(msg.src, payload={
                    "kind": "synack", "conn_id": body["conn_id"],
                    "server_conn_id": my_id,
                }, size=0, tag=self.WIRE_TAG)
            elif kind == "synack":
                done = self._pending_connects.pop(body["conn_id"], None)
                if done is None:  # pragma: no cover - defensive
                    raise TransportError("synack for unknown connect")
                conn = self._make_conn(msg.src, body["conn_id"],
                                       body["server_conn_id"])
                done.succeed(conn)
            else:
                conn = self._conns.get(body["conn_id"])
                if conn is not None and not conn.closed:
                    conn._on_frame(kind, body)


# ---------------------------------------------------------------------------
# Buffered-copy SDP
# ---------------------------------------------------------------------------

class BufferedSdpConnection(Connection):
    """BSDP: copy into preposted buffers under credit flow control."""

    def __init__(self, endpoint, peer_node, conn_id, peer_conn_id,
                 credits: int = SDP_CREDITS, buf_bytes: int = SDP_BUF_BYTES):
        super().__init__(endpoint, peer_node, conn_id=conn_id)
        self.peer_conn_id = peer_conn_id
        self.buf_bytes = buf_bytes
        self._credits = Resource(self.env, capacity=credits)

    def send(self, payload: Any = None, size: int = 0) -> Event:
        self._check_open()
        self._account_tx(size)
        return self.env.process(self._send_proc(payload, size),
                                name=f"bsdp-send@{self.node.name}")

    def _send_proc(self, payload, size):
        datagram = Datagram(payload=payload, size=size, sent_at=self.env.now)
        nchunks = max(1, math.ceil(size / self.buf_bytes))
        remaining = size
        for i in range(nchunks):
            chunk = min(self.buf_bytes, remaining) if size else 0
            remaining -= chunk
            yield self._credits.acquire()
            yield self.node.cpu.run(bcopy_us(chunk), name="bsdp-tx-copy")
            last = i == nchunks - 1
            self.node.nic.send(self.peer_node, payload={
                "kind": "data", "conn_id": self.peer_conn_id,
                "bytes": chunk,
                "chunks": nchunks if last else 0,
                "dgram": datagram if last else None,
            }, size=chunk, tag=self.endpoint.WIRE_TAG)
        # Buffered semantics: send returns once the last chunk is posted.
        return None

    def recv(self) -> Event:
        self._check_open()
        return self.env.process(self._recv_proc(),
                                name=f"bsdp-recv@{self.node.name}")

    def _recv_proc(self):
        got = 0
        while True:
            frame = yield self._inbox.get()
            got += 1
            # copy each chunk out of its preposted buffer and return the
            # credit immediately — a datagram may span more chunks than
            # there are credits, so per-datagram returns would deadlock
            yield self.node.cpu.run(bcopy_us(frame["bytes"]),
                                    name="bsdp-rx-copy")
            self.node.nic.send(self.peer_node, payload={
                "kind": "credit", "conn_id": self.peer_conn_id, "n": 1,
            }, size=0, tag=self.endpoint.WIRE_TAG)
            if frame["chunks"]:  # final chunk of a datagram
                nchunks, datagram = frame["chunks"], frame["dgram"]
                break
        if got != nchunks:  # pragma: no cover - protocol invariant
            raise TransportError("interleaved BSDP chunks on one connection")
        datagram.delivered_at = self.env.now
        return datagram

    def _on_frame(self, kind: str, body: dict) -> None:
        if kind == "data":
            self._inbox.try_put(body)
        elif kind == "credit":
            for _ in range(body["n"]):
                self._credits.release()
        else:  # pragma: no cover - defensive
            raise TransportError(f"unexpected BSDP frame {kind!r}")


class BufferedSdpEndpoint(_SdpEndpointBase):
    """SDP endpoint in buffered-copy mode."""

    WIRE_TAG = "sdp"
    CONN_CLS = BufferedSdpConnection


# ---------------------------------------------------------------------------
# Synchronous zero-copy SDP
# ---------------------------------------------------------------------------

class ZeroCopySdpConnection(Connection):
    """ZSDP: SrcAvail / remote RDMA read / RdmaDone handshake."""

    def __init__(self, endpoint, peer_node, conn_id, peer_conn_id):
        super().__init__(endpoint, peer_node, conn_id=conn_id)
        self.peer_conn_id = peer_conn_id
        self._done_events: Dict[int, Event] = {}

    def send(self, payload: Any = None, size: int = 0) -> Event:
        self._check_open()
        self._account_tx(size)
        return self.env.process(self._send_proc(payload, size),
                                name=f"zsdp-send@{self.node.name}")

    def _send_proc(self, payload, size):
        datagram = Datagram(payload=payload, size=size, sent_at=self.env.now)
        yield self.env.timeout(pin_us(size))
        xid = next(_xfer_ids)
        done = self.env.event()
        self._done_events[xid] = done
        key = self.endpoint.staging.remote_key()
        self.node.nic.send(self.peer_node, payload={
            "kind": "srcavail", "conn_id": self.peer_conn_id,
            "xid": xid, "dgram": datagram, "key": key,
        }, size=0, tag=self.endpoint.WIRE_TAG)
        # Synchronous semantics: block until the receiver pulled the data.
        yield done
        return None

    def recv(self) -> Event:
        self._check_open()
        return self.env.process(self._recv_proc(),
                                name=f"zsdp-recv@{self.node.name}")

    def _recv_proc(self):
        frame = yield self._inbox.get()
        datagram, key, xid = frame["dgram"], frame["key"], frame["xid"]
        # Pull the payload straight out of the sender's (pinned) buffer.
        wire = max(datagram.size, 8)
        yield self.node.nic.rdma_read(key.node, key.addr, key.rkey, 8,
                                      wire_bytes=wire)
        self.node.nic.send(self.peer_node, payload={
            "kind": "rdmadone", "conn_id": self.peer_conn_id, "xid": xid,
        }, size=0, tag=self.endpoint.WIRE_TAG)
        datagram.delivered_at = self.env.now
        return datagram

    def _on_frame(self, kind: str, body: dict) -> None:
        if kind == "srcavail":
            self._inbox.try_put(body)
        elif kind == "rdmadone":
            done = self._done_events.pop(body["xid"], None)
            if done is not None:
                done.succeed()
        else:  # pragma: no cover - defensive
            raise TransportError(f"unexpected ZSDP frame {kind!r}")


class ZeroCopySdpEndpoint(_SdpEndpointBase):
    """SDP endpoint in synchronous zero-copy mode."""

    WIRE_TAG = "zsdp"
    CONN_CLS = ZeroCopySdpConnection
