"""Request/response helper over any transport endpoint.

Used by the server-based lock manager (SRSL) and the socket-based
resource-monitoring schemes.  The server's handler runs on the node's
shared CPU, so RPC response time degrades with node load — which is the
behaviour those baselines exhibit in the paper.

Example::

    def handler(request):
        # -> (response_payload, response_size, cpu_work_us)
        return {"pong": request["ping"]}, 16, 2.0

    server = RpcServer(TcpEndpoint(server_node), port=99, handler=handler)
    server.start()

    client = RpcClient(TcpEndpoint(client_node))

    def app(env):
        chan = yield client.open(server_node.id, port=99)
        reply = yield chan.call({"ping": 1}, size=16)

Reliability
-----------

``call`` optionally takes a per-call deadline and a retry budget::

    reply = yield chan.call(req, size=16, timeout_us=500.0, retries=3)

Reliable calls wrap the payload in a request-id envelope.  Retries reuse
the id, and the server keeps a bounded cache of recent responses keyed
by it, so a re-sent request whose *reply* was lost is answered from the
cache instead of re-executing the handler (**at-most-once** execution).
When the whole budget is exhausted the call fails with
:class:`repro.errors.TimeoutError`.  Plain calls (no deadline) keep the
original un-enveloped wire format.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.errors import ConfigError, TimeoutError, TransportError
from repro.sim import AnyOf, Event

from repro.transport.base import Connection, Endpoint

__all__ = ["RpcServer", "RpcClient", "RpcChannel"]

Handler = Callable[[Any], Tuple[Any, int, float]]


@dataclass(frozen=True)
class _RpcRequest:
    """Envelope of a reliable call; ``rid`` is unique per Environment."""

    rid: int
    payload: Any


@dataclass(frozen=True)
class _RpcReply:
    rid: int
    payload: Any


class RpcServer:
    """Accept-loop server executing a handler per request.

    ``dedup_window`` bounds the response cache backing at-most-once
    execution of reliable calls; it must comfortably exceed the number
    of in-flight reliable calls against this server.
    """

    def __init__(self, endpoint: Endpoint, port: int, handler: Handler,
                 name: str = "rpc", dedup_window: int = 256):
        if dedup_window < 1:
            raise ConfigError("dedup_window must be positive")
        self.endpoint = endpoint
        self.env = endpoint.env
        self.node = endpoint.node
        self.port = port
        self.handler = handler
        self.name = name
        self.dedup_window = dedup_window
        self.requests_served = 0
        self.dup_requests = 0
        self._seen: "OrderedDict[int, Tuple[Any, int]]" = OrderedDict()
        self._started = False

    def start(self) -> None:
        if self._started:
            raise TransportError(f"server {self.name} already started")
        self._started = True
        listener = self.endpoint.listen(self.port)
        self.env.process(self._accept_loop(listener),
                         name=f"{self.name}-accept@{self.node.name}")

    def _accept_loop(self, listener):
        while True:
            conn = yield listener.accept()
            self.env.process(self._serve(conn),
                             name=f"{self.name}-serve@{self.node.name}")

    def _serve(self, conn: Connection):
        while True:
            datagram = yield conn.recv()
            request = datagram.payload
            if isinstance(request, _RpcRequest):
                cached = self._seen.get(request.rid)
                if cached is not None:
                    # Duplicate (client retry): replay the recorded
                    # response without re-executing the handler.
                    self.dup_requests += 1
                    self._obs_serve("rpc.dup_request", request.rid)
                    response, size = cached
                    yield conn.send(_RpcReply(request.rid, response),
                                    size=size)
                    continue
                self._obs_serve("rpc.execute", request.rid)
                response, size, work_us = self.handler(request.payload)
                if work_us:
                    yield self.node.cpu.run(work_us,
                                            name=f"{self.name}-handler")
                self._remember(request.rid, response, size)
                yield conn.send(_RpcReply(request.rid, response), size=size)
            else:
                self._obs_serve("rpc.execute", None)
                response, size, work_us = self.handler(request)
                if work_us:
                    yield self.node.cpu.run(work_us,
                                            name=f"{self.name}-handler")
                yield conn.send(response, size=size)
            self.requests_served += 1

    def _obs_serve(self, etype: str, rid) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.node.id, rid=rid,
                           server=f"{self.node.id}:{self.port}")
            obs.metrics.counter(f"{etype}s", node=self.node.id).inc()

    def _remember(self, rid: int, response: Any, size: int) -> None:
        self._seen[rid] = (response, size)
        while len(self._seen) > self.dedup_window:
            self._seen.popitem(last=False)


class RpcChannel:
    """Client side of one established RPC connection."""

    def __init__(self, conn: Connection):
        self.conn = conn
        self.env = conn.env
        self.calls = 0
        self.timeouts = 0     # attempts that hit their deadline
        self.dup_replies = 0  # late/duplicate replies discarded
        self._waiting: Dict[int, Event] = {}
        self._pump_on = False

    def call(self, payload: Any, size: int = 0, *,
             timeout_us: float = None, retries: int = 0,
             backoff: float = 2.0, jitter: float = 0.0) -> Event:
        """Issue one request; the event's value is the response payload.

        With ``timeout_us`` set, the attempt is abandoned after that
        many microseconds and re-sent up to ``retries`` more times, each
        attempt's deadline growing by ``backoff``×.  ``jitter`` spreads
        the growth: each retry's deadline is additionally multiplied by
        ``1 + jitter*u`` with ``u`` drawn from the environment's seeded
        ``"rpc-jitter"`` stream, so retry storms decorrelate while
        same-seed replays stay byte-identical.  Exhausting the budget
        fails the event with :class:`repro.errors.TimeoutError`.
        """
        if retries < 0:
            raise ConfigError("retries must be non-negative")
        if retries and timeout_us is None:
            raise ConfigError("retries require a timeout_us deadline")
        if timeout_us is not None and timeout_us <= 0:
            raise ConfigError("timeout_us must be positive")
        if backoff < 1.0:
            raise ConfigError("backoff factor must be >= 1.0")
        if jitter < 0.0:
            raise ConfigError("jitter must be non-negative")
        if jitter and getattr(self.env, "rng", None) is None:
            # a module-global RNG here would silently break replay
            raise ConfigError(
                "backoff jitter needs seeded env.rng streams "
                "(build the cluster via repro.net.Cluster)")
        self.calls += 1
        if timeout_us is None and not self._pump_on:
            ev = self.env.process(self._call_proc(payload, size),
                                  name="rpc-call")
        else:
            # Once the reply pump owns conn.recv(), every call (deadline
            # or not) must go through the enveloped path.
            ev = self.env.process(
                self._reliable_proc(payload, size, timeout_us, retries,
                                    backoff, jitter),
                name="rpc-call")
        obs = self.env.obs
        if obs is not None:
            self._obs_call(obs, ev)
        return ev

    def _obs_call(self, obs, ev) -> None:
        node = self.conn.node.id
        obs.metrics.counter("rpc.calls", node=node).inc()
        t0 = self.env.now

        def done(e):
            if e.ok:
                us = self.env.now - t0
                obs.metrics.histogram("rpc.call_us").observe(us)
                obs.metrics.histogram("rpc.call_us", node=node).observe(us)

        done._obs_passive = True
        ev.add_callback(done)

    def _call_proc(self, payload, size):
        yield self.conn.send(payload, size=size)
        reply = yield self.conn.recv()
        return reply.payload

    # -- reliable path -------------------------------------------------
    def _ensure_pump(self) -> None:
        if not self._pump_on:
            self._pump_on = True
            self.env.process(self._pump_proc(), name="rpc-reply-pump")

    def _pump_proc(self):
        """Sole reader of the connection: route replies by request id."""
        while True:
            datagram = yield self.conn.recv()
            body = datagram.payload
            rid = body.rid if isinstance(body, _RpcReply) else None
            waiter = self._waiting.pop(rid, None)
            if waiter is None:
                # Reply for a call that already timed out, or a
                # duplicate of one we already consumed.
                self.dup_replies += 1
                continue
            waiter.succeed(body.payload)

    def _reliable_proc(self, payload, size, timeout_us, retries, backoff,
                       jitter=0.0):
        self._ensure_pump()
        # drawn lazily: a jitter-free call must consume zero randomness
        jitter_rng = (self.env.rng.get("rpc-jitter") if jitter else None)
        rid = self.env.next_id("rpc")
        request = _RpcRequest(rid, payload)
        # One reply event for all attempts: a late reply to attempt k
        # satisfies attempt k+1 (same rid, same cached response).
        reply = self.env.event()
        self._waiting[rid] = reply
        deadline_us = timeout_us
        node = self.conn.node.id
        for attempt in range(retries + 1):
            obs = self.env.obs
            if obs is not None:
                obs.trace.emit("rpc.retry" if attempt else "rpc.attempt",
                               node=node, rid=rid, attempt=attempt)
            yield self.conn.send(request, size=size)
            if timeout_us is None:
                return (yield reply)
            yield AnyOf(self.env, [reply, self.env.timeout(deadline_us)])
            if reply.triggered:
                return reply._value
            self.timeouts += 1
            deadline_us *= backoff
            if jitter_rng is not None:
                deadline_us *= 1.0 + jitter * float(jitter_rng.random())
        self._waiting.pop(rid, None)
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("rpc.timeout", node=node, rid=rid)
            obs.metrics.counter("rpc.timeouts", node=node).inc()
        raise TimeoutError(
            f"rpc {rid} to node {self.conn.peer_node}: no reply after "
            f"{retries + 1} attempt(s)")


class RpcClient:
    """Factory of RPC channels from one endpoint."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self.env = endpoint.env

    def open(self, server_node: int, port: int) -> Event:
        """Connect; the event's value is an :class:`RpcChannel`."""
        return self.env.process(self._open_proc(server_node, port),
                                name="rpc-open")

    def _open_proc(self, server_node, port):
        conn = yield self.endpoint.connect(server_node, port)
        return RpcChannel(conn)
