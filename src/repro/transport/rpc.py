"""Request/response helper over any transport endpoint.

Used by the server-based lock manager (SRSL) and the socket-based
resource-monitoring schemes.  The server's handler runs on the node's
shared CPU, so RPC response time degrades with node load — which is the
behaviour those baselines exhibit in the paper.

Example::

    def handler(request):
        # -> (response_payload, response_size, cpu_work_us)
        return {"pong": request["ping"]}, 16, 2.0

    server = RpcServer(TcpEndpoint(server_node), port=99, handler=handler)
    server.start()

    client = RpcClient(TcpEndpoint(client_node))

    def app(env):
        chan = yield client.open(server_node.id, port=99)
        reply = yield chan.call({"ping": 1}, size=16)
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.errors import TransportError
from repro.sim import Event

from repro.transport.base import Connection, Endpoint

__all__ = ["RpcServer", "RpcClient", "RpcChannel"]

Handler = Callable[[Any], Tuple[Any, int, float]]


class RpcServer:
    """Accept-loop server executing a handler per request."""

    def __init__(self, endpoint: Endpoint, port: int, handler: Handler,
                 name: str = "rpc"):
        self.endpoint = endpoint
        self.env = endpoint.env
        self.node = endpoint.node
        self.port = port
        self.handler = handler
        self.name = name
        self.requests_served = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise TransportError(f"server {self.name} already started")
        self._started = True
        listener = self.endpoint.listen(self.port)
        self.env.process(self._accept_loop(listener),
                         name=f"{self.name}-accept@{self.node.name}")

    def _accept_loop(self, listener):
        while True:
            conn = yield listener.accept()
            self.env.process(self._serve(conn),
                             name=f"{self.name}-serve@{self.node.name}")

    def _serve(self, conn: Connection):
        while True:
            datagram = yield conn.recv()
            response, size, work_us = self.handler(datagram.payload)
            if work_us:
                yield self.node.cpu.run(work_us, name=f"{self.name}-handler")
            yield conn.send(response, size=size)
            self.requests_served += 1


class RpcChannel:
    """Client side of one established RPC connection."""

    def __init__(self, conn: Connection):
        self.conn = conn
        self.env = conn.env
        self.calls = 0

    def call(self, payload: Any, size: int = 0) -> Event:
        """Issue one request; the event's value is the response payload."""
        self.calls += 1
        return self.env.process(self._call_proc(payload, size),
                                name="rpc-call")

    def _call_proc(self, payload, size):
        yield self.conn.send(payload, size=size)
        reply = yield self.conn.recv()
        return reply.payload


class RpcClient:
    """Factory of RPC channels from one endpoint."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self.env = endpoint.env

    def open(self, server_node: int, port: int) -> Event:
        """Connect; the event's value is an :class:`RpcChannel`."""
        return self.env.process(self._open_proc(server_node, port),
                                name="rpc-open")

    def _open_proc(self, server_node, port):
        conn = yield self.endpoint.connect(server_node, port)
        return RpcChannel(conn)
