"""Common endpoint/connection interface shared by all transports.

A transport binds to a :class:`repro.net.node.Node` and exposes
connection-oriented byte streams with message boundaries (like SDP, and
like how the paper's services actually use sockets)::

    server_ep = TcpEndpoint(server_node)
    listener = server_ep.listen(port=80)

    # server side
    conn = yield listener.accept()
    msg = yield conn.recv()
    yield conn.send(reply, size=128)

    # client side
    conn = yield client_ep.connect(server_node.id, port=80)
    yield conn.send(request, size=64)

``send`` returns an event that fires when the *application's* send call
would return (transport-specific: after the copy for buffered modes,
after remote completion for synchronous zero-copy).  ``recv`` fires when
application data is available after receive-side costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.errors import TransportError
from repro.sim import Event, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

__all__ = ["Endpoint", "Connection", "Listener", "Datagram"]

_conn_ids = itertools.count(1)
_msg_seq = itertools.count(1)


@dataclass
class Datagram:
    """An application-level message moving through a connection."""

    payload: Any
    size: int
    sent_at: float
    delivered_at: float = 0.0
    seq: int = field(default_factory=lambda: next(_msg_seq))


class Listener:
    """Accept queue for one (node, port)."""

    def __init__(self, endpoint: "Endpoint", port: int):
        self.endpoint = endpoint
        self.port = port
        self._accepts: Store = Store(endpoint.node.env)

    def accept(self) -> Event:
        """Wait for the next inbound connection; value is a Connection."""
        return self._accepts.get()

    def _offer(self, conn: "Connection") -> None:
        self._accepts.try_put(conn)


class Connection:
    """One side of an established connection."""

    def __init__(self, endpoint: "Endpoint", peer_node: int,
                 conn_id: Optional[int] = None):
        self.endpoint = endpoint
        self.env = endpoint.node.env
        self.node = endpoint.node
        self.peer_node = peer_node
        self.conn_id = conn_id if conn_id is not None else next(_conn_ids)
        self._inbox: Store = Store(self.env)
        self.closed = False
        self.tx_messages = 0
        self.tx_bytes = 0

    # -- overridable by transports ------------------------------------
    def send(self, payload: Any = None, size: int = 0) -> Event:
        raise NotImplementedError

    def recv(self) -> Event:
        """Default receive: wait for a delivered datagram (no extra cost)."""
        self._check_open()
        return self._inbox.get()

    def close(self) -> None:
        self.closed = True

    # -- shared plumbing ------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise TransportError(f"connection {self.conn_id} is closed")

    def _deliver(self, datagram: Datagram) -> None:
        datagram.delivered_at = self.env.now
        self._inbox.try_put(datagram)

    def _account_tx(self, size: int) -> None:
        self.tx_messages += 1
        self.tx_bytes += size

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} #{self.conn_id} "
                f"{self.node.id}<->{self.peer_node}>")


class Endpoint:
    """Transport instance bound to one node."""

    #: tag namespace on the NIC, distinct per transport class
    WIRE_TAG = "transport"

    def __init__(self, node: "Node"):
        self.node = node
        self.env = node.env
        self._listeners: Dict[int, Listener] = {}
        self._register_with_node()

    def _register_with_node(self) -> None:
        registry = self.node.services.setdefault("endpoints", {})
        key = (type(self).WIRE_TAG,)
        if key in registry:
            raise TransportError(
                f"node {self.node.name} already has a {type(self).__name__}")
        registry[key] = self

    @classmethod
    def of(cls, node: "Node") -> "Endpoint":
        """The endpoint of this class previously created on ``node``."""
        registry = node.services.get("endpoints", {})
        try:
            return registry[(cls.WIRE_TAG,)]
        except KeyError:
            raise TransportError(
                f"node {node.name} has no {cls.__name__}") from None

    def listen(self, port: int) -> Listener:
        if port in self._listeners:
            raise TransportError(f"port {port} already bound")
        listener = Listener(self, port)
        self._listeners[port] = listener
        return listener

    def _listener(self, port: int) -> Listener:
        try:
            return self._listeners[port]
        except KeyError:
            raise TransportError(
                f"connection refused: no listener on port {port} of "
                f"node {self.node.name}") from None

    def connect(self, peer_node: int, port: int) -> Event:
        raise NotImplementedError
