"""Communication protocol layer (the framework's bottom layer).

Implements the paper's "advanced communication protocols and subsystems":

* :mod:`repro.transport.tcpsock` — host-based TCP/IP socket emulation,
  the baseline the paper criticises: kernel copies and per-message/byte
  CPU work on both ends, so latency inflates with node load.
* :mod:`repro.transport.sdp` — Sockets Direct Protocol over RDMA:
  buffered-copy mode (BSDP) with credit-based flow control and zero-copy
  mode (ZSDP) with a SrcAvail/RDMA-read handshake.
* :mod:`repro.transport.azsdp` — Asynchronous Zero-copy SDP: the sender
  memory-protects the user buffer and returns immediately, overlapping
  transfers while preserving synchronous-socket semantics.
* :mod:`repro.transport.flowcontrol` — credit-based vs packetized
  (sender-managed RDMA ring) flow control for small messages.
* :mod:`repro.transport.rpc` — a request/response helper built on any of
  the above endpoints (used by the SRSL lock server and the socket-based
  monitoring schemes).

All endpoints share one interface: ``listen(port)`` / ``connect(node,
port)`` yielding a connection with ``send(payload, size)`` and ``recv()``.
"""

from repro.transport.azsdp import AzSdpEndpoint
from repro.transport.base import Connection, Endpoint
from repro.transport.flowcontrol import (
    CreditFlowSender,
    PacketizedFlowSender,
    FlowReceiver,
)
from repro.transport.rpc import RpcClient, RpcServer
from repro.transport.sdp import BufferedSdpEndpoint, ZeroCopySdpEndpoint
from repro.transport.tcpsock import TcpEndpoint

__all__ = [
    "AzSdpEndpoint",
    "BufferedSdpEndpoint",
    "Connection",
    "CreditFlowSender",
    "Endpoint",
    "FlowReceiver",
    "PacketizedFlowSender",
    "RpcClient",
    "RpcServer",
    "TcpEndpoint",
    "ZeroCopySdpEndpoint",
]
