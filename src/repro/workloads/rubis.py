"""RUBiS-like auction-site workload (paper Fig. 8b, ref [1]).

The Rice University Bidding System models an eBay-style site.  We keep
its defining property for the monitoring experiments: *divergent*
per-request resource usage — browse requests are cheap, searches and
bids are CPU-heavy — so node load swings quickly and coarse-grained
monitoring misjudges it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError

__all__ = ["RubisTxn", "RubisMix"]


@dataclass(frozen=True)
class RubisTxn:
    """One transaction type of the auction site."""

    name: str
    weight: float      # share of the mix
    cpu_us: float      # server CPU demand
    resp_bytes: int    # response size
    db_round_trips: int  # backend interactions


#: the default transaction mix (browsing-heavy, like RUBiS' default)
DEFAULT_MIX: List[RubisTxn] = [
    RubisTxn("home", 0.16, 30.0, 4_096, 0),
    RubisTxn("browse-categories", 0.22, 60.0, 12_288, 1),
    RubisTxn("view-item", 0.28, 90.0, 8_192, 1),
    RubisTxn("search-items", 0.12, 700.0, 16_384, 2),
    RubisTxn("put-bid", 0.10, 260.0, 2_048, 2),
    RubisTxn("buy-now", 0.05, 220.0, 2_048, 2),
    RubisTxn("sell-item", 0.04, 450.0, 4_096, 3),
    RubisTxn("about-me", 0.03, 350.0, 10_240, 2),
]


class RubisMix:
    """Seeded sampler over the transaction mix."""

    def __init__(self, rng: np.random.Generator,
                 mix: List[RubisTxn] = None):
        self.mix = list(DEFAULT_MIX if mix is None else mix)
        if not self.mix:
            raise ConfigError("empty transaction mix")
        weights = np.array([t.weight for t in self.mix], dtype=np.float64)
        if (weights <= 0).any():
            raise ConfigError("transaction weights must be positive")
        self._p = weights / weights.sum()
        self._rng = rng

    def next(self) -> RubisTxn:
        idx = int(self._rng.choice(len(self.mix), p=self._p))
        return self.mix[idx]

    def mean_cpu_us(self) -> float:
        return float(sum(t.cpu_us * p for t, p in zip(self.mix, self._p)))

    def cpu_variance(self) -> float:
        mean = self.mean_cpu_us()
        return float(sum(p * (t.cpu_us - mean) ** 2
                         for t, p in zip(self.mix, self._p)))
