"""TPC-C-flavored multi-key transaction mix for ``repro.txn``.

Two transaction shapes over fixed-size DDSS units whose first 8 bytes
hold a big-endian unsigned counter (``balance``):

* **transfer** — move an amount between two account units (the classic
  conservation workload: the sum of all balances is invariant, so any
  lost update is arithmetically visible).
* **new-order** — TPC-C's backbone shrunk to units: read a district
  counter, assign the next order id, and decrement the stock of a few
  items; one multi-key read-modify-write spanning 1 + n_items keys.

:class:`TpccMix` draws transactions deterministically from a seeded rng
stream; contention is controlled by the size of the account/stock key
pools (fewer keys = hotter keys).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.txn.base import Txn

__all__ = ["TpccMix", "balance", "pack_balance",
           "transfer_txn", "new_order_txn"]

_COUNTER_BYTES = 8


def balance(data: bytes) -> int:
    """The unit's counter: first 8 bytes, big-endian."""
    return int.from_bytes(bytes(data[:_COUNTER_BYTES]), "big")


def pack_balance(value: int, data: bytes) -> bytes:
    """``data`` with its counter replaced by ``value``."""
    if value < 0:
        value = 0  # balances saturate at zero (no negative stock)
    return value.to_bytes(_COUNTER_BYTES, "big") + bytes(
        data[_COUNTER_BYTES:])


def transfer_txn(src: int, dst: int, amount: int,
                 label: str = "transfer") -> Txn:
    """Move ``amount`` (capped at the source balance) from src to dst."""
    if src == dst:
        raise ValueError("transfer needs two distinct accounts")

    def compute(vals: Dict[int, bytes]) -> Dict[int, bytes]:
        take = min(amount, balance(vals[src]))
        return {
            src: pack_balance(balance(vals[src]) - take, vals[src]),
            dst: pack_balance(balance(vals[dst]) + take, vals[dst]),
        }

    return Txn(reads=(src, dst), compute=compute, label=label)


def new_order_txn(district: int, items: Sequence[int],
                  label: str = "new-order") -> Txn:
    """Bump the district's order counter; decrement each item's stock."""
    items = tuple(items)
    if district in items:
        raise ValueError("district key cannot also be an item")

    def compute(vals: Dict[int, bytes]) -> Dict[int, bytes]:
        writes = {district: pack_balance(
            balance(vals[district]) + 1, vals[district])}
        for it in items:
            writes[it] = pack_balance(balance(vals[it]) - 1, vals[it])
        return writes

    return Txn(reads=(district,) + items, compute=compute, label=label)


class TpccMix:
    """Deterministic transaction generator.

    ``accounts`` and ``stock`` are unit-key pools; ``districts`` the
    (small) district pool.  ``p_transfer`` sets the transfer/new-order
    split.  Smaller pools raise contention.
    """

    def __init__(self, rng, accounts: Sequence[int],
                 districts: Sequence[int], stock: Sequence[int],
                 p_transfer: float = 0.5, max_items: int = 3,
                 max_amount: int = 20):
        if len(accounts) < 2:
            raise ValueError("need at least two accounts")
        if not districts or not stock:
            raise ValueError("need districts and stock keys")
        self.rng = rng
        self.accounts = list(accounts)
        self.districts = list(districts)
        self.stock = list(stock)
        self.p_transfer = p_transfer
        self.max_items = max(1, min(max_items, len(self.stock)))
        self.max_amount = max_amount

    def next_txn(self) -> Txn:
        if self.rng.random() < self.p_transfer:
            i, j = self.rng.choice(len(self.accounts), size=2,
                                   replace=False)
            amount = int(self.rng.integers(1, self.max_amount + 1))
            return transfer_txn(self.accounts[int(i)],
                                self.accounts[int(j)], amount)
        district = self.districts[
            int(self.rng.integers(0, len(self.districts)))]
        n_items = int(self.rng.integers(1, self.max_items + 1))
        picks = self.rng.choice(len(self.stock), size=n_items,
                                replace=False)
        return new_order_txn(district,
                             [self.stock[int(p)] for p in picks])

    def batch(self, n: int) -> List[Txn]:
        return [self.next_txn() for _ in range(n)]
