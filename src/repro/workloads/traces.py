"""Trace-driven request workloads (open-loop arrivals).

The closed-loop clients in :mod:`repro.datacenter.loadgen` model a
fixed session population; real web traces instead impose an *arrival
process* independent of system speed, which is what exposes overload
(the admission-control scenario).  :class:`RequestTrace` generates a
reproducible trace with:

* Poisson arrivals at a controllable base rate,
* optional diurnal-style rate modulation (sinusoid) and flash crowds,
* Zipf document popularity.

:class:`OpenLoopClients` replays a trace against the proxy tier,
dropping nothing: if the system is slower than the trace, queues grow —
as they would in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.net.node import Node

from repro.workloads.zipf import ZipfGenerator

__all__ = ["RequestTrace", "TracedRequest", "OpenLoopClients"]


@dataclass(frozen=True)
class TracedRequest:
    at_us: float
    doc: int


class RequestTrace:
    """Reproducible open-loop arrival trace."""

    def __init__(self, rng: np.random.Generator, n_docs: int,
                 alpha: float, rate_per_ms: float,
                 duration_us: float,
                 diurnal_amplitude: float = 0.0,
                 diurnal_period_us: float = 1_000_000.0,
                 flash_at_us: Optional[float] = None,
                 flash_factor: float = 4.0,
                 flash_duration_us: float = 50_000.0):
        if rate_per_ms <= 0 or duration_us <= 0:
            raise ConfigError("rate and duration must be positive")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ConfigError("diurnal amplitude must be in [0, 1)")
        if flash_factor < 1.0:
            raise ConfigError("flash factor must be >= 1")
        self.rng = rng
        self.zipf = ZipfGenerator(n_docs, alpha, rng)
        self.rate_per_us = rate_per_ms / 1_000.0
        self.duration_us = duration_us
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period_us = diurnal_period_us
        self.flash_at_us = flash_at_us
        self.flash_factor = flash_factor
        self.flash_duration_us = flash_duration_us

    def _rate_at(self, t: float) -> float:
        rate = self.rate_per_us
        if self.diurnal_amplitude:
            phase = 2.0 * np.pi * t / self.diurnal_period_us
            rate *= 1.0 + self.diurnal_amplitude * np.sin(phase)
        if (self.flash_at_us is not None
                and self.flash_at_us <= t
                < self.flash_at_us + self.flash_duration_us):
            rate *= self.flash_factor
        return rate

    def generate(self) -> List[TracedRequest]:
        """Materialize the whole trace (thinning for varying rate)."""
        peak = self.rate_per_us * (1.0 + self.diurnal_amplitude)
        peak *= self.flash_factor if self.flash_at_us is not None else 1.0
        out: List[TracedRequest] = []
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / peak))
            if t >= self.duration_us:
                break
            # thinning: accept proportionally to the instantaneous rate
            if self.rng.random() <= self._rate_at(t) / peak:
                out.append(TracedRequest(at_us=t, doc=self.zipf.next()))
        return out


class OpenLoopClients:
    """Replay a trace against the proxy tier without back-pressure."""

    def __init__(self, client_node: Node, proxies: Sequence,
                 trace: List[TracedRequest],
                 admission=None):
        if not proxies:
            raise ConfigError("need at least one proxy server")
        self.node = client_node
        self.env = client_node.env
        self.proxies = list(proxies)
        self.trace = list(trace)
        self.admission = admission
        self.issued = 0
        self.shed = 0
        self._rr = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise ConfigError("trace replay already started")
        self._started = True
        self.env.process(self._replay(), name="trace-replay")

    def _replay(self):
        for req in self.trace:
            delay = req.at_us - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if self.admission is not None and not self.admission.admit():
                self.shed += 1
                continue
            proxy = self.proxies[self._rr % len(self.proxies)]
            self._rr += 1
            self.issued += 1
            # fire-and-forget: open loop imposes arrivals regardless of
            # how the system is coping
            self.env.process(self._one(proxy, req.doc),
                             name="trace-request")

    def _one(self, proxy, doc):
        yield self.node.fabric.transfer(self.node.id, proxy.node.id, 200)
        yield proxy.handle(doc, self.node.id)
