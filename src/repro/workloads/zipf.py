"""Zipf document popularity (the paper's web-trace model).

Document ``i`` (1-based rank) is requested with probability proportional
to ``1 / i**alpha``.  Higher ``alpha`` = more temporal locality (the
paper sweeps alpha over {0.9, 0.75, 0.5, 0.25} in Fig. 8b).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["zipf_pmf", "ZipfGenerator"]


def zipf_pmf(n_docs: int, alpha: float) -> np.ndarray:
    """Probability mass over ranks 1..n (returned as array index 0..n-1)."""
    if n_docs <= 0:
        raise ConfigError("need at least one document")
    if alpha < 0:
        raise ConfigError("alpha must be non-negative")
    weights = 1.0 / np.arange(1, n_docs + 1, dtype=np.float64) ** alpha
    return weights / weights.sum()


class ZipfGenerator:
    """Seeded stream of document ids in ``[0, n_docs)`` (0 = hottest)."""

    def __init__(self, n_docs: int, alpha: float,
                 rng: np.random.Generator):
        self.n_docs = n_docs
        self.alpha = alpha
        self._rng = rng
        self._pmf = zipf_pmf(n_docs, alpha)
        self._cdf = np.cumsum(self._pmf)
        self._cdf[-1] = 1.0  # guard against fp round-off

    def next(self) -> int:
        """One document id."""
        return int(np.searchsorted(self._cdf, self._rng.random(),
                                   side="right"))

    def batch(self, n: int) -> np.ndarray:
        """``n`` document ids at once (vectorized)."""
        return np.searchsorted(self._cdf, self._rng.random(n),
                               side="right").astype(np.int64)

    def hot_set_coverage(self, k: int) -> float:
        """Fraction of requests hitting the ``k`` hottest documents."""
        if not 0 <= k <= self.n_docs:
            raise ConfigError("k out of range")
        return float(self._pmf[:k].sum())
