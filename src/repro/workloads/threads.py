"""Thread-churn traces for the monitoring-accuracy experiment (Fig. 8a).

The experiment needs a back-end node whose *actual* number of running
application threads fluctuates over time; each monitoring scheme then
reports its view of that number and the figure plots the deviation.
:class:`ThreadChurn` drives a node's processor-sharing CPU background
load through a seeded random walk and records the ground truth.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.net.node import Node

__all__ = ["ThreadChurn"]


class ThreadChurn:
    """Random-walk thread count applied to a node's CPU as load."""

    def __init__(self, node: Node, rng: np.random.Generator,
                 base: int = 12, swing: int = 10,
                 step_every_us: float = 2_000.0, max_step: int = 3):
        if base < 0 or swing < 0 or base - swing < 0:
            raise ConfigError("thread count walk would go negative")
        if max_step <= 0:
            raise ConfigError("max_step must be positive")
        self.node = node
        self.env = node.env
        self.rng = rng
        self.base = base
        self.swing = swing
        self.step_every_us = step_every_us
        self.max_step = max_step
        self.current = base
        #: ground-truth samples (time, n_threads)
        self.history: List[Tuple[float, int]] = []
        self._apply(base)
        self.env.process(self._walk(), name=f"churn@{node.name}")

    def _apply(self, n: int) -> None:
        self.current = n
        self.node.cpu.set_background(n)
        self.history.append((self.env.now, n))

    def _walk(self):
        while True:
            yield self.env.timeout(self.step_every_us)
            lo = max(0, self.base - self.swing)
            hi = self.base + self.swing
            step = int(self.rng.integers(-self.max_step, self.max_step + 1))
            self._apply(int(np.clip(self.current + step, lo, hi)))

    def at(self, t: float) -> int:
        """Ground-truth thread count at simulation time ``t``."""
        value = self.history[0][1]
        for when, n in self.history:
            if when > t:
                break
            value = n
        return value
