"""Workload generators used by the evaluation (Zipf traces, file sets,
a RUBiS-like auction mix, and thread-churn traces for the monitoring
experiments)."""

from repro.workloads.filesets import FileSet
from repro.workloads.rubis import RubisMix, RubisTxn
from repro.workloads.threads import ThreadChurn
from repro.workloads.tpcc import (TpccMix, balance, new_order_txn,
                                  pack_balance, transfer_txn)
from repro.workloads.traces import OpenLoopClients, RequestTrace, TracedRequest
from repro.workloads.zipf import ZipfGenerator, zipf_pmf

__all__ = [
    "FileSet",
    "RubisMix",
    "RubisTxn",
    "OpenLoopClients",
    "RequestTrace",
    "ThreadChurn",
    "TpccMix",
    "TracedRequest",
    "ZipfGenerator",
    "balance",
    "new_order_txn",
    "pack_balance",
    "transfer_txn",
    "zipf_pmf",
]
