"""Document corpora served by the data-center.

A :class:`FileSet` maps document ids to sizes and contents.  Content is
synthetic but *verifiable*: each document has a deterministic 8-byte
token derived from (seed, doc id) that travels with cached copies, so
tests can assert a cache served the right bytes without storing
multi-megabyte corpora.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigError

__all__ = ["FileSet"]


class FileSet:
    """``n_docs`` documents of fixed or per-document sizes."""

    def __init__(self, n_docs: int, sizes: Union[int, Sequence[int]],
                 seed: int = 0):
        if n_docs <= 0:
            raise ConfigError("need at least one document")
        self.n_docs = n_docs
        self.seed = seed
        if isinstance(sizes, int):
            if sizes <= 0:
                raise ConfigError("document size must be positive")
            self._sizes = np.full(n_docs, sizes, dtype=np.int64)
        else:
            self._sizes = np.asarray(sizes, dtype=np.int64)
            if len(self._sizes) != n_docs:
                raise ConfigError("sizes length != n_docs")
            if (self._sizes <= 0).any():
                raise ConfigError("document sizes must be positive")

    def size(self, doc: int) -> int:
        return int(self._sizes[doc])

    @property
    def total_bytes(self) -> int:
        return int(self._sizes.sum())

    def token(self, doc: int) -> bytes:
        """Deterministic 8-byte content fingerprint of the document."""
        if not 0 <= doc < self.n_docs:
            raise ConfigError(f"doc {doc} out of range")
        h = hashlib.blake2b(f"{self.seed}:{doc}".encode(), digest_size=8)
        return h.digest()

    def verify(self, doc: int, token: bytes) -> bool:
        return token == self.token(doc)

    @classmethod
    def mixed(cls, n_docs: int, small: int, large: int,
              large_fraction: float, seed: int = 0) -> "FileSet":
        """Two-point size distribution (for HYBCC-style experiments)."""
        if not 0.0 <= large_fraction <= 1.0:
            raise ConfigError("large_fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        sizes = np.where(rng.random(n_docs) < large_fraction, large, small)
        return cls(n_docs, sizes.tolist(), seed=seed)
