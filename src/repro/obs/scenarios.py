"""Named demo workloads for the ``repro obs`` CLI subcommand.

Each scenario builds a small cluster, installs :class:`Observability`
*before* the workload starts (sanitizers shadow protocol state from the
first event, so mid-run attachment would false-positive), drives a
representative workload, and returns the populated
:class:`~repro.obs.Observability` for inspection or JSON export.

All randomness comes from the cluster's seeded streams, so a scenario
run twice with the same seed produces byte-identical exports — the
``repro obs`` determinism guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ConfigError

__all__ = ["SCENARIOS", "run_scenario"]


def _locks(seed: int, sanitize: bool, strict: bool):
    """N-CoSED lock traffic: shared/exclusive mix over a few locks."""
    from ..net import Cluster
    from ..dlm import LockMode, NCoSEDManager

    cluster = Cluster(n_nodes=6, seed=seed)
    obs = cluster.observe(sanitize=sanitize, strict=strict)
    manager = NCoSEDManager(cluster, n_locks=4)
    env = cluster.env
    rng = cluster.rng.get("obs-locks")

    def actor(env, client, lock_i, shared, delay, hold):
        mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
        yield env.timeout(delay)
        yield client.acquire(lock_i, mode)
        yield env.timeout(hold)
        yield client.release(lock_i)

    for i in range(18):
        client = manager.client(cluster.nodes[i % len(cluster.nodes)])
        env.process(actor(env, client, i % 4, rng.random() < 0.5,
                          rng.uniform(0.0, 200.0),
                          rng.uniform(5.0, 50.0)),
                    name=f"obs-locks-{i}")
    env.run(until=50_000.0)
    return obs


def _ddss(seed: int, sanitize: bool, strict: bool):
    """DDSS put/get across all coherence models, plus explicit locks."""
    from ..net import Cluster
    from ..ddss import DDSS, Coherence

    cluster = Cluster(n_nodes=4, seed=seed)
    obs = cluster.observe(sanitize=sanitize, strict=strict)
    ddss = DDSS(cluster, segment_bytes=64 * 1024)
    env = cluster.env

    def worker(env, client, model):
        key = yield client.allocate(256, coherence=model, placement=3)
        for i in range(4):
            yield client.put(key, bytes([i]) * 64)
            yield client.get(key)
            yield client.get(key)  # second read may hit a client cache
        yield client.acquire(key)
        yield env.timeout(5.0)
        yield client.release(key)

    for i, model in enumerate(Coherence):
        client = ddss.client(cluster.nodes[1 + i % 3])
        env.process(worker(env, client, model), name=f"obs-ddss-{i}")
    env.run(until=100_000.0)
    return obs


def _flow(seed: int, sanitize: bool, strict: bool):
    """Credit-based vs packetized flow control streams, side by side."""
    from ..net import Cluster
    from ..transport import (CreditFlowSender, FlowReceiver,
                             PacketizedFlowSender)

    cluster = Cluster(n_nodes=3, seed=seed)
    obs = cluster.observe(sanitize=sanitize, strict=strict)
    env = cluster.env
    rx_credit = FlowReceiver(cluster.nodes[1], nbufs=8, buf_bytes=8192)
    rx_packed = FlowReceiver(cluster.nodes[2], nbufs=8, buf_bytes=8192)
    env.process(CreditFlowSender(cluster.nodes[0], rx_credit)
                .stream(60, 512), name="obs-flow-credit")
    env.process(PacketizedFlowSender(cluster.nodes[0], rx_packed)
                .stream(60, 512), name="obs-flow-packed")
    env.run(until=200_000.0)
    return obs


def _chaos(seed: int, sanitize: bool, strict: bool):
    """Fault-tolerant N-CoSED under crashes + message drop."""
    from ..net import Cluster
    from ..faults import FaultPlan
    from ..dlm import LockMode, NCoSEDManager
    from ..errors import LockError

    plan = (FaultPlan()
            .crash(2, at=3_000.0, restart_at=9_000.0)
            .crash(5, at=5_000.0)
            .drop_messages(0.01))
    cluster = Cluster(n_nodes=8, seed=seed)
    obs = cluster.observe(sanitize=sanitize, strict=strict)
    cluster.install_faults(plan)
    manager = NCoSEDManager(cluster, n_locks=4, lease_us=400.0)
    env = cluster.env
    rng = cluster.rng.get("obs-chaos")

    def actor(env, client, lock_i, shared, delay, hold):
        mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
        yield env.timeout(delay)
        try:
            yield client.acquire(lock_i, mode)
        except LockError:
            return
        yield env.timeout(hold)
        try:
            yield client.release(lock_i)
        except LockError:
            pass

    for i in range(16):
        client = manager.client(cluster.nodes[i % len(cluster.nodes)])
        # long holds so some tenures straddle the crash times and the
        # reaper's lease reclaim shows up in the trace
        env.process(actor(env, client, i % 4, rng.random() < 0.4,
                          rng.uniform(0.0, 8_000.0),
                          rng.uniform(500.0, 4_000.0)),
                    name=f"obs-chaos-{i}")
    env.run(until=30_000.0)
    return obs


SCENARIOS: Dict[str, Callable] = {
    "locks": _locks,
    "ddss": _ddss,
    "flow": _flow,
    "chaos": _chaos,
}


def run_scenario(name: str, seed: int = 0, sanitize: bool = True,
                 strict: bool = True):
    """Run a named scenario; returns its :class:`Observability`."""
    fn = SCENARIOS.get(name)
    if fn is None:
        raise ConfigError(
            f"unknown obs scenario {name!r}; "
            f"available: {', '.join(sorted(SCENARIOS))}")
    return fn(seed, sanitize, strict)
