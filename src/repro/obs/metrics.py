"""Counters, gauges and log-bucketed latency histograms.

One :class:`MetricsRegistry` lives per :class:`~repro.sim.core.Environment`
(installed as part of ``env.obs``).  Metrics are named with dotted paths
(``nic.rdma_read_us``) and optionally scoped to a node — the registry
key is ``name`` or ``name@n<node>`` — so per-node and cluster-wide views
coexist without double counting: callers pick the scope at the call
site.

:class:`LatencyHistogram` buckets observations by power of two (the
exponent from :func:`math.frexp`), which keeps memory constant while
giving quantiles with at-most-2x relative error.  Its ``percentile``
uses the same nearest-rank rule (:func:`repro.sim.trace.rank_of`) as
the exact :func:`repro.sim.trace.percentile`, so benches sorting raw
samples and obs walking buckets report the *same rank* — they differ
only in bucket rounding, never in which observation is chosen.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..sim.trace import Tally, rank_of

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def to_dict(self) -> int:
        return self.value


class Gauge:
    """Last-set value plus the extremes it visited."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf

    def set(self, v: float) -> None:
        if math.isnan(v):
            raise ValueError(f"NaN gauge value for {self.name!r}")
        self.value = v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def add(self, dv: float) -> None:
        self.set(self.value + dv)

    def to_dict(self) -> Dict[str, float]:
        if self.min is math.inf:  # never set
            return {"value": self.value, "min": None, "max": None}
        return {"value": self.value, "min": self.min, "max": self.max}


class LatencyHistogram:
    """Log2-bucketed distribution of simulated-µs latencies.

    Buckets are keyed by the binary exponent ``e`` such that the bucket
    covers ``(2**(e-1), 2**e]``; an observation ``x`` lands in
    ``math.frexp(x)[1]`` (zero gets its own bucket).  Reported
    percentiles are bucket *upper bounds* — a conservative estimate
    within 2x of the true value, which is plenty for the order-of-
    magnitude comparisons the paper's figures make.
    """

    __slots__ = ("name", "tally", "buckets", "zeros")

    def __init__(self, name: str = ""):
        self.name = name
        self.tally = Tally(name)
        self.buckets: Dict[int, int] = {}
        self.zeros = 0

    # -- recording ------------------------------------------------------
    def observe(self, us: float) -> None:
        if us < 0 or math.isnan(us):
            raise ValueError(
                f"invalid latency for histogram {self.name!r}: {us}")
        self.tally.add(us)
        if us == 0.0:
            self.zeros += 1
            return
        _m, e = math.frexp(us)
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def count(self) -> int:
        return self.tally.count

    # -- quantiles ------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, reported as the bucket upper bound."""
        n = self.count
        rank = rank_of(q, n)  # raises on empty / out-of-range q
        if rank < self.zeros:
            return 0.0
        seen = self.zeros
        for e in sorted(self.buckets):
            seen += self.buckets[e]
            if rank < seen:
                return float(2.0 ** e)
        raise AssertionError("histogram bucket counts disagree with tally")

    # -- combination ----------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram in (same semantics as Tally.merge)."""
        self.tally.merge(other.tally)
        self.zeros += other.zeros
        for e, c in other.buckets.items():
            self.buckets[e] = self.buckets.get(e, 0) + c
        return self

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Optional[float]]:
        if self.count == 0:
            return {"count": 0, "mean_us": None, "min_us": None,
                    "max_us": None, "p50_us": None, "p95_us": None,
                    "p99_us": None}
        return {
            "count": self.count,
            "mean_us": self.tally.mean,
            "min_us": self.tally.min,
            "max_us": self.tally.max,
            "p50_us": self.percentile(50),
            "p95_us": self.percentile(95),
            "p99_us": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyHistogram {self.name} n={self.count}>"


def _key(name: str, node: Optional[int]) -> str:
    return name if node is None else f"{name}@n{node}"


class MetricsRegistry:
    """All metrics of one Environment, keyed ``name`` / ``name@n<node>``."""

    def __init__(self, env):
        self.env = env
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    # -- accessors (create on first use) --------------------------------
    def counter(self, name: str, node: Optional[int] = None) -> Counter:
        k = _key(name, node)
        c = self.counters.get(k)
        if c is None:
            c = self.counters[k] = Counter(k)
        return c

    def gauge(self, name: str, node: Optional[int] = None) -> Gauge:
        k = _key(name, node)
        g = self.gauges.get(k)
        if g is None:
            g = self.gauges[k] = Gauge(k)
        return g

    def histogram(self, name: str,
                  node: Optional[int] = None) -> LatencyHistogram:
        k = _key(name, node)
        h = self.histograms.get(k)
        if h is None:
            h = self.histograms[k] = LatencyHistogram(k)
        return h

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict]:
        """Deterministic snapshot: sorted keys, plain JSON types only."""
        return {
            "counters": {k: c.to_dict()
                         for k, c in sorted(self.counters.items())},
            "gauges": {k: g.to_dict()
                       for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self.histograms.items())},
        }
