"""Observability: structured tracing, metrics, and protocol sanitizers.

:class:`Observability` bundles the three pieces — a ring-buffered
:class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and the protocol
sanitizers — and installs them on an
:class:`~repro.sim.core.Environment` as ``env.obs``.

Zero cost when off: ``Environment.obs`` defaults to ``None`` and every
emission site in the library guards with ``if env.obs is not None`` (or
reads it once into a local).  A run without ``install()`` executes the
identical event sequence it always did — verified by the byte-identical
export test in ``tests/obs/test_zero_overhead.py``.

Typical use::

    cluster = Cluster(n_nodes=4, seed=7)
    obs = cluster.observe()              # install tracing + sanitizers
    ... run workload ...
    obs.check()                          # raise if any invariant broke
    obs.export_json("obs.json")          # deterministic snapshot
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..errors import ConfigError, SanitizerError
from .events import TAXONOMY, TraceEvent
from .fairness import FairnessTracker, jain_index
from .metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from .sanitizers import (
    ALL_SANITIZERS,
    CacheAccountingSanitizer,
    FlowControlSanitizer,
    LockWordSanitizer,
    RpcAtMostOnceSanitizer,
    Sanitizer,
    SingleOwnerSanitizer,
)
from .tracer import Tracer

__all__ = [
    "Observability",
    "TraceEvent",
    "TAXONOMY",
    "Tracer",
    "Counter",
    "FairnessTracker",
    "Gauge",
    "jain_index",
    "LatencyHistogram",
    "MetricsRegistry",
    "Sanitizer",
    "FlowControlSanitizer",
    "LockWordSanitizer",
    "RpcAtMostOnceSanitizer",
    "SingleOwnerSanitizer",
    "CacheAccountingSanitizer",
    "ALL_SANITIZERS",
]


class Observability:
    """Tracer + metrics + sanitizers for one Environment.

    Parameters
    ----------
    ring:
        Trace ring capacity (old events fall off; totals are kept).
    sanitize:
        Attach all protocol sanitizers to the trace stream.
    strict:
        Sanitizer mode: ``True`` raises :class:`SanitizerError` at the
        violating event; ``False`` collects violations for
        :meth:`check` / the JSON export.
    """

    def __init__(self, env, ring: int = 65536,
                 sanitize: bool = True, strict: bool = True):
        self.env = env
        self.trace = Tracer(env, capacity=ring)
        self.metrics = MetricsRegistry(env)
        #: (op, node) -> (cluster histogram, per-node histogram); avoids
        #: two string-keyed registry lookups per verb completion.
        self._verb_hists: Dict[tuple, tuple] = {}
        self.sanitizers: Dict[str, Sanitizer] = {}
        if sanitize:
            for cls in ALL_SANITIZERS:
                san = cls(strict=strict)
                san.attach(self.trace)
                self.sanitizers[san.NAME] = san

    # -- lifecycle ------------------------------------------------------
    def install(self) -> "Observability":
        """Become ``env.obs``; emission sites start firing."""
        if self.env.obs is not None and self.env.obs is not self:
            raise ConfigError("another Observability is already installed")
        self.env.obs = self
        return self

    def uninstall(self) -> None:
        if self.env.obs is self:
            self.env.obs = None

    # -- sanitizer verdicts ---------------------------------------------
    def violations(self) -> List[dict]:
        """All violations across sanitizers, in (time, name) order."""
        out = []
        for name in sorted(self.sanitizers):
            for v in self.sanitizers[name].violations:
                out.append(dict(v, sanitizer=name))
        out.sort(key=lambda v: (v["t"], v["sanitizer"]))
        return out

    @property
    def clean(self) -> bool:
        return all(s.clean for s in self.sanitizers.values())

    def check(self) -> None:
        """Raise if any sanitizer collected a violation (collect mode)."""
        bad = self.violations()
        if bad:
            head = bad[0]
            raise SanitizerError(
                f"{len(bad)} sanitizer violation(s); first: "
                f"[{head['sanitizer']}] t={head['t']:.3f} {head['msg']}")

    # -- verb instrumentation (called from repro.net.nic) ---------------
    def verb(self, nic, op: str, dst: int, nbytes: int, ev) -> None:
        """Trace a one-sided verb and record its completion latency.

        The completion probe is marked ``_obs_passive`` so it does not
        count as a watcher of the verb process — an unobserved verb
        failure still surfaces exactly as it does without obs installed.
        """
        node = nic.node.id
        t0 = self.env.now
        self.trace.emit("verb.issue", node=node,
                        op=op, dst=dst, nbytes=nbytes)

        def done(e):
            if e.ok:
                us = self.env.now - t0
                self.trace.emit("verb.complete", node=node,
                                op=op, dst=dst, us=us)
                hists = self._verb_hists.get((op, node))
                if hists is None:
                    hists = self._verb_hists[(op, node)] = (
                        self.metrics.histogram(f"nic.{op}_us"),
                        self.metrics.histogram(f"nic.{op}_us", node=node))
                hists[0].observe(us)
                hists[1].observe(us)
            else:
                self.trace.emit("verb.fail", node=node, op=op, dst=dst)
                self.metrics.counter("nic.verb_fails", node=node).inc()

        done._obs_passive = True
        ev.add_callback(done)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic snapshot: JSON types only, stable ordering."""
        return {
            "sim_now_us": self.env.now,
            "events": {
                "emitted": self.trace.emitted,
                "buffered": len(self.trace),
                "by_type": self.trace.counts(),
            },
            "metrics": self.metrics.to_dict(),
            "sanitizers": {name: self.sanitizers[name].to_dict()
                           for name in sorted(self.sanitizers)},
        }

    def trace_dict(self) -> dict:
        """Full-event trace snapshot for offline replay (``repro.verify``).

        Unlike :meth:`to_dict` (counts only, bounded size) this carries
        every buffered event verbatim, so it is opt-in.  ``emitted`` >
        ``len(events)`` means the ring overflowed and the trace is not
        replayable end to end — the verify layer refuses such traces.
        """
        return {
            "format": "repro-trace-v1",
            "sim_now_us": self.env.now,
            "emitted": self.trace.emitted,
            "events": [[ev.t, ev.node, ev.etype, ev.fields]
                       for ev in self.trace],
        }

    def export_trace_json(self, path: Optional[str] = None) -> str:
        """Serialize :meth:`trace_dict` (deterministic, sorted keys)."""
        text = json.dumps(self.trace_dict(), sort_keys=True,
                          separators=(",", ":"))
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        return text

    def export_json(self, path: Optional[str] = None) -> str:
        """Serialize :meth:`to_dict`; optionally write it to ``path``.

        Same seed, same workload => byte-identical output (guarded by
        ``tests/obs/test_determinism.py``): keys are sorted, no wall
        clock, no object ids.
        """
        text = json.dumps(self.to_dict(), sort_keys=True, indent=2)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "clean" if self.clean else "VIOLATIONS"
        return (f"<Observability events={self.trace.emitted} "
                f"sanitizers={len(self.sanitizers)} {state}>")
