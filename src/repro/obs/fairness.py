"""Starvation/fairness instrumentation for the lock arena.

:class:`FairnessTracker` subscribes to the ``lock.`` taxonomy prefix
and derives, per manager:

* per-client grant counts (who actually got the lock, how often);
* wait-time distribution (request → grant) with a max-wait gauge —
  the starvation signal;
* Jain's fairness index over the per-client grant counts
  (``(Σx)² / (n·Σx²)``: 1.0 = perfectly even, → 1/n under starvation);
* hand-off chain lengths — runs of consecutive grants where the
  grantee was already queued when the previous holder released, i.e.
  the lock never went idle.  Long chains are what make ALock fast and
  what its cohort budget caps.

The tracker is scheme-agnostic: it needs only the ledger events every
manager already emits (``lock.request`` / ``lock.grant`` /
``lock.release`` / ``lock.revoke``), so SRSL and the one-sided designs
are measured identically.  When attached to a live observability stack
it also mirrors the signals into metrics (``dlm.wait_us`` histogram,
``dlm.max_wait_us`` / ``dlm.jain_fairness`` gauges,
``dlm.handoff_chain_len`` histogram) so they land in metric exports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["FairnessTracker", "jain_index"]


def jain_index(counts) -> float:
    """Jain's fairness index of a sequence of non-negative counts."""
    xs = [float(c) for c in counts]
    n = len(xs)
    if n == 0:
        return 1.0
    total = sum(xs)
    sq = sum(x * x for x in xs)
    if sq == 0.0:
        return 1.0
    return (total * total) / (n * sq)


class _MgrStats:
    __slots__ = ("grants", "waits", "max_wait", "chains", "max_chain")

    def __init__(self):
        self.grants: Dict[int, int] = {}   # token -> grant count
        self.waits: List[float] = []       # request -> grant (µs)
        self.max_wait = 0.0
        self.chains: List[int] = []        # closed hand-off chains
        self.max_chain = 0


class FairnessTracker:
    """Derives fairness/starvation signals from ``lock.`` trace events."""

    PREFIX = "lock."

    def __init__(self, metrics=None):
        self._metrics = metrics
        self._mgrs: Dict[str, _MgrStats] = {}
        #: (mgr, lock, token) -> pending request instants (FIFO)
        self._pending: Dict[Tuple[str, int, int], List[float]] = {}
        #: (mgr, lock) -> instant of the most recent release/revoke
        self._last_release: Dict[Tuple[str, int], float] = {}
        #: (mgr, lock) -> length of the hand-off chain in progress
        self._chain: Dict[Tuple[str, int], int] = {}
        self._finished = False

    # -- wiring ---------------------------------------------------------
    def attach(self, obs) -> "FairnessTracker":
        """Subscribe to a live observability stack's tracer + metrics."""
        obs.trace.subscribe(self._on_event, self.PREFIX)
        if self._metrics is None:
            self._metrics = obs.metrics
        return self

    def detach(self, obs) -> None:
        obs.trace.unsubscribe(self._on_event)

    def _mgr(self, name: str) -> _MgrStats:
        st = self._mgrs.get(name)
        if st is None:
            st = self._mgrs[name] = _MgrStats()
        return st

    # -- event handling --------------------------------------------------
    def _on_event(self, ev) -> None:
        f = ev.fields
        mgr = f.get("mgr")
        if mgr is None:
            return
        lock = f.get("lock")
        token = f.get("token")
        if ev.etype == "lock.request":
            self._pending.setdefault((mgr, lock, token), []).append(ev.t)
        elif ev.etype == "lock.grant":
            self._on_grant(ev, mgr, lock, token)
        elif ev.etype in ("lock.release", "lock.revoke"):
            self._last_release[(mgr, lock)] = ev.t
        elif ev.etype == "lock.reclaim":
            # wiped locks start over: close any chain in progress
            self._close_chain(mgr, lock)

    def _on_grant(self, ev, mgr: str, lock: int, token: int) -> None:
        st = self._mgr(mgr)
        st.grants[token] = st.grants.get(token, 0) + 1
        req_t: Optional[float] = None
        pend = self._pending.get((mgr, lock, token))
        if pend:
            req_t = pend.pop(0)
            wait = ev.t - req_t
            st.waits.append(wait)
            if wait > st.max_wait:
                st.max_wait = wait
            if self._metrics is not None:
                self._metrics.histogram("dlm.wait_us").observe(wait)
                self._metrics.gauge("dlm.max_wait_us").set(
                    max(m.max_wait for m in self._mgrs.values()))
        # hand-off chain: the grantee was already queued when the
        # previous holder let go — the lock never went idle
        last_rel = self._last_release.get((mgr, lock))
        if (req_t is not None and last_rel is not None
                and req_t <= last_rel):
            self._chain[(mgr, lock)] = self._chain.get((mgr, lock), 0) + 1
        else:
            self._close_chain(mgr, lock)
            self._chain[(mgr, lock)] = 1
        if self._metrics is not None:
            self._metrics.gauge("dlm.jain_fairness").set(
                jain_index(st.grants.values()))

    def _close_chain(self, mgr: str, lock: int) -> None:
        length = self._chain.pop((mgr, lock), 0)
        if length > 1:  # a chain of 1 is just an uncontended grant
            st = self._mgr(mgr)
            st.chains.append(length)
            if length > st.max_chain:
                st.max_chain = length
            if self._metrics is not None:
                self._metrics.histogram(
                    "dlm.handoff_chain_len").observe(float(length))

    # -- results ----------------------------------------------------------
    def finish(self) -> Dict[str, dict]:
        """Close open chains and return the summary (idempotent)."""
        if not self._finished:
            for mgr, lock in list(self._chain):
                self._close_chain(mgr, lock)
            self._finished = True
        return self.summary()

    def summary(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for name, st in sorted(self._mgrs.items()):
            waits = sorted(st.waits)
            n = len(waits)
            out[name] = {
                "grants": sum(st.grants.values()),
                "clients": len(st.grants),
                "grants_per_client": dict(sorted(st.grants.items())),
                "jain": jain_index(st.grants.values()),
                "max_wait_us": st.max_wait,
                "mean_wait_us": (sum(waits) / n) if n else 0.0,
                "p99_wait_us": waits[int(0.99 * (n - 1))] if n else 0.0,
                "chains": len(st.chains),
                "max_chain": st.max_chain,
            }
        return out
