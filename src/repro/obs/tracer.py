"""Ring-buffered structured event tracer.

The tracer is the single funnel every instrumented subsystem emits
through.  Events land in a bounded ring (old events fall off the back;
``emitted`` keeps the true total) and are simultaneously pushed to any
*subscribers* — callables registered for a dotted-type prefix.  The
protocol sanitizers are subscribers; so are tests that want to watch one
subsystem without buffering everything.

Emission sites never construct a tracer themselves: they guard on
``env.obs`` and call ``env.obs.trace.emit(...)`` only when observability
is installed, so a disabled run pays one attribute load per site.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Tuple

from .events import TraceEvent

__all__ = ["Tracer"]


class Tracer:
    """Bounded in-memory trace with prefix-filtered subscriptions."""

    def __init__(self, env, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.env = env
        self.ring: deque = deque(maxlen=capacity)
        self.emitted = 0
        #: (prefix, callback) pairs, notified synchronously in
        #: registration order — deterministic, like everything else.
        self._subs: List[Tuple[str, Callable[[TraceEvent], None]]] = []

    # -- emission -------------------------------------------------------
    def emit(self, etype: str, node: int = -1, **fields: Any) -> TraceEvent:
        """Record one event at the current simulated time."""
        ev = TraceEvent(self.env.now, node, etype, fields)
        self.ring.append(ev)
        self.emitted += 1
        for prefix, fn in self._subs:
            if etype.startswith(prefix):
                fn(ev)
        return ev

    # -- subscription ---------------------------------------------------
    def subscribe(self, fn: Callable[[TraceEvent], None],
                  prefix: str = "") -> None:
        """Call ``fn`` for every future event whose type starts with
        ``prefix`` (empty prefix = everything)."""
        self._subs.append((prefix, fn))

    def unsubscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        # equality, not identity: a bound method is a fresh object on
        # every attribute access, but compares equal to itself
        self._subs = [(p, f) for p, f in self._subs if f != fn]

    # -- queries --------------------------------------------------------
    def select(self, prefix: str = "", node: int = None) -> List[TraceEvent]:
        """Buffered events matching a type prefix (and node, if given)."""
        return [ev for ev in self.ring
                if ev.etype.startswith(prefix)
                and (node is None or ev.node == node)]

    def counts(self) -> Dict[str, int]:
        """Buffered event count by type (sorted for stable output)."""
        out: Dict[str, int] = {}
        for ev in self.ring:
            out[ev.etype] = out.get(ev.etype, 0) + 1
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self.ring)

    def __iter__(self):
        return iter(self.ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer emitted={self.emitted} "
                f"buffered={len(self.ring)}/{self.ring.maxlen}>")
