"""Protocol sanitizers: online invariant checks over the trace stream.

A sanitizer subscribes to a prefix of the event taxonomy and maintains a
small shadow model of the protocol it watches.  When an event contradicts
the model it *flags* a violation: in strict mode (the default) that
raises :class:`~repro.errors.SanitizerError` at the emission instant, so
the offending protocol step is at the top of the traceback; in
collecting mode the violation is only appended to ``violations`` and the
run continues (useful for tests that count them).

Sanitizers see events in emission order, which for client-side
observations of remote state can differ from execution order at the home
node (a delayed response resumes its process later).  Each shadow model
is therefore written against what emission order *does* guarantee — see
the per-class notes, in particular :class:`LockWordSanitizer`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import SanitizerError
from ..dlm.ncosed import _EP_MASK, unpack, unpack_ft
from .events import TraceEvent

__all__ = [
    "Sanitizer",
    "FlowControlSanitizer",
    "LockWordSanitizer",
    "RpcAtMostOnceSanitizer",
    "SingleOwnerSanitizer",
    "CacheAccountingSanitizer",
    "ALL_SANITIZERS",
]


class Sanitizer:
    """Base class: prefix subscription, violation log, strict/collect."""

    #: taxonomy prefix this sanitizer subscribes to
    PREFIX = ""
    #: short name used in exports and the CLI
    NAME = ""

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: List[dict] = []

    # -- wiring ---------------------------------------------------------
    def attach(self, tracer) -> "Sanitizer":
        tracer.subscribe(self._on_event, self.PREFIX)
        return self

    def detach(self, tracer) -> None:
        tracer.unsubscribe(self._on_event)

    # -- verdicts -------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    def flag(self, ev: TraceEvent, msg: str) -> None:
        self.violations.append(
            {"t": ev.t, "node": ev.node, "etype": ev.etype, "msg": msg})
        if self.strict:
            raise SanitizerError(
                f"[{self.NAME}] t={ev.t:.3f} node={ev.node} "
                f"{ev.etype}: {msg}")

    def to_dict(self) -> dict:
        return {"violations": list(self.violations)}

    # -- to implement ---------------------------------------------------
    def _on_event(self, ev: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError


class FlowControlSanitizer(Sanitizer):
    """Credit and ring-byte conservation for ``transport.flowcontrol``.

    Invariants:
    * credits outstanding per sender stay within ``[0, capacity]`` —
      a take beyond capacity means a message was sent without a credit,
      a return below zero means credits were minted out of thin air;
    * reserved ring bytes per sender stay within ``[0, pool]``.
    """

    PREFIX = "flow."
    NAME = "flowcontrol"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._credits: Dict[int, int] = {}   # sender -> outstanding
        self._ring: Dict[int, int] = {}      # sender -> reserved bytes

    def _on_event(self, ev: TraceEvent) -> None:
        f = ev.fields
        if ev.etype == "flow.credit.take":
            s = f["sender"]
            n = self._credits.get(s, 0) + 1
            self._credits[s] = n
            if n > f["capacity"]:
                self.flag(ev, f"{n} credits outstanding exceeds "
                              f"capacity {f['capacity']}")
        elif ev.etype == "flow.credit.return":
            s = f["sender"]
            n = self._credits.get(s, 0) - f["n"]
            self._credits[s] = n
            if n < 0:
                self.flag(ev, f"credit return of {f['n']} drives "
                              f"outstanding to {n} (< 0)")
        elif ev.etype == "flow.ring.reserve":
            s = f["sender"]
            used = self._ring.get(s, 0) + f["nbytes"]
            self._ring[s] = used
            if used > f["pool"]:
                self.flag(ev, f"{used} ring bytes reserved exceeds "
                              f"pool {f['pool']}")
        elif ev.etype == "flow.ring.free":
            s = f["sender"]
            used = self._ring.get(s, 0) - f["nbytes"]
            self._ring[s] = used
            if used < 0:
                self.flag(ev, f"ring free of {f['nbytes']} drives "
                              f"reserved to {used} (< 0)")


class LockWordSanitizer(Sanitizer):
    """N-CoSED lock-word well-formedness and epoch monotonicity.

    The authoritative epoch stream is ``lock.reclaim`` — emitted at the
    home-local wipe instant, so it is totally ordered and must advance
    by exactly +1 (mod 2**16) per reclaim.  ``lock.word`` observations
    are client-side: a response delayed in the fabric can legitimately
    surface an *older* epoch after a reclaim, so stale epochs are never
    flagged.  What can't happen is a *future* epoch — one the home node
    has not opened yet; seeing it means the word was corrupted.  Future
    is decided by wrap distance: ``0 < (ep - current) % 2**16 < 2**15``.

    Well-formedness: a nonzero tail must be a token that has announced
    itself (every client emits ``lock.request`` before its first atomic
    lands), and the shared count can never exceed the client population
    (each client holds a given lock at most once).
    """

    PREFIX = "lock."
    NAME = "lockword"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._epochs: Dict[Tuple[str, int], int] = {}  # (mgr, lock) -> ep
        self._tokens: Dict[str, Set[int]] = {}         # mgr -> known tokens
        #: (mgr, lock) -> {token: mode} shadow of current grants
        self._holders: Dict[Tuple[str, int], Dict[int, str]] = {}

    def _on_event(self, ev: TraceEvent) -> None:
        f = ev.fields
        if ev.etype == "lock.request":
            self._tokens.setdefault(f["mgr"], set()).add(f["token"])
        elif ev.etype == "lock.reclaim":
            self._check_reclaim(ev, f)
        elif ev.etype == "lock.word":
            self._check_word(ev, f)
        elif ev.etype == "lock.grant":
            self._check_grant(ev, f)
        elif ev.etype in ("lock.release", "lock.revoke"):
            key = (f["mgr"], f["lock"])
            held = self._holders.get(key, {})
            if f["token"] not in held:
                self.flag(ev, f"token {f['token']} ended a grant it "
                              f"never had on lock {f['lock']}")
            else:
                del held[f["token"]]

    def _check_reclaim(self, ev: TraceEvent, f: dict) -> None:
        key = (f["mgr"], f["lock"])
        want = (f["old_ep"] + 1) & _EP_MASK
        if f["new_ep"] != want:
            self.flag(ev, f"reclaim epoch jump {f['old_ep']} -> "
                          f"{f['new_ep']} (want {want})")
        cur = self._epochs.get(key)
        if cur is not None and f["old_ep"] != cur:
            self.flag(ev, f"reclaim from epoch {f['old_ep']} but "
                          f"current is {cur}")
        self._epochs[key] = f["new_ep"]
        # Chubby-style revocation: the reclaim ends every current grant.
        # The matching lock.revoke events follow; clear the shadow here
        # so the revokes (keyed by token) validate against the ledger.

    def _check_word(self, ev: TraceEvent, f: dict) -> None:
        key = (f["mgr"], f["lock"])
        if f["ft"]:
            ep, tail, count = unpack_ft(f["word"])
            cur = self._epochs.get(key, 0)
            dist = (ep - cur) & _EP_MASK
            if 0 < dist < 0x8000:
                self.flag(ev, f"word carries future epoch {ep} "
                              f"(home is at {cur})")
        else:
            tail, count = unpack(f["word"])
        tokens = self._tokens.get(f["mgr"], set())
        if tail and tail not in tokens:
            self.flag(ev, f"tail token {tail} was never announced "
                          f"by any client")
        if tokens and count > len(tokens):
            self.flag(ev, f"shared count {count} exceeds client "
                          f"population {len(tokens)}")

    def _check_grant(self, ev: TraceEvent, f: dict) -> None:
        key = (f["mgr"], f["lock"])
        held = self._holders.setdefault(key, {})
        if f["mode"] == "EXCLUSIVE" and held:
            self.flag(ev, f"exclusive grant to {f['token']} while "
                          f"{sorted(held)} still hold lock {f['lock']}")
        elif f["mode"] == "SHARED" and "EXCLUSIVE" in held.values():
            self.flag(ev, f"shared grant to {f['token']} while an "
                          f"exclusive holder exists on lock {f['lock']}")
        held[f["token"]] = f["mode"]


class RpcAtMostOnceSanitizer(Sanitizer):
    """At-most-once execution for reliable RPC (``transport.rpc``).

    A reliable call may be *attempted* many times (retries on drops) and
    the server may *answer* many times (dedup-cache replays), but the
    handler must run at most once per request id.  ``rpc.execute``
    events with ``rid=None`` are plain best-effort calls and exempt.
    """

    PREFIX = "rpc.execute"
    NAME = "rpc-at-most-once"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._executed: Set[Tuple] = set()   # (server, rid)

    def _on_event(self, ev: TraceEvent) -> None:
        rid = ev.fields.get("rid")
        if rid is None:
            return
        key = (ev.fields.get("server", ev.node), rid)
        if key in self._executed:
            self.flag(ev, f"request {rid} executed more than once "
                          f"on server {key[0]}")
        self._executed.add(key)


class SingleOwnerSanitizer(Sanitizer):
    """Single-owner discipline of the DDSS unit spin-lock.

    The CAS-token lock at the head of every shared-state unit admits one
    owner at a time; coherence models that lock (WRITE/STRICT/...) rely
    on it for their mutual exclusion.  The shadow model tracks ownership
    per ``(home, addr)``: a second acquire before release, or a release
    by a non-owner, is a violation.
    """

    PREFIX = "ddss.lock."
    NAME = "single-owner"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._owner: Dict[Tuple[int, int], int] = {}

    def _on_event(self, ev: TraceEvent) -> None:
        f = ev.fields
        key = (f["home"], f["addr"])
        if ev.etype == "ddss.lock.acquire":
            cur = self._owner.get(key)
            if cur is not None:
                self.flag(ev, f"token {f['token']} acquired unit lock "
                              f"{key} already owned by {cur}")
            self._owner[key] = f["token"]
        elif ev.etype == "ddss.lock.release":
            cur = self._owner.get(key)
            if cur != f["token"]:
                self.flag(ev, f"token {f['token']} released unit lock "
                              f"{key} owned by {cur}")
            self._owner.pop(key, None)


class CacheAccountingSanitizer(Sanitizer):
    """Store accounting for the cooperative cache (``repro.cache``).

    Shadow model: the set of documents (and their sizes) resident in
    each node's store, built from admit/evict events.  Invariants:
    * an eviction names a document the model says is resident;
    * after an admit, the store's reported ``used`` equals the model's
      size sum and never exceeds ``capacity``.

    Emission contract: when an insert evicts victims, the evict events
    are emitted *before* the admit, whose ``used`` is the post-insert
    figure — so the model is synchronized at every admit.
    """

    PREFIX = "cache."
    NAME = "cache-accounting"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._docs: Dict[int, Dict] = {}   # node -> {doc: size}

    def _on_event(self, ev: TraceEvent) -> None:
        f = ev.fields
        if ev.etype == "cache.evict":
            docs = self._docs.setdefault(ev.node, {})
            if f["doc"] not in docs:
                self.flag(ev, f"evicted {f['doc']!r} which the store "
                              f"never admitted")
            else:
                del docs[f["doc"]]
        elif ev.etype == "cache.admit":
            docs = self._docs.setdefault(ev.node, {})
            docs[f["doc"]] = f["size"]
            used = sum(docs.values())
            if used != f["used"]:
                self.flag(ev, f"store reports {f['used']} bytes used "
                              f"but admitted documents total {used}")
            if f["used"] > f["capacity"]:
                self.flag(ev, f"used {f['used']} exceeds capacity "
                              f"{f['capacity']}")


#: every sanitizer class, in the order exports list them
ALL_SANITIZERS = [
    CacheAccountingSanitizer,
    FlowControlSanitizer,
    LockWordSanitizer,
    RpcAtMostOnceSanitizer,
    SingleOwnerSanitizer,
]
