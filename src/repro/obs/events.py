"""Typed trace events and the event taxonomy.

A :class:`TraceEvent` is a small immutable record: the simulated
timestamp, the node the event is attributed to (``-1`` when no single
node applies), a dotted event type from :data:`TAXONOMY`, and a dict of
type-specific fields.  Dotted types form a hierarchy — sanitizers and
queries subscribe by *prefix* (``"lock."`` matches ``lock.word`` and
``lock.reclaim``).

The taxonomy is the contract between emission sites and consumers: an
emission site may add fields, but the fields listed here are guaranteed.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple

__all__ = ["TraceEvent", "TAXONOMY"]


class TraceEvent(NamedTuple):
    """One traced occurrence at simulated time ``t`` on node ``node``."""

    t: float
    node: int
    etype: str
    fields: Dict[str, Any]


#: event type -> (guaranteed fields, description)
TAXONOMY: Dict[str, tuple] = {
    # -- one-sided verbs (repro.net.nic) -------------------------------
    "verb.issue": (("op", "dst", "nbytes"),
                   "one-sided verb posted (op: read|write|cas|faa)"),
    "verb.complete": (("op", "dst", "us"),
                      "verb completed; us = issue-to-completion latency"),
    "verb.fail": (("op", "dst"),
                  "verb failed (injected fault or crashed peer)"),
    # -- two-sided messages (repro.net.nic) ----------------------------
    "msg.send": (("dst", "size", "mid"), "send posted"),
    "msg.deliver": (("src", "mid"), "message enqueued at the receiver"),
    "msg.drop": (("src", "mid"), "message dropped by an injected fault"),
    "msg.dup": (("src", "mid"), "message delivered twice (duplicate)"),
    # -- RPC (repro.transport.rpc) -------------------------------------
    "rpc.attempt": (("rid", "attempt"), "reliable call attempt sent"),
    "rpc.retry": (("rid", "attempt"), "attempt re-sent after a deadline"),
    "rpc.timeout": (("rid",), "retry budget exhausted; call failed"),
    "rpc.execute": (("rid",),
                    "server ran the handler (rid None for plain calls)"),
    "rpc.dup_request": (("rid",),
                        "duplicate request answered from the dedup cache"),
    # -- locks (repro.dlm) ---------------------------------------------
    "lock.request": (("mgr", "lock", "token", "mode"),
                     "client began an acquire"),
    "lock.enqueue": (("mgr", "lock", "token", "mode", "prev", "ep"),
                     "requester landed in the wait queue; prev is the "
                     "queue predecessor read atomically from the lock "
                     "word (0 = none; server decision order for SRSL; "
                     "ALock adds cohort='L'|'R')"),
    "lock.grant": (("mgr", "lock", "token", "mode"),
                   "ledger recorded a grant (ep added under FT; ALock "
                   "adds cohort/chain/budget — chain is the 0-based "
                   "position in the cohort pass-off run)"),
    "lock.release": (("mgr", "lock", "token"),
                     "ledger recorded a voluntary release"),
    "lock.revoke": (("mgr", "lock", "token"),
                    "grant forcibly ended by a lease reclaim"),
    "lock.reclaim": (("mgr", "lock", "old_ep", "new_ep"),
                     "reaper wiped the word and opened a new epoch"),
    "lock.rehome": (("mgr", "lock", "frm", "to", "ep"),
                    "failover moved the lock word to a live home"),
    "lock.fail": (("mgr", "lock", "token", "attempts"),
                  "acquire exhausted its retry budget (LockError)"),
    "lock.word": (("mgr", "lock", "word", "ft"),
                  "a protocol step observed the raw 64-bit lock word"),
    # -- flow control (repro.transport.flowcontrol) --------------------
    "flow.credit.take": (("sender", "capacity"),
                         "credit consumed (one preposted buffer)"),
    "flow.credit.return": (("sender", "n"),
                           "n credits returned by the receiver ack"),
    "flow.ring.reserve": (("sender", "nbytes", "pool"),
                          "sender reserved ring space for a message"),
    "flow.ring.free": (("sender", "nbytes"),
                       "receiver ack freed ring space"),
    # -- cooperative cache (repro.cache) -------------------------------
    "cache.hit.local": (("doc", "tok", "t0"),
                        "served from the proxy's own store (tok = content "
                        "fingerprint served; t0 = lookup start)"),
    "cache.hit.remote": (("doc", "tok", "t0", "holder"),
                         "served by one-sided pull from a peer store"),
    "cache.miss": (("doc",), "not cached anywhere reachable"),
    "cache.admit": (("doc", "size", "used", "capacity", "tok"),
                    "document inserted into a store"),
    "cache.evict": (("doc", "size"),
                    "document evicted (capacity or retirement)"),
    # -- DDSS (repro.ddss) ---------------------------------------------
    "ddss.get": (("key",), "data-plane get issued"),
    "ddss.put": (("key",), "data-plane put issued"),
    "ddss.alloc": (("key", "model", "nbytes", "delta", "ttl_us",
                    "replicas"),
                   "key allocated with its coherence contract"),
    "ddss.get.done": (("key", "model", "t0", "version", "nbytes", "data",
                       "hit", "age_us"),
                      "get returned to the caller (t0 = start; version "
                      "None when the model carries none; data = hex "
                      "payload or blake2b digest for large payloads)"),
    "ddss.put.done": (("key", "model", "t0", "version", "nbytes", "data"),
                      "put completed (fields as ddss.get.done)"),
    "ddss.cache_hit": (("key",),
                       "get served from the local DELTA/TEMPORAL copy"),
    "ddss.lock.acquire": (("home", "addr", "token"),
                          "unit spin-lock CAS succeeded"),
    "ddss.lock.release": (("home", "addr", "token"),
                          "unit spin-lock released"),
    "ddss.migrate": (("key", "frm", "to"),
                     "unit rebalanced to a new home; the old block is "
                     "tombstoned and quarantined"),
    # -- multi-key transactions (repro.txn) ----------------------------
    "txn.begin": (("tid", "variant", "keys", "label"),
                  "transaction started (attempt loop follows)"),
    "txn.read": (("tid", "attempt", "key", "version", "nbytes", "data"),
                 "snapshot read in this attempt's read phase (data = "
                 "payload fingerprint as ddss.get.done)"),
    "txn.validate": (("tid", "attempt", "ok"),
                     "validation outcome: write set claimed at snapshot "
                     "versions and read-only versions re-checked"),
    "txn.install": (("tid", "attempt", "key", "version", "nbytes",
                     "data"),
                    "one write-set key published at its new version"),
    "txn.commit": (("tid", "attempt", "keys", "attempts"),
                   "every write-set key published; keys lists the "
                   "write set (attempts = total attempts used)"),
    "txn.abort": (("tid", "attempt", "reason"),
                  "attempt aborted after a clean unwind (bounded "
                  "retry may follow)"),
    "txn.wedged": (("tid", "attempt", "installed", "keys"),
                   "publish phase interrupted mid-write-set: installed "
                   "keys are durable, the rest hold the busy bit "
                   "(outcome indeterminate)"),
    # -- reconfiguration (repro.reconfig) ------------------------------
    "reconfig.migrate": (("mnode", "frm", "to"),
                         "node moved between services by load"),
    "reconfig.evict": (("mnode", "service"),
                       "dead node evicted from a service"),
    "reconfig.backfill": (("mnode", "service"),
                          "donor node backfilled into a starved service"),
    "reconfig.restore": (("mnode", "service"),
                         "restarted node restored to a service"),
    "reconfig.fenced": (("mnode", "service"),
                        "membership change refused: no quorum"),
    # -- failure detection (repro.monitor) -----------------------------
    "detect.suspect": (("watched",),
                       "detector marked a watched node suspect"),
    "detect.clear": (("watched",),
                     "suspect answered before confirmation (flap)"),
    "detect.dead": (("watched",), "detector declared the node dead"),
    "detect.alive": (("watched",), "dead node answered a probe again"),
    "detect.fenced": (("watched",),
                      "death verdict parked: decider lacks quorum"),
    # -- injected faults (repro.faults) --------------------------------
    "fault.crash": ((), "fail-stop crash of the event's node"),
    "fault.restart": ((), "crashed node came back (memory intact)"),
    "fault.partition": (("groups", "oneway", "until"),
                        "partition window opened (node -1 = fabric)"),
    "fault.partition.heal": (("groups", "oneway"),
                             "partition window closed"),
    "fault.slow": (("mnode", "factor", "until"),
                   "gray failure: node's transfers slowed"),
    "fault.slow.end": (("mnode", "factor"), "slow-node window closed"),
    "fault.stall": (("mnode", "until"),
                    "gray failure: node's credit returns wedged"),
    "fault.stall.end": (("mnode",), "credit-stall window closed"),
    # -- HA choreography expectations (repro.chaos) --------------------
    "ha.expect": (("kind", "victims", "after", "by", "start", "until"),
                  "declarative failover should(-not)-happen assertion "
                  "checked post-hoc by the HA oracle"),
    # -- rack/spine topology (repro.topo) ------------------------------
    "topo.xrack": (("dst", "srack", "drack", "nbytes"),
                   "cross-rack transfer entered a ToR uplink"),
    # -- sharded namespaces (repro.shard) ------------------------------
    "shard.rebalance": (("mgr", "kind", "mnode", "ep", "members"),
                        "shard ring membership changed (evict/restore)"),
    "shard.bounce": (("key", "frm", "to", "ep"),
                     "directory op hit a non-owner daemon and was "
                     "redirected to the current ring owner"),
}
