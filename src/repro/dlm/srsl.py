"""SRSL — Send/Receive-based Server Locking (the two-sided baseline).

Each lock's home node runs a lock-server process.  Clients send
``acquire``/``release`` requests as ordinary messages; the server
maintains a FIFO queue per lock, granting shared requests in batches and
exclusive requests alone.  Every request and every grant crosses the
network as a two-sided message *and* consumes server CPU on the shared
processor — under load the server slows down, which is exactly the
drawback the one-sided schemes remove.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.net.node import Node

from repro.dlm.base import LockClient, LockManagerBase, LockMode

__all__ = ["SRSLManager", "SRSLClient"]

#: server CPU cost per processed request / per issued grant (µs)
SERVER_REQ_US = 1.5
SERVER_GRANT_US = 0.7


@dataclass
class _LockState:
    mode: Optional[LockMode] = None
    holders: int = 0
    queue: Deque[Tuple[int, LockMode]] = field(default_factory=deque)


class SRSLManager(LockManagerBase):
    SCHEME = "srsl"

    def _setup_homes(self) -> None:
        self._tables: Dict[int, Dict[int, _LockState]] = {}
        for node in self.members:
            self._tables[node.id] = {}
            self.env.process(self._server(node),
                             name=f"srsl-server@{node.name}")

    def client(self, node: Node) -> "SRSLClient":
        return SRSLClient(self, node)

    # -- server ------------------------------------------------------------
    def _server(self, node: Node):
        table = self._tables[node.id]
        while True:
            msg = yield node.nic.recv(tag=("srsl-server", node.id))
            yield node.cpu.run(SERVER_REQ_US, name="srsl-server")
            body = msg.payload
            state = table.setdefault(body["lock"], _LockState())
            if body["op"] == "acquire":
                req = (body["token"], LockMode(body["mode"]))
                state.queue.append(req)
                obs = self.env.obs
                if obs is not None:
                    # server decision order IS the queue order for SRSL
                    obs.trace.emit("lock.enqueue", node=node.id,
                                   mgr=self.obs_name, lock=body["lock"],
                                   token=req[0], mode=req[1].name,
                                   prev=0, ep=0)
                yield from self._drain(node, body["lock"], state)
            elif body["op"] == "release":
                state.holders -= 1
                if state.holders == 0:
                    state.mode = None
                yield from self._drain(node, body["lock"], state)

    def _grantable(self, state: _LockState) -> bool:
        if not state.queue:
            return False
        _token, mode = state.queue[0]
        if state.holders == 0:
            return True
        return (state.mode is LockMode.SHARED and mode is LockMode.SHARED)

    def _drain(self, node: Node, lock_id: int, state: _LockState):
        """Grant every request at the head that is compatible."""
        while self._grantable(state):
            token, mode = state.queue.popleft()
            state.mode = mode
            state.holders += 1
            yield node.cpu.run(SERVER_GRANT_US, name="srsl-grant")
            client = self.clients[token]
            node.nic.send(client.node.id,
                          payload={"t": "grant", "lock": lock_id,
                                   "mode": mode.value},
                          size=32, tag=client._tag)


class SRSLClient(LockClient):
    def _acquire(self, lock_id: int, mode: LockMode):
        home = self.manager.home_node(lock_id)
        self.node.nic.send(home.id, payload={
            "op": "acquire", "lock": lock_id, "mode": mode.value,
            "token": self.token,
        }, size=32, tag=("srsl-server", home.id))
        yield from self._wait(lock_id, "grant")
        self._granted(lock_id, mode)
        return None

    def _release(self, lock_id: int):
        self._released(lock_id)
        home = self.manager.home_node(lock_id)
        self.node.nic.send(home.id, payload={
            "op": "release", "lock": lock_id, "token": self.token,
        }, size=32, tag=("srsl-server", home.id))
        # fire-and-forget: the server performs the hand-off
        yield self.env.timeout(0.0)
        return None
