"""Reusable lock-manager experiment harnesses (paper Fig. 5).

``cascade_latency`` reproduces the paper's cascading-unlock experiment:
one client holds a lock exclusively while N other clients (one per node)
queue behind it; at release time the grants cascade and we measure the
time from the release until the *last* waiter holds the lock.

* shared cascade (Fig. 5a): all waiters request SHARED — N-CoSED grants
  them in one volley, DQNL serializes them.
* exclusive cascade (Fig. 5b): waiters request EXCLUSIVE and each
  releases immediately when granted, handing down the chain.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.net.cluster import Cluster
from repro.net.params import NetworkParams

from repro.dlm.base import LockManagerBase, LockMode

__all__ = ["cascade_latency", "uncontended_latency"]

#: settle time (µs) for all waiters to be enqueued before the release
_SETTLE_US = 5_000.0


def cascade_latency(scheme_cls: Type[LockManagerBase], n_waiters: int,
                    mode: LockMode, seed: int = 0,
                    params: NetworkParams = None) -> Dict[str, object]:
    """Run one cascade experiment; returns timings in µs."""
    if n_waiters < 1:
        raise ValueError("need at least one waiter")
    cluster = Cluster(n_nodes=n_waiters + 2,
                      params=params or NetworkParams.infiniband(),
                      seed=seed)
    manager = scheme_cls(cluster, n_locks=4)
    lock_id = 0  # homed on node 0
    holder = manager.client(cluster.nodes[1])
    waiters = [manager.client(cluster.nodes[i + 2])
               for i in range(n_waiters)]
    grant_times: List[float] = []
    timings: Dict[str, object] = {}

    def waiter_proc(env, client, idx):
        # stagger the enqueue slightly so CAS order is deterministic
        yield env.timeout(10.0 * (idx + 1))
        yield client.acquire(lock_id, mode)
        grant_times.append(env.now)
        # release right away: exclusive waiters hand down the chain, and
        # schemes without a native shared mode (DQNL) need the release to
        # let the serialized "shared" queue progress at all
        yield client.release(lock_id)

    def main(env):
        yield holder.acquire(lock_id, LockMode.EXCLUSIVE)
        procs = [env.process(waiter_proc(env, w, i))
                 for i, w in enumerate(waiters)]
        yield env.timeout(_SETTLE_US)  # everyone is queued and blocked
        t_release = env.now
        yield holder.release(lock_id)
        yield env.all_of(procs)
        timings["t_release"] = t_release
        timings["last_grant"] = max(grant_times)
        timings["cascade_us"] = max(grant_times) - t_release
        timings["grant_times"] = sorted(t - t_release for t in grant_times)

    done = cluster.env.process(main(cluster.env))
    cluster.env.run_until_event(done)
    timings["n_waiters"] = n_waiters
    timings["mode"] = mode.value
    timings["scheme"] = scheme_cls.SCHEME
    return timings


def uncontended_latency(scheme_cls: Type[LockManagerBase],
                        mode: LockMode = LockMode.EXCLUSIVE,
                        seed: int = 0) -> float:
    """Mean acquire+release latency with no contention (µs)."""
    cluster = Cluster(n_nodes=2, params=NetworkParams.infiniband(),
                      seed=seed)
    manager = scheme_cls(cluster, n_locks=1)
    client = manager.client(cluster.nodes[1])
    n_iters = 20

    def main(env):
        t0 = env.now
        for _ in range(n_iters):
            yield client.acquire(0, mode)
            yield client.release(0)
            # let fire-and-forget hand-offs quiesce
            yield env.timeout(100.0)
        return (env.now - t0 - 100.0 * n_iters) / n_iters

    done = cluster.env.process(main(cluster.env))
    cluster.env.run_until_event(done)
    return done.value
