"""Reusable lock-manager experiment harnesses (paper Fig. 5).

``cascade_latency`` reproduces the paper's cascading-unlock experiment:
one client holds a lock exclusively while N other clients (one per node)
queue behind it; at release time the grants cascade and we measure the
time from the release until the *last* waiter holds the lock.

* shared cascade (Fig. 5a): all waiters request SHARED — N-CoSED grants
  them in one volley, DQNL serializes them.
* exclusive cascade (Fig. 5b): waiters request EXCLUSIVE and each
  releases immediately when granted, handing down the chain.

A scheme that wedges (a waiter never granted) fails loudly: the cascade
wait is bounded and the resulting :class:`~repro.errors.LockError`
names the scheme and the stuck waiters instead of crashing on an empty
``max()`` or silently reporting a partial cascade.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import LockError
from repro.net.cluster import Cluster
from repro.net.params import NetworkParams
from repro.sim import AnyOf

from repro.dlm.base import LockManagerBase, LockMode

__all__ = ["cascade_latency", "uncontended_latency"]

#: settle time (µs) for all waiters to be enqueued before the release
_SETTLE_US = 5_000.0

#: default bound (µs) on the whole cascade after the holder releases;
#: generous against the worst legitimate chain, tight against a wedge
_CASCADE_TIMEOUT_US = 1_000_000.0


def cascade_latency(scheme_cls: Type[LockManagerBase], n_waiters: int,
                    mode: LockMode, seed: int = 0,
                    params: Optional[NetworkParams] = None,
                    grant_timeout_us: float = _CASCADE_TIMEOUT_US
                    ) -> Dict[str, object]:
    """Run one cascade experiment; returns timings in µs.

    Raises :class:`LockError` naming the scheme and the stuck waiter
    tokens if any waiter is still ungranted ``grant_timeout_us`` after
    the holder's release.
    """
    if n_waiters < 1:
        raise ValueError("need at least one waiter")
    cluster = Cluster(n_nodes=n_waiters + 2,
                      params=params or NetworkParams.infiniband(),
                      seed=seed)
    manager = scheme_cls(cluster, n_locks=4)
    lock_id = 0  # homed on node 0
    holder = manager.client(cluster.nodes[1])
    waiters = [manager.client(cluster.nodes[i + 2])
               for i in range(n_waiters)]
    grant_times: Dict[int, float] = {}  # waiter index -> grant instant
    timings: Dict[str, object] = {}

    def waiter_proc(env, client, idx):
        # stagger the enqueue slightly so CAS order is deterministic
        yield env.timeout(10.0 * (idx + 1))
        yield client.acquire(lock_id, mode)
        grant_times[idx] = env.now
        # release right away: exclusive waiters hand down the chain, and
        # schemes without a native shared mode (DQNL) need the release to
        # let the serialized "shared" queue progress at all
        yield client.release(lock_id)

    def main(env):
        yield holder.acquire(lock_id, LockMode.EXCLUSIVE)
        procs = [env.process(waiter_proc(env, w, i))
                 for i, w in enumerate(waiters)]
        yield env.timeout(_SETTLE_US)  # everyone is queued and blocked
        t_release = env.now
        yield holder.release(lock_id)
        # bounded wait: a wedged scheme must fail, not hang or crash
        yield AnyOf(env, [env.all_of(procs),
                          env.timeout(grant_timeout_us)])
        timings["t_release"] = t_release
        timings["n_granted"] = len(grant_times)
        if len(grant_times) < n_waiters:
            stuck = sorted(set(range(n_waiters)) - set(grant_times))
            raise LockError(
                f"cascade stalled for scheme {scheme_cls.SCHEME!r}: "
                f"{len(grant_times)}/{n_waiters} waiters granted "
                f"{grant_timeout_us:.0f}us after the release; stuck "
                f"waiters (tokens): "
                f"{[(i, waiters[i].token) for i in stuck]}")
        last = max(grant_times.values())
        timings["last_grant"] = last
        timings["cascade_us"] = last - t_release
        timings["grant_times"] = sorted(
            t - t_release for t in grant_times.values())

    done = cluster.env.process(main(cluster.env))
    cluster.env.run_until_event(done)
    timings["n_waiters"] = n_waiters
    timings["mode"] = mode.value
    timings["scheme"] = scheme_cls.SCHEME
    return timings


def uncontended_latency(scheme_cls: Type[LockManagerBase],
                        mode: LockMode = LockMode.EXCLUSIVE,
                        seed: int = 0, n_iters: int = 20,
                        quiesce_us: float = 100.0) -> float:
    """Mean acquire+release latency with no contention (µs).

    Each iteration is timed with its own timestamps around the
    acquire+release pair; the inter-iteration quiesce (which lets
    fire-and-forget hand-offs drain) sits entirely outside the measured
    span, so its length never leaks into the reported latency.
    """
    cluster = Cluster(n_nodes=2, params=NetworkParams.infiniband(),
                      seed=seed)
    manager = scheme_cls(cluster, n_locks=1)
    client = manager.client(cluster.nodes[1])
    samples: List[float] = []

    def main(env):
        for _ in range(n_iters):
            t0 = env.now
            yield client.acquire(0, mode)
            yield client.release(0)
            samples.append(env.now - t0)
            # let fire-and-forget hand-offs quiesce (unmeasured)
            yield env.timeout(quiesce_us)
        return sum(samples) / n_iters

    done = cluster.env.process(main(cluster.env))
    cluster.env.run_until_event(done)
    return done.value
