"""Lock-design tournament: Zipf-skewed contention × chaos × scheme.

One tournament cell runs ``n_clients`` contending clients against one
lock scheme: each client loops picking a lock from a Zipf distribution
(``alpha`` skew — the contention knob: at high alpha everyone piles
onto lock 0), holds it briefly, releases, thinks, repeats.  The run is
observed end to end; afterwards the full trace is replayed through the
extended :class:`~repro.verify.locks.LockOracle` (plus the live
sanitizers) and the :class:`~repro.obs.FairnessTracker` summary is
folded into the stats, so every reported number comes from a run whose
mutual-exclusion / FIFO / cohort / queue-order / epoch invariants were
machine-checked.

``chaos="crash"`` adds the standard two-crash fault plan (one node
restarts, one stays dead) and switches the lease-fenced schemes
(N-CoSED, MCS, ALock) into fault-tolerant mode; SRSL and DQNL run the
same workload and simply eat the failures.

Deterministic: same arguments, same seed => identical stats dict.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import FaultError, LockError, RdmaError
from repro.net.cluster import Cluster
from repro.net.params import NetworkParams
from repro.obs import FairnessTracker
from repro.verify.locks import LockOracle
from repro.verify.trace import TraceView, replay_fresh
from repro.workloads.zipf import ZipfGenerator

from repro.dlm.base import LockMode

__all__ = ["SCHEMES", "lock_tournament"]

#: lease for the fault-tolerant schemes under chaos (µs)
_CHAOS_LEASE_US = 600.0

#: chaos crash plan (µs): absolute, early enough to land while the
#: contention herd is still draining (makespans run 3-40 ms); one node
#: restarts, the other stays dead
_CRASH_A_US = 3_000.0
_RESTART_US = 8_000.0
_CRASH_B_US = 5_000.0


def _make_manager(scheme: str, cluster: Cluster, n_locks: int,
                  chaos: str):
    """Build a manager; lease-fenced schemes get a lease under chaos."""
    from repro.dlm import (ALockManager, DQNLManager, MCSManager,
                          NCoSEDManager, SRSLManager)
    ft_kw = ({"lease_us": _CHAOS_LEASE_US} if chaos != "none" else {})
    if scheme == "srsl":
        return SRSLManager(cluster, n_locks=n_locks)
    if scheme == "dqnl":
        return DQNLManager(cluster, n_locks=n_locks)
    if scheme == "ncosed":
        return NCoSEDManager(cluster, n_locks=n_locks, **ft_kw)
    if scheme == "mcs":
        return MCSManager(cluster, n_locks=n_locks, **ft_kw)
    if scheme == "alock":
        return ALockManager(cluster, n_locks=n_locks, **ft_kw)
    raise LockError(f"unknown scheme {scheme!r}; "
                    f"available: {', '.join(SCHEMES)}")


SCHEMES = ("srsl", "dqnl", "ncosed", "mcs", "alock")


def lock_tournament(scheme: str, n_clients: int = 256,
                    alpha: float = 0.9, chaos: str = "none",
                    seed: int = 0, n_nodes: int = 8, n_locks: int = 16,
                    rounds: int = 6, horizon_us: float = 400_000.0,
                    shared_frac: float = 0.2, ring: int = 1 << 21,
                    params: Optional[NetworkParams] = None
                    ) -> Dict[str, object]:
    """Run one tournament cell; returns a flat, JSON-able stats dict.

    Raises :class:`LockError` if the replayed trace has any oracle or
    sanitizer violation — a tournament number from an unsafe run is
    worse than no number.
    """
    if chaos not in ("none", "crash"):
        raise LockError(f"unknown chaos mode {chaos!r} (none|crash)")
    cluster = Cluster(n_nodes=n_nodes,
                      params=params or NetworkParams.infiniband(),
                      seed=seed)
    obs = cluster.observe(ring=ring, sanitize=True, strict=False)
    fairness = FairnessTracker().attach(obs)
    if chaos == "crash":
        from repro.faults import FaultPlan
        crash_a = 2 % n_nodes or 1
        crash_b = (n_nodes - 1) or 1
        cluster.install_faults(
            FaultPlan()
            .crash(crash_a, at=_CRASH_A_US, restart_at=_RESTART_US)
            .crash(crash_b, at=_CRASH_B_US))
    manager = _make_manager(scheme, cluster, n_locks, chaos)
    env = cluster.env
    zipf = ZipfGenerator(n_locks, alpha, cluster.rng.get("locks-arena"))
    rng = cluster.rng.get("locks-arena-times")
    grants = [0]
    failures = [0]
    last_grant = [0.0]

    def client_proc(env, client, think0, thinks, holds, shareds, locks):
        yield env.timeout(think0)
        for r in range(rounds):
            mode = (LockMode.SHARED if shareds[r] else LockMode.EXCLUSIVE)
            lock_i = locks[r]
            try:
                yield client.acquire(lock_i, mode)
            except (LockError, FaultError, RdmaError):
                failures[0] += 1
                yield env.timeout(thinks[r])
                continue
            grants[0] += 1
            last_grant[0] = env.now
            yield env.timeout(holds[r])
            try:
                yield client.release(lock_i)
            except (LockError, FaultError, RdmaError):
                failures[0] += 1
                return
            yield env.timeout(thinks[r])

    for i in range(n_clients):
        client = manager.client(cluster.nodes[i % n_nodes])
        # draw every random choice up front so the offered schedule is
        # identical across schemes for a given seed — the measured
        # difference is purely how fast each design drains it; short
        # thinks + a tight arrival window keep the hot locks saturated
        env.process(
            client_proc(env, client,
                        rng.uniform(0.0, 2_000.0),
                        [rng.uniform(20.0, 200.0) for _ in range(rounds)],
                        [rng.uniform(2.0, 10.0) for _ in range(rounds)],
                        [bool(rng.random() < shared_frac)
                         for _ in range(rounds)],
                        [int(zipf.next()) for _ in range(rounds)]),
            name=f"arena-{i}")
    env.run(until=horizon_us)

    view = TraceView.from_obs(obs).require_complete()
    _oracles, violations = replay_fresh(view, [LockOracle])
    sanitizer_violations = obs.violations()
    n_viol = len(violations) + len(sanitizer_violations)
    if n_viol:
        first = (violations or sanitizer_violations)[0]
        raise LockError(
            f"tournament run {scheme}/{n_clients}c/a{alpha}/{chaos} is "
            f"UNSAFE: {n_viol} violation(s); first: {first}")

    fsum = fairness.finish().get(manager.obs_name, {})
    makespan_us = last_grant[0] or env.now
    return {
        "scheme": scheme,
        "n_clients": n_clients,
        "alpha": alpha,
        "chaos": chaos,
        "seed": seed,
        "n_nodes": n_nodes,
        "n_locks": n_locks,
        "grants": grants[0],
        "failures": failures[0],
        "ops_per_s": (grants[0] / (makespan_us / 1e6)
                      if makespan_us > 0 else 0.0),
        "makespan_us": makespan_us,
        "jain": fsum.get("jain", 1.0),
        "max_wait_us": fsum.get("max_wait_us", 0.0),
        "mean_wait_us": fsum.get("mean_wait_us", 0.0),
        "p99_wait_us": fsum.get("p99_wait_us", 0.0),
        "max_chain": fsum.get("max_chain", 0),
        "violations": n_viol,
        "events": len(view),
        "sim_now_us": env.now,
    }
