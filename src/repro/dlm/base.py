"""Shared machinery for the three distributed lock managers.

Locks are identified by small integers and *homed* on member nodes
(``home = lock_id % n_members``).  Each client gets a globally unique
nonzero token; peer-to-peer protocol messages are routed to the token's
owner through a per-manager NIC tag.

``acquire``/``release`` return simulation events.  Safety bookkeeping
(`holders`) is maintained *outside* the protocol paths so tests can
assert mutual exclusion without trusting the implementation under test.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.errors import LockError
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.sim import AnyOf, Event, Store

__all__ = ["LockMode", "LockManagerBase", "LockClient"]

#: CPU cost for a client to notice and process a protocol message (µs):
#: polling the completion queue and running a tiny handler.
CLIENT_POLL_US = 0.5


class LockMode(Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockManagerBase:
    """Common state: membership, homes, token registry, safety ledger."""

    SCHEME = "base"

    def __init__(self, cluster: Cluster, n_locks: int = 64,
                 member_nodes: Optional[Sequence[Node]] = None):
        if n_locks <= 0:
            raise LockError("need at least one lock")
        self.cluster = cluster
        self.env = cluster.env
        self.members = list(member_nodes or cluster.nodes)
        if not self.members:
            raise LockError("lock manager needs member nodes")
        self.n_locks = n_locks
        self._tokens = itertools.count(1)
        #: token -> client
        self.clients: Dict[int, "LockClient"] = {}
        #: safety ledger: lock -> set of (token, mode) currently granted
        self.holders: Dict[int, Set[Tuple[int, LockMode]]] = {}
        #: stable name for trace events; drawn from a dedicated id stream
        #: unconditionally so runs with and without obs stay identical
        self.obs_name = f"{self.SCHEME}-{self.env.next_id('obs-dlm')}"
        self._setup_homes()

    def _setup_homes(self) -> None:
        """Scheme-specific per-home state (lock tables / memory words)."""

    def home_node(self, lock_id: int) -> Node:
        self._check_lock(lock_id)
        return self.members[lock_id % len(self.members)]

    def client(self, node: Node) -> "LockClient":
        raise NotImplementedError

    def _register(self, client: "LockClient") -> int:
        token = next(self._tokens)
        self.clients[token] = client
        return token

    def _check_lock(self, lock_id: int) -> None:
        if not 0 <= lock_id < self.n_locks:
            raise LockError(f"lock id {lock_id} out of range")

    # -- safety ledger ----------------------------------------------------
    def _ledger_grant(self, lock_id: int, token: int, mode: LockMode,
                      ep: Optional[int] = None, **extra_fields) -> None:
        """Record a grant; ``extra_fields`` (e.g. the ALock cohort and
        hand-off chain position) ride along on the ``lock.grant`` event."""
        held = self.holders.setdefault(lock_id, set())
        if mode is LockMode.EXCLUSIVE and held:
            raise LockError(
                f"SAFETY: exclusive grant of lock {lock_id} to {token} "
                f"while held by {held}")
        if mode is LockMode.SHARED and any(
                m is LockMode.EXCLUSIVE for _, m in held):
            raise LockError(
                f"SAFETY: shared grant of lock {lock_id} to {token} "
                f"while exclusively held")
        held.add((token, mode))
        extra = {"mode": mode.name}
        if ep is not None:
            extra["ep"] = ep
        extra.update(extra_fields)
        self._obs_ledger("lock.grant", lock_id, token, **extra)

    def _ledger_release(self, lock_id: int, token: int) -> LockMode:
        held = self.holders.setdefault(lock_id, set())
        for entry in held:
            if entry[0] == token:
                held.remove(entry)
                self._obs_ledger("lock.release", lock_id, token)
                return entry[1]
        raise LockError(
            f"release of lock {lock_id} by non-holder {token}")

    def _ledger_expunge(self, lock_id: int, token: int) -> Optional[LockMode]:
        """Forcibly end a grant (lease revocation); None if not held."""
        held = self.holders.setdefault(lock_id, set())
        for entry in held:
            if entry[0] == token:
                held.remove(entry)
                self._obs_ledger("lock.revoke", lock_id, token)
                return entry[1]
        return None

    def _obs_ledger(self, etype: str, lock_id: int, token: int,
                    **extra) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.home_node(lock_id).id,
                           mgr=self.obs_name, lock=lock_id, token=token,
                           **extra)
            obs.metrics.counter(f"dlm.{etype.split('.')[1]}s").inc()

    def holder_count(self, lock_id: int) -> int:
        return len(self.holders.get(lock_id, ()))


class LockClient:
    """One application's handle; lives on a node, owns a token."""

    def __init__(self, manager: LockManagerBase, node: Node):
        self.manager = manager
        self.node = node
        self.env = node.env
        self.token = manager._register(self)
        self._tag = (manager.SCHEME, self.token)
        #: per-(lock, kind) queues of protocol messages for this client
        self._queues: Dict[Tuple[int, str], Store] = {}
        self.acquires = 0
        self.releases = 0
        self.env.process(self._dispatch(), name=f"{manager.SCHEME}-"
                         f"dispatch@{node.name}.{self.token}")

    # -- public API -------------------------------------------------------
    def acquire(self, lock_id: int, mode: LockMode = LockMode.EXCLUSIVE
                ) -> Event:
        """Acquire; the event fires when the lock is granted."""
        self.manager._check_lock(lock_id)
        self.acquires += 1
        ev = self.env.process(
            self._acquire(lock_id, mode),
            name=f"{self.manager.SCHEME}-acq@{self.node.name}")
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("lock.request", node=self.node.id,
                           mgr=self.manager.obs_name, lock=lock_id,
                           token=self.token, mode=mode.name)
            self._obs_acquire_latency(obs, ev)
        return ev

    def _obs_acquire_latency(self, obs, ev) -> None:
        t0 = self.env.now
        node = self.node.id
        name = f"dlm.{self.manager.SCHEME}.acquire_us"

        def done(e):
            if e.ok:
                us = self.env.now - t0
                obs.metrics.histogram(name).observe(us)
                obs.metrics.histogram(name, node=node).observe(us)

        done._obs_passive = True
        ev.add_callback(done)

    def release(self, lock_id: int) -> Event:
        """Release; the event fires when the hand-off has been initiated."""
        self.manager._check_lock(lock_id)
        self.releases += 1
        return self.env.process(
            self._release(lock_id),
            name=f"{self.manager.SCHEME}-rel@{self.node.name}")

    # -- scheme hooks ------------------------------------------------------
    def _acquire(self, lock_id: int, mode: LockMode):
        raise NotImplementedError
        yield  # pragma: no cover

    def _release(self, lock_id: int):
        raise NotImplementedError
        yield  # pragma: no cover

    # -- protocol messaging ----------------------------------------------
    def _peer_send(self, token: int, body: dict) -> None:
        """Send a protocol message to another client by token."""
        peer = self.manager.clients.get(token)
        if peer is None:
            raise LockError(f"unknown peer token {token}")
        self.node.nic.send(peer.node.id, payload=body, size=32,
                           tag=peer._tag)

    def _queue(self, lock_id: int, kind: str) -> Store:
        q = self._queues.get((lock_id, kind))
        if q is None:
            q = Store(self.env)
            self._queues[(lock_id, kind)] = q
        return q

    def _dispatch(self):
        while True:
            msg = yield self.node.nic.recv(tag=self._tag)
            # completion-queue poll + handler cost
            yield self.node.cpu.run(CLIENT_POLL_US, name="dlm-poll")
            body = msg.payload
            if not self._accept_msg(body):
                continue
            self._queue(body["lock"], body["t"]).try_put(body)

    def _accept_msg(self, body: dict) -> bool:
        """Filter hook (e.g. duplicate suppression); True = enqueue."""
        return True

    def _wait(self, lock_id: int, kind: str):
        """Generator: wait for the next protocol message of ``kind``."""
        body = yield self._queue(lock_id, kind).get()
        return body

    def _wait_lease(self, lock_id: int, kind: str, lease_us: float):
        """Like :meth:`_wait` but gives up after ``lease_us``.

        Returns the message body, or ``None`` on lease expiry.  The
        abandoned getter is withdrawn from the queue so it cannot steal
        a message from a later wait.
        """
        q = self._queue(lock_id, kind)
        get = q.get()
        yield AnyOf(self.env, [get, self.env.timeout(lease_us)])
        if get.triggered:
            return get._value
        q.cancel_get(get)
        return None

    def _obs_enqueue(self, lock_id: int, mode: LockMode,
                     prev: int = 0, ep: int = 0, **extra) -> None:
        """Trace the instant this requester landed in the wait queue.

        ``prev`` is the predecessor read atomically out of the lock
        word (the old tail), so the emitted chain reflects the true
        landing order at the home even when completions arrive at the
        requesters out of order.  ``extra`` fields (e.g. the ALock
        cohort) ride along on the event.
        """
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("lock.enqueue", node=self.node.id,
                           mgr=self.manager.obs_name, lock=lock_id,
                           token=self.token, mode=mode.name,
                           prev=prev, ep=ep, **extra)

    # -- ledger shims ----------------------------------------------------
    def _granted(self, lock_id: int, mode: LockMode,
                 ep: Optional[int] = None, **extra) -> None:
        self.manager._ledger_grant(lock_id, self.token, mode, ep=ep,
                                   **extra)

    def _released(self, lock_id: int) -> LockMode:
        return self.manager._ledger_release(lock_id, self.token)
