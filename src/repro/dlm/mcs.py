"""RDMA-MCS queue lock (arena design #4).

The classic MCS lock mapped onto one-sided verbs, after *Using RDMA for
Lock Management*: the home holds one 64-bit tail word per lock
(``pack_ft`` layout: epoch | tail token | unused), and every client
keeps a per-lock *queue node* in its own registered memory — a next
slot its successor writes into, and a grant slot its predecessor writes
into.

Acquire is a single CAS swapping the tail to the requester's token.  A
nonzero old tail is the predecessor: the requester RDMA-writes its own
token into the predecessor's next slot and then spins on its local
grant slot (modelled as a zero-network-cost signal at the writer's
completion instant).  Release writes the grant word into the
successor's queue node; with no known successor it CASes the tail from
its own token back to zero, and only if that fails (a successor swapped
the tail but its next-write is still in flight) does it wait for the
next-pointer to surface.

Queue-member crashes are handled by the shared epoch-fencing base
(:mod:`repro.dlm.ft`): the reaper wipes the tail word under a bumped
epoch whenever a queue member dies (dead holder, dead active waiter, or
an orphaned tail), every queued message and grant slot carries the
epoch of its tenure, and survivors whose epoch has moved re-run the
whole CAS-enqueue under the new epoch.

SHARED mode is serialized through the same queue (like DQNL): MCS has
no reader counting, so readers simply take turns.  Use N-CoSED when
shared-cascade throughput matters.
"""

from __future__ import annotations

from typing import Dict

from repro.net.node import Node

from repro.dlm.base import CLIENT_POLL_US, LockMode
from repro.dlm.ft import EpochFencedClient, EpochFencedManager
from repro.dlm.ncosed import _Stale, pack_ft, unpack_ft

__all__ = ["MCSManager", "MCSClient"]


class MCSManager(EpochFencedManager):
    """Home state: one tail word per lock, sharded over the members."""

    SCHEME = "mcs"

    def _setup_homes(self) -> None:
        self._words: Dict[int, object] = {}
        for node in self.members:
            self._words[node.id] = node.memory.register(
                8 * self.n_locks, name=f"mcs-tails@{node.name}")

    def word(self, lock_id: int):
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return home.id, region.addr + 8 * lock_id, region.rkey

    def raw_word(self, lock_id: int) -> int:
        """Direct (zero-time) view of the tail word, for tests."""
        home = self.home_node(lock_id)
        return self._words[home.id].read_u64(8 * lock_id)

    def client(self, node: Node) -> "MCSClient":
        return MCSClient(self, node)

    # -- epoch-fencing hooks ----------------------------------------------
    def _ft_tails(self, lock_id: int):
        return (unpack_ft(self.raw_word(lock_id))[1],)

    def _ft_wipe(self, lock_id: int, new_ep: int) -> None:
        home = self.home_node(lock_id)
        self._words[home.id].write_u64(8 * lock_id,
                                       pack_ft(new_ep, 0, 0))


class MCSClient(EpochFencedClient):
    """Client with a per-lock queue node in registered memory."""

    #: queue-node layout: 16 bytes per lock — next slot, grant slot
    _QN_STRIDE = 16

    def __init__(self, manager: MCSManager, node: Node):
        super().__init__(manager, node)
        self._qnode = node.memory.register(
            self._QN_STRIDE * manager.n_locks,
            name=f"mcs-qnode@{node.name}.{self.token}")

    def _qn_next(self, lock_id: int) -> int:
        return self._QN_STRIDE * lock_id

    def _qn_grant(self, lock_id: int) -> int:
        return self._QN_STRIDE * lock_id + 8

    # -- acquire ----------------------------------------------------------
    def _attempt_acquire(self, lock_id: int, mode: LockMode):
        mgr = self.manager
        home, addr, rkey = mgr.word(lock_id)
        nic = self.node.nic
        # fresh attempt: scrub the queue node (local, zero time)
        self._qnode.write_u64(self._qn_next(lock_id), 0)
        self._qnode.write_u64(self._qn_grant(lock_id), 0)
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            ep, tail, _ = unpack_ft(int.from_bytes(raw, "big"))
            if tail == self.token:
                # residue of an aborted attempt; the reaper clears it
                raise _Stale(f"own stale tail on lock {lock_id}")
            word = pack_ft(ep, tail, 0)
            old = yield nic.cas(home, addr, rkey, word,
                                pack_ft(ep, self.token, 0))
            if old != word:
                continue  # lost the race (or raced a reclaim): re-read
            break
        self._obs_enqueue(lock_id, mode, prev=tail, ep=ep)
        if tail == 0:
            if mgr.ft and mgr.lock_epoch(lock_id) != ep:
                raise _Stale("reclaimed at MCS grant instant")
            return ep, {}
        # link behind the predecessor: write our token into its next
        # slot, then spin on our own grant slot
        pred = mgr.clients.get(tail)
        if pred is None:
            raise _Stale(f"predecessor token {tail} unknown")
        yield nic.rdma_write(pred.node.id,
                             pred._qnode.addr + pred._qn_next(lock_id),
                             pred._qnode.rkey,
                             self.token.to_bytes(8, "big"))
        self._signal(pred, lock_id, "mnext",
                     {"frm": self.token, "ep": ep})
        yield from self._wait_msg(lock_id, "mgrant", ep)
        # spin-exit: notice the grant word in our own cache line
        yield self.node.cpu.run(CLIENT_POLL_US, name="mcs-spin")
        if mgr.ft and mgr.lock_epoch(lock_id) != ep:
            raise _Stale("reclaimed at MCS hand-off instant")
        return ep, {}

    # -- release ----------------------------------------------------------
    def _attempt_release(self, lock_id: int, ep: int):
        mgr = self.manager
        home, addr, rkey = mgr.word(lock_id)
        nic = self.node.nic
        succs = self._drain_msgs(lock_id, "mnext", ep)
        succ = succs[0]["frm"] if succs else None
        if succ is None:
            # no known successor: try to close the queue
            word = pack_ft(ep, self.token, 0)
            old = yield nic.cas(home, addr, rkey, word,
                                pack_ft(ep, 0, 0))
            if old == word:
                return  # queue closed
            if unpack_ft(old)[0] != ep:
                return  # reclaimed under us: nothing to hand off
            # a successor swapped the tail; its next-write is in flight
            try:
                body = yield from self._wait_msg(lock_id, "mnext", ep)
            except _Stale:
                return  # reclaimed while waiting: successors restart
            succ = body["frm"]
        peer = mgr.clients.get(succ)
        if peer is None:
            raise _Stale(f"successor token {succ} unknown")
        # hand off: grant word into the successor's queue node
        yield nic.rdma_write(peer.node.id,
                             peer._qnode.addr + peer._qn_grant(lock_id),
                             peer._qnode.rkey,
                             pack_ft(ep, self.token, 1).to_bytes(8, "big"))
        self._signal(peer, lock_id, "mgrant",
                     {"frm": self.token, "ep": ep})
