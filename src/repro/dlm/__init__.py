"""Distributed lock managers (paper §4.2, ref [14]).

Three schemes over the same interface:

* :class:`SRSLManager` — traditional **S**\\ end/**R**\\ eceive-based
  **S**\\ erver **L**\\ ocking: a lock-server process on each lock's home
  node services two-sided requests, so every operation pays message +
  server-CPU costs (and inflates under load).
* :class:`DQNLManager` — **D**\\ istributed **Q**\\ ueue **N**\\ on-shared
  **L**\\ ocking (Devulapalli & Wyckoff, ref [10]): one-sided CAS builds a
  distributed MCS-style queue, but *every* lock is exclusive — shared
  requests serialize.
* :class:`NCoSEDManager` — the paper's **N**\\ etwork-based
  **Co**\\ mbined **S**\\ hared/**E**\\ xclusive **D**\\ istributed locking:
  the 64-bit lock word packs (exclusive-tail, shared-count); exclusive
  requests use CAS, shared requests use fetch-and-add, so concurrent
  shared locks are granted without serialization.

Two arena designs from the follow-on literature (see PAPERS.md) round
out the lock tournament, both lease/epoch-fenced like N-CoSED:

* :class:`MCSManager` — RDMA-MCS: per-client queue node in registered
  memory, tail swap via CAS, next-pointer write for hand-off, with
  crash-of-queue-member recovery via epoch fencing.
* :class:`ALockManager` — asymmetric cohort lock: cheap local-cohort
  pass-off up to a budget, Peterson-style tournament word on cohort
  handover so neither cohort starves.

All managers expose ``client(node)`` returning a
:class:`~repro.dlm.base.LockClient` with ``acquire(lock_id, mode)`` /
``release(lock_id)`` returning simulation events.
"""

from repro.dlm.alock import ALockManager
from repro.dlm.base import LockClient, LockManagerBase, LockMode
from repro.dlm.bench import cascade_latency, uncontended_latency
from repro.dlm.dqnl import DQNLManager
from repro.dlm.mcs import MCSManager
from repro.dlm.ncosed import NCoSEDManager
from repro.dlm.srsl import SRSLManager

__all__ = [
    "ALockManager",
    "DQNLManager",
    "LockClient",
    "LockManagerBase",
    "LockMode",
    "MCSManager",
    "NCoSEDManager",
    "SRSLManager",
    "cascade_latency",
    "uncontended_latency",
]
