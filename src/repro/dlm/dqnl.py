"""DQNL — Distributed Queue based Non-shared Locking (ref [10]).

One-sided locking with a single 64-bit word per lock on the home node
holding the *tail token* of a distributed MCS-style queue (0 = free).

* acquire: CAS the word from its current value to our token.  If the old
  value was 0 we hold the lock; otherwise we notify the previous tail
  that we are its successor and wait for its hand-off message.
* release: if a successor has announced itself, hand the lock straight
  to it (peer-to-peer, the home node is not involved); otherwise CAS the
  word from our token back to 0 (and if that fails, a successor is in
  flight — wait for its announcement and hand off).

Limitation reproduced faithfully from the original scheme: there is no
shared mode — ``LockMode.SHARED`` requests are serialized exactly like
exclusive ones, which is why shared-cascade latency is linear in the
number of waiters (paper Fig. 5a).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import LockError
from repro.net.memory import MemoryRegion
from repro.net.node import Node

from repro.dlm.base import LockClient, LockManagerBase, LockMode

__all__ = ["DQNLManager", "DQNLClient"]


class DQNLManager(LockManagerBase):
    SCHEME = "dqnl"

    def _setup_homes(self) -> None:
        self._words: Dict[int, MemoryRegion] = {}
        per_home: Dict[int, int] = {}
        for lock_id in range(self.n_locks):
            per_home[self.home_node(lock_id).id] = 0
        for node in self.members:
            region = node.memory.register(8 * self.n_locks,
                                          name=f"dqnl-words@{node.name}")
            self._words[node.id] = region

    def word(self, lock_id: int):
        """(node_id, addr, rkey) of the lock's tail word."""
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return home.id, region.addr + 8 * lock_id, region.rkey

    def client(self, node: Node) -> "DQNLClient":
        return DQNLClient(self, node)


class DQNLClient(LockClient):
    def __init__(self, manager: DQNLManager, node: Node):
        super().__init__(manager, node)
        #: lock -> successor token that announced itself
        self._successors: Dict[int, Optional[int]] = {}
        #: locks we currently hold
        self._held: Dict[int, LockMode] = {}

    def _acquire(self, lock_id: int, mode: LockMode):
        if lock_id in self._held:
            raise LockError(f"client {self.token} already holds {lock_id}")
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        expected = 0
        while True:
            old = yield nic.cas(home, addr, rkey, expected, self.token)
            if old == expected:
                break
            # CAS failed: retry against the value we just observed (this
            # also covers the word having gone back to 0 underneath us)
            expected = old
        self._obs_enqueue(lock_id, mode, prev=expected)
        if expected != 0:
            # enqueued behind the previous tail: announce, await hand-off
            self._peer_send(expected, {"t": "succ", "lock": lock_id,
                                       "frm": self.token})
            yield from self._wait(lock_id, "grant")
        self._held[lock_id] = mode
        self._granted(lock_id, mode)
        return None

    def _release(self, lock_id: int):
        if lock_id not in self._held:
            raise LockError(f"client {self.token} does not hold {lock_id}")
        del self._held[lock_id]
        self._released(lock_id)
        succ = self._take_successor(lock_id)
        if succ is not None:
            self._peer_send(succ, {"t": "grant", "lock": lock_id})
            return
            yield  # pragma: no cover
        home, addr, rkey = self.manager.word(lock_id)
        old = yield self.node.nic.cas(home, addr, rkey, self.token, 0)
        if old != self.token:
            # a successor swapped itself in concurrently; its announcement
            # is in flight — wait for it, then hand off
            body = yield from self._wait(lock_id, "succ")
            self._peer_send(body["frm"], {"t": "grant", "lock": lock_id})
        return None

    def _take_successor(self, lock_id: int) -> Optional[int]:
        """Non-blocking check whether a successor already announced."""
        ok, body = self._queue(lock_id, "succ").try_get()
        return body["frm"] if ok else None
