"""N-CoSED — Network-based Combined Shared/Exclusive Distributed locking.

The paper's scheme (§4.2, Fig. 4; details in ref [14]).  Every lock is a
64-bit word on its home node::

    bits 63..32   token of the tail of the exclusive-requester queue
                  (0 = no exclusive pending/holding)
    bits 31..0    number of shared requests since the last exclusive
                  enqueue (with no exclusive pending: the count of
                  current shared holders)

* **Exclusive acquire** — CAS the whole word to ``(me, 0)``.  Old value
  ``(0, 0)``: granted outright.  Old ``(t, s)``: we are enqueued; notify
  ``t`` (carrying ``s`` so it knows how many shared grants precede us)
  and wait for its hand-off plus ``s`` shared-release notifications.
  Old ``(0, s)``: no predecessor — just wait for ``s`` current shared
  holders to drain.
* **Shared acquire** — fetch-and-add +1.  If the returned word has no
  exclusive tail the lock is held immediately — *this* is what makes
  shared cascades O(1) instead of O(n).  Otherwise register with the
  tail and wait for its grant.
* **Release** — exclusive: grant all shared requests registered during
  the tenure at once (posted back-to-back), then hand off to the
  exclusive successor; or CAS the word free.  Shared: decrement the
  count with CAS if no exclusive is pending, else notify the pending
  exclusive.

Shared-release notifications that reach an exclusive requester which is
still waiting on a *predecessor* are forwarded up the chain: they belong
to an earlier tenure by construction (a requester is granted only after
every notification it is owed has arrived).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import LockError
from repro.net.memory import MemoryRegion
from repro.net.node import Node

from repro.dlm.base import LockClient, LockManagerBase, LockMode

__all__ = ["NCoSEDManager", "NCoSEDClient"]

_LOW32 = 0xFFFFFFFF


def pack(tail: int, count: int) -> int:
    if tail < 0 or tail > _LOW32 or count < 0 or count > _LOW32:
        raise LockError(f"word fields out of range: tail={tail} n={count}")
    return (tail << 32) | count


def unpack(word: int):
    return (word >> 32) & _LOW32, word & _LOW32


class NCoSEDManager(LockManagerBase):
    SCHEME = "ncosed"

    def _setup_homes(self) -> None:
        self._words: Dict[int, MemoryRegion] = {}
        for node in self.members:
            self._words[node.id] = node.memory.register(
                8 * self.n_locks, name=f"ncosed-words@{node.name}")

    def word(self, lock_id: int):
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return home.id, region.addr + 8 * lock_id, region.rkey

    def raw_word(self, lock_id: int) -> int:
        """Direct (zero-time) view of the lock word, for tests."""
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return region.read_u64(8 * lock_id)

    def client(self, node: Node) -> "NCoSEDClient":
        return NCoSEDClient(self, node)


class _Tenure:
    """Exclusive-tenure bookkeeping on one lock."""

    __slots__ = ("registered", "xenq")

    def __init__(self):
        self.registered: List[int] = []   # senq senders (shared waiters)
        self.xenq: Optional[dict] = None  # successor announcement


class NCoSEDClient(LockClient):
    def __init__(self, manager: NCoSEDManager, node: Node):
        super().__init__(manager, node)
        self._held: Dict[int, LockMode] = {}
        self._tenures: Dict[int, _Tenure] = {}

    # ------------------------------------------------------------------
    # acquire
    # ------------------------------------------------------------------
    def _acquire(self, lock_id: int, mode: LockMode):
        if lock_id in self._held:
            raise LockError(f"client {self.token} already holds {lock_id}")
        if mode is LockMode.SHARED:
            yield from self._acquire_shared(lock_id)
        else:
            yield from self._acquire_exclusive(lock_id)
        self._held[lock_id] = mode
        self._granted(lock_id, mode)
        return None

    def _acquire_shared(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        old = yield self.node.nic.faa(home, addr, rkey, 1)
        tail, _count = unpack(old)
        if tail == 0:
            return  # granted immediately, concurrently with other shareds
        # an exclusive is pending/holding: register with the tail and wait
        self._peer_send(tail, {"t": "nc", "kind": "senq",
                               "lock": lock_id, "frm": self.token})
        while True:
            body = yield from self._wait(lock_id, "nc")
            if body["kind"] == "sgrant":
                return
            # anything else on a shared wait is a protocol violation
            raise LockError(f"shared waiter got {body['kind']}")

    def _acquire_exclusive(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        tenure = _Tenure()
        while True:
            old = yield nic.cas(home, addr, rkey, 0, pack(self.token, 0))
            if old == 0:
                self._tenures[lock_id] = tenure
                return  # free word: granted
            tail, count = unpack(old)
            old2 = yield nic.cas(home, addr, rkey, old,
                                 pack(self.token, 0))
            if old2 != old:
                continue  # lost the race; retry with fresh value
            # enqueued: we are the new tail; shared requests from now on
            # register with us, so open the tenure before waiting
            self._tenures[lock_id] = tenure
            pred = tail if tail != 0 else None
            if pred is not None:
                self._peer_send(pred, {"t": "nc", "kind": "xenq",
                                       "lock": lock_id, "frm": self.token,
                                       "scount": count})
            yield from self._await_grant(lock_id, tenure, pred, count)
            return

    def _await_grant(self, lock_id: int, tenure: _Tenure,
                     pred: Optional[int], srel_needed: int):
        """Wait for hand-off from ``pred`` plus ``srel_needed`` drains."""
        need_xgrant = pred is not None
        srel_got = 0
        while need_xgrant or srel_got < srel_needed:
            body = yield from self._wait(lock_id, "nc")
            kind = body["kind"]
            if kind == "xgrant":
                need_xgrant = False
            elif kind == "srel":
                if need_xgrant:
                    # belongs to an earlier tenure: forward up the chain
                    self._peer_send(pred, dict(body))
                else:
                    srel_got += 1
            elif kind == "senq":
                tenure.registered.append(body["frm"])
            elif kind == "xenq":
                tenure.xenq = body
            else:  # pragma: no cover - defensive
                raise LockError(f"unexpected message {kind!r}")

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def _release(self, lock_id: int):
        mode = self._held.pop(lock_id, None)
        if mode is None:
            raise LockError(f"client {self.token} does not hold {lock_id}")
        self._released(lock_id)
        if mode is LockMode.SHARED:
            yield from self._release_shared(lock_id)
        else:
            yield from self._release_exclusive(lock_id)
        return None

    def _release_shared(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            word = int.from_bytes(raw, "big")
            tail, count = unpack(word)
            if tail != 0:
                # an exclusive is pending: it (or its chain head) absorbs
                # our drain notification
                self._peer_send(tail, {"t": "nc", "kind": "srel",
                                       "lock": lock_id, "frm": self.token})
                return
            if count == 0:  # pragma: no cover - accounting bug guard
                raise LockError("shared release with zero count")
            old = yield nic.cas(home, addr, rkey, word,
                                pack(0, count - 1))
            if old == word:
                return

    def _release_exclusive(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        tenure = self._tenures.pop(lock_id)
        self._drain_pending(lock_id, tenure)
        if tenure.xenq is None:
            # Fast path: guess the word from local bookkeeping and CAS it
            # in one round trip.  The guess is exact unless a shared FAA
            # or exclusive CAS is in flight, in which case we fall back.
            n_reg = len(tenure.registered)
            guess = pack(self.token, n_reg)
            old = yield nic.cas(home, addr, rkey, guess, pack(0, n_reg))
            if old == guess:
                for waiter in tenure.registered:
                    self._peer_send(waiter, {"t": "nc", "kind": "sgrant",
                                             "lock": lock_id})
                return
            # no successor yet: retire via the word the slow way
            while tenure.xenq is None:
                raw = yield nic.rdma_read(home, addr, rkey, 8)
                word = int.from_bytes(raw, "big")
                tail, count = unpack(word)
                if tail != self.token:
                    # a successor swapped itself in: await its xenq
                    yield from self._collect_until(lock_id, tenure, "xenq")
                    break
                while len(tenure.registered) < count and tenure.xenq is None:
                    yield from self._collect_until(lock_id, tenure, None)
                if tenure.xenq is not None:
                    break
                old = yield nic.cas(home, addr, rkey, word, pack(0, count))
                if old != word:
                    continue  # word moved under us; reassess
                # lock is no longer exclusively owned: grant every shared
                # waiter registered during our tenure in one volley
                for waiter in tenure.registered:
                    self._peer_send(waiter, {"t": "nc", "kind": "sgrant",
                                             "lock": lock_id})
                return
        # hand off to the exclusive successor: first grant the shared
        # requests that arrived before the successor enqueued
        succ = tenure.xenq["frm"]
        s_mine = tenure.xenq["scount"]
        while len(tenure.registered) < s_mine:
            yield from self._collect_until(lock_id, tenure, "senq")
        if len(tenure.registered) != s_mine:  # pragma: no cover - guard
            raise LockError("registered shared waiters exceed snapshot")
        for waiter in tenure.registered:
            self._peer_send(waiter, {"t": "nc", "kind": "sgrant",
                                     "lock": lock_id})
        self._peer_send(succ, {"t": "nc", "kind": "xgrant",
                               "lock": lock_id})
        return

    # -- helpers -----------------------------------------------------------
    def _drain_pending(self, lock_id: int, tenure: _Tenure) -> None:
        """Absorb protocol messages that arrived while we were holding."""
        q = self._queue(lock_id, "nc")
        while True:
            ok, body = q.try_get()
            if not ok:
                return
            self._classify(tenure, body)

    def _collect_until(self, lock_id: int, tenure: _Tenure,
                       kind: Optional[str]):
        """Blocking-consume one message (of ``kind`` if given)."""
        body = yield from self._wait(lock_id, "nc")
        self._classify(tenure, body)
        if kind is not None and body["kind"] != kind:
            yield from self._collect_until(lock_id, tenure, kind)

    def _classify(self, tenure: _Tenure, body: dict) -> None:
        kind = body["kind"]
        if kind == "senq":
            tenure.registered.append(body["frm"])
        elif kind == "xenq":
            if tenure.xenq is not None:  # pragma: no cover - guard
                raise LockError("two exclusive successors announced")
            tenure.xenq = body
        else:  # pragma: no cover - defensive
            raise LockError(f"unexpected message {kind!r} while holding")
