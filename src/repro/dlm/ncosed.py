"""N-CoSED — Network-based Combined Shared/Exclusive Distributed locking.

The paper's scheme (§4.2, Fig. 4; details in ref [14]).  Every lock is a
64-bit word on its home node::

    bits 63..32   token of the tail of the exclusive-requester queue
                  (0 = no exclusive pending/holding)
    bits 31..0    number of shared requests since the last exclusive
                  enqueue (with no exclusive pending: the count of
                  current shared holders)

* **Exclusive acquire** — CAS the whole word to ``(me, 0)``.  Old value
  ``(0, 0)``: granted outright.  Old ``(t, s)``: we are enqueued; notify
  ``t`` (carrying ``s`` so it knows how many shared grants precede us)
  and wait for its hand-off plus ``s`` shared-release notifications.
  Old ``(0, s)``: no predecessor — just wait for ``s`` current shared
  holders to drain.
* **Shared acquire** — fetch-and-add +1.  If the returned word has no
  exclusive tail the lock is held immediately — *this* is what makes
  shared cascades O(1) instead of O(n).  Otherwise register with the
  tail and wait for its grant.
* **Release** — exclusive: grant all shared requests registered during
  the tenure at once (posted back-to-back), then hand off to the
  exclusive successor; or CAS the word free.  Shared: decrement the
  count with CAS if no exclusive is pending, else notify the pending
  exclusive.

Shared-release notifications that reach an exclusive requester which is
still waiting on a *predecessor* are forwarded up the chain: they belong
to an earlier tenure by construction (a requester is granted only after
every notification it is owed has arrived).

Fault-tolerant mode
-------------------

Constructing the manager with ``lease_us`` switches on lease-based
recovery (everything below is inert otherwise, and the wire protocol is
byte-identical to the original):

* The word is re-packed as ``epoch:16 | tail:24 | count:24``.  Every
  CAS embeds the epoch it read, so an acquire racing a reclaim simply
  loses the CAS; every FAA *returns* the epoch at execution instant, so
  a shared requester detects that its increment landed on (or was wiped
  with) a stale generation.
* A manager-wide **reaper** scans the lock table every lease period.
  When a lock's tail, a granted holder, or a client with an in-flight
  protocol operation sits on a crashed node — or the tail token belongs
  to nobody with business on the lock (residue of an aborted attempt) —
  the word is wiped to ``(epoch+1, 0, 0)`` at a single instant and all
  current grants are revoked Chubby-style: the ledger entries end at
  the reclaim, and a surviving holder discovers the revocation when it
  releases (the epoch no longer matches).  The wipe is home-local, so
  remote atomics land strictly before or after it, never astride.
* Waiters never block forever: every wait is bounded by the lease, on
  expiry the waiter re-reads the word and restarts its attempt if the
  epoch moved.  Protocol messages carry the epoch of the tenure they
  belong to; stale ones are discarded.  Peer messages are re-sent a
  bounded number of times on injected drops (RC-style reliability) and
  de-duplicated by a per-message uid at the receiver.
* ``acquire`` retries a bounded number of attempts with backoff and
  raises :class:`LockError` when the budget is exhausted — it either
  completes or fails, it never hangs.

The epoch doubles as a fencing token: an application that tags its
writes with the grant epoch can have stale holders rejected downstream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import FaultError, LockError, RdmaError
from repro.net.memory import MemoryRegion
from repro.net.node import Node

from repro.dlm.base import LockClient, LockManagerBase, LockMode

__all__ = ["NCoSEDManager", "NCoSEDClient", "pack", "unpack",
           "pack_ft", "unpack_ft"]

_LOW32 = 0xFFFFFFFF

#: fault-tolerant word layout: epoch:16 | tail:24 | count:24
_EP_MASK = 0xFFFF
_F24 = 0xFFFFFF

#: receiver-side dedup window for reliably re-sent protocol messages
_UID_WINDOW = 512


def pack(tail: int, count: int) -> int:
    if tail < 0 or tail > _LOW32 or count < 0 or count > _LOW32:
        raise LockError(f"word fields out of range: tail={tail} n={count}")
    return (tail << 32) | count


def unpack(word: int):
    return (word >> 32) & _LOW32, word & _LOW32


def pack_ft(epoch: int, tail: int, count: int) -> int:
    if tail < 0 or tail > _F24 or count < 0 or count > _F24:
        raise LockError(f"word fields out of range: tail={tail} n={count}")
    return ((epoch & _EP_MASK) << 48) | (tail << 24) | count


def unpack_ft(word: int):
    return (word >> 48) & _EP_MASK, (word >> 24) & _F24, word & _F24


class _Stale(Exception):
    """Internal: the attempt raced a reclaim; restart from scratch."""


class NCoSEDManager(LockManagerBase):
    """N-CoSED home state; pass ``lease_us`` for fault-tolerant mode.

    Parameters (fault-tolerant mode only)
    -------------------------------------
    lease_us:
        Wait bound: every blocking protocol wait re-validates the lock
        word at this period.  Also the default reaper scan period.
    detector:
        Failure oracle with ``is_dead(node_id)`` (e.g. a
        :class:`repro.monitor.heartbeat.HeartbeatDetector`); defaults
        to the cluster's installed fault injector's ground truth.
    reap_every_us / max_attempts / attempt_backoff_us:
        Reaper period, acquire retry budget, and backoff between
        attempts.
    send_attempts / resend_us:
        Bounded re-send of peer protocol messages on injected drops.
    """

    SCHEME = "ncosed"

    def __init__(self, cluster, n_locks: int = 64,
                 member_nodes=None, *,
                 lease_us: Optional[float] = None,
                 detector=None,
                 reap_every_us: Optional[float] = None,
                 max_attempts: int = 12,
                 attempt_backoff_us: Optional[float] = None,
                 send_attempts: int = 6,
                 resend_us: Optional[float] = None):
        self.ft = lease_us is not None
        if self.ft and lease_us <= 0:
            raise LockError("lease_us must be positive")
        if max_attempts < 1:
            raise LockError("max_attempts must be >= 1")
        self.lease_us = lease_us
        self.detector = detector
        self.max_attempts = max_attempts
        if self.ft:
            self.reap_every_us = reap_every_us or lease_us
            self.attempt_backoff_us = (attempt_backoff_us
                                       if attempt_backoff_us is not None
                                       else lease_us / 2)
            self.resend_us = (resend_us if resend_us is not None
                              else lease_us / 4)
        else:
            self.reap_every_us = reap_every_us
            self.attempt_backoff_us = attempt_backoff_us
            self.resend_us = resend_us
        self.send_attempts = send_attempts
        #: lock -> current epoch (mirrored in the word's top 16 bits)
        self._epochs: Dict[int, int] = {}
        #: lock -> tokens with an in-flight acquire/release on it; this
        #: models the per-lock lease records clients write next to their
        #: atomics, and is what separates a live waiter from residue
        self._active: Dict[int, Set[int]] = {}
        #: (lock, token) -> grant epoch revoked by a reclaim
        self._revoked: Dict[Tuple[int, int], int] = {}
        #: lock -> tokens whose protocol obligation could not complete
        #: (failed release, undeliverable hand-off): the word or chain
        #: state is suspect and the reaper must reclaim
        self._suspect: Dict[int, Set[int]] = {}
        #: (time, lock, new_epoch) for every reclaim, for tests
        self.reclaims: List[Tuple[float, int, int]] = []
        #: lock -> node id hosting the word after a failover rehome
        self._home_override: Dict[int, int] = {}
        #: (time, lock, old_home, new_home) for every rehome
        self.rehomes: List[Tuple[float, int, int, int]] = []
        super().__init__(cluster, n_locks=n_locks,
                         member_nodes=member_nodes)
        if self.ft:
            self.env.process(self._reap_proc(), name="ncosed-reaper")
            if detector is not None and hasattr(detector, "subscribe"):
                # a transition-reporting detector drives lock-home
                # failover; a bare oracle only gates the reaper
                detector.subscribe(self._on_detector)

    def _setup_homes(self) -> None:
        self._words: Dict[int, MemoryRegion] = {}
        for node in self.members:
            self._words[node.id] = node.memory.register(
                8 * self.n_locks, name=f"ncosed-words@{node.name}")

    def home_node(self, lock_id: int) -> Node:
        override = self._home_override.get(lock_id)
        if override is not None:
            self._check_lock(lock_id)
            return next(n for n in self.members if n.id == override)
        return super().home_node(lock_id)

    def word(self, lock_id: int):
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return home.id, region.addr + 8 * lock_id, region.rkey

    def raw_word(self, lock_id: int) -> int:
        """Direct (zero-time) view of the lock word, for tests."""
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return region.read_u64(8 * lock_id)

    def client(self, node: Node) -> "NCoSEDClient":
        return NCoSEDClient(self, node)

    # ------------------------------------------------------------------
    # fault-tolerant mode: epochs, lease records, reaper
    # ------------------------------------------------------------------
    def lock_epoch(self, lock_id: int) -> int:
        return self._epochs.get(lock_id, 0)

    def _note_active(self, lock_id: int, token: int) -> None:
        self._active.setdefault(lock_id, set()).add(token)

    def _unnote_active(self, lock_id: int, token: int) -> None:
        tokens = self._active.get(lock_id)
        if tokens is not None:
            tokens.discard(token)

    def _consume_revoked(self, lock_id: int, token: int, ep: int) -> bool:
        if self._revoked.get((lock_id, token)) == ep:
            del self._revoked[(lock_id, token)]
            return True
        return False

    def _node_dead(self, node_id: int) -> bool:
        if self.detector is not None:
            return self.detector.is_dead(node_id)
        injector = self.cluster.fabric.injector
        return injector is not None and node_id in injector.down

    def _token_dead(self, token: int) -> bool:
        client = self.clients.get(token)
        return client is not None and self._node_dead(client.node.id)

    def _flag_suspect(self, lock_id: int, token: int) -> None:
        self._suspect.setdefault(lock_id, set()).add(token)

    def _reap_proc(self):
        while True:
            yield self.env.timeout(self.reap_every_us)
            for lock_id in range(self.n_locks):
                if self._should_reclaim(lock_id):
                    self._reclaim(lock_id)

    def _should_reclaim(self, lock_id: int) -> bool:
        if not getattr(self.detector, "has_quorum", True):
            # minority-partition view: freezing the reaper here is what
            # keeps a split brain from revoking the majority's grants
            return False
        if self._node_dead(self.home_node(lock_id).id):
            return False  # word unreachable; rehome or restart first
        if self._suspect.get(lock_id):
            return True  # a release/hand-off failed: chain state suspect
        holders = self.holders.get(lock_id, ())
        active = self._active.get(lock_id, ())
        if any(self._token_dead(tok) for tok, _mode in holders):
            return True
        if any(self._token_dead(tok) for tok in active):
            return True
        _ep, tail, _count = unpack_ft(self.raw_word(lock_id))
        if tail and tail not in active and not any(
                tok == tail for tok, _mode in holders):
            return True  # orphaned tail: residue of an aborted attempt
        return False

    def _reclaim(self, lock_id: int) -> None:
        """Wipe the word at one instant and revoke every current grant.

        Home-local, zero simulated time: any in-flight remote atomic
        lands strictly before or after the wipe.  Post-wipe landings
        are rejected by their epoch guard (CAS) or detected by the
        epoch in the returned word (FAA).
        """
        old_ep = self._epochs.get(lock_id, 0)
        new_ep = (old_ep + 1) & _EP_MASK
        self._epochs[lock_id] = new_ep
        home = self.home_node(lock_id)
        self._words[home.id].write_u64(8 * lock_id, pack_ft(new_ep, 0, 0))
        obs = self.env.obs
        if obs is not None:
            # emitted before the revokes so the sanitizer advances its
            # authoritative epoch first, then validates each revocation
            obs.trace.emit("lock.reclaim", node=home.id,
                           mgr=self.obs_name, lock=lock_id,
                           old_ep=old_ep, new_ep=new_ep)
            obs.metrics.counter("dlm.reclaims").inc()
        for token, _mode in list(self.holders.get(lock_id, ())):
            self._ledger_expunge(lock_id, token)
            self._revoked[(lock_id, token)] = old_ep
        self._suspect.pop(lock_id, None)
        self.reclaims.append((self.env.now, lock_id, new_ep))

    # ------------------------------------------------------------------
    # failover: rehome the words of a dead member
    # ------------------------------------------------------------------
    def _on_detector(self, node_id: int, transition: str) -> None:
        """Detector transition: move every lock homed on a dead member
        to the next live member in ring order.

        Every member already hosts a full words region (``_setup_homes``
        registers one per node precisely so failover needs no new
        allocation), so rehoming is an epoch bump plus a fresh word at
        the new home; stragglers talking to the old home are fenced by
        the epoch check on their next protocol step.  Restores are
        deliberately ignored: a lock stays at its failover home until
        the next failure (moving it back would revoke live grants for
        no safety gain).
        """
        if transition != "dead":
            return
        member_ids = [n.id for n in self.members]
        if node_id not in member_ids:
            return
        # pick targets from the detector's raw reachability view: a
        # quorum gate forwards deaths one at a time, so a peer that
        # died in the same partition may not be "dead" yet — but it is
        # already unreachable and must not become the new home
        avoid = set(getattr(self.detector, "unreachable_ids", ()))
        for lock_id in range(self.n_locks):
            old_home = self.home_node(lock_id)
            if old_home.id != node_id:
                continue
            start = member_ids.index(old_home.id)
            for k in range(1, len(self.members)):
                cand = self.members[(start + k) % len(self.members)]
                if cand.id not in avoid and not self._node_dead(cand.id):
                    self._rehome(lock_id, old_home, cand)
                    break

    def _rehome(self, lock_id: int, old_home: Node,
                new_home: Node) -> None:
        """Reclaim ``lock_id`` onto ``new_home`` (epoch-fenced move)."""
        old_ep = self._epochs.get(lock_id, 0)
        new_ep = (old_ep + 1) & _EP_MASK
        self._epochs[lock_id] = new_ep
        self._home_override[lock_id] = new_home.id
        self._words[new_home.id].write_u64(
            8 * lock_id, pack_ft(new_ep, 0, 0))
        obs = self.env.obs
        if obs is not None:
            # lock.reclaim first (the sanitizer advances its epoch from
            # it), then the informational rehome marker
            obs.trace.emit("lock.reclaim", node=new_home.id,
                           mgr=self.obs_name, lock=lock_id,
                           old_ep=old_ep, new_ep=new_ep)
            obs.metrics.counter("dlm.reclaims").inc()
            obs.trace.emit("lock.rehome", node=new_home.id,
                           mgr=self.obs_name, lock=lock_id,
                           frm=old_home.id, to=new_home.id, ep=new_ep)
            obs.metrics.counter("dlm.rehomes").inc()
        for token, _mode in list(self.holders.get(lock_id, ())):
            self._ledger_expunge(lock_id, token)
            self._revoked[(lock_id, token)] = old_ep
        self._suspect.pop(lock_id, None)
        self.reclaims.append((self.env.now, lock_id, new_ep))
        self.rehomes.append((self.env.now, lock_id, old_home.id,
                             new_home.id))


class _Tenure:
    """Exclusive-tenure bookkeeping on one lock."""

    __slots__ = ("registered", "xenq", "ep")

    def __init__(self):
        self.registered: List[int] = []   # senq senders (shared waiters)
        self.xenq: Optional[dict] = None  # successor announcement
        self.ep = 0                       # epoch of the tenure (FT mode)


class NCoSEDClient(LockClient):
    def __init__(self, manager: NCoSEDManager, node: Node):
        super().__init__(manager, node)
        self._held: Dict[int, LockMode] = {}
        self._tenures: Dict[int, _Tenure] = {}
        self._grant_ep: Dict[int, int] = {}
        self._seen_uids: "OrderedDict[int, None]" = OrderedDict()

    def _obs_word(self, lock_id: int, word: int) -> None:
        """Trace a protocol step's view of the raw 64-bit lock word."""
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("lock.word", node=self.node.id,
                           mgr=self.manager.obs_name, lock=lock_id,
                           word=word, ft=self.manager.ft)

    def _accept_msg(self, body: dict) -> bool:
        uid = body.get("uid")
        if uid is None:
            return True
        if uid in self._seen_uids:
            return False  # duplicate delivery of a re-sent message
        self._seen_uids[uid] = None
        while len(self._seen_uids) > _UID_WINDOW:
            self._seen_uids.popitem(last=False)
        return True

    # ------------------------------------------------------------------
    # acquire
    # ------------------------------------------------------------------
    def _acquire(self, lock_id: int, mode: LockMode):
        if lock_id in self._held:
            raise LockError(f"client {self.token} already holds {lock_id}")
        if self.manager.ft:
            yield from self._acquire_ft(lock_id, mode)
            return None
        if mode is LockMode.SHARED:
            yield from self._acquire_shared(lock_id)
        else:
            yield from self._acquire_exclusive(lock_id)
        self._held[lock_id] = mode
        self._granted(lock_id, mode)
        return None

    def _acquire_shared(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        old = yield self.node.nic.faa(home, addr, rkey, 1)
        self._obs_word(lock_id, old)
        tail, _count = unpack(old)
        self._obs_enqueue(lock_id, LockMode.SHARED, prev=tail)
        if tail == 0:
            return  # granted immediately, concurrently with other shareds
        # an exclusive is pending/holding: register with the tail and wait
        self._peer_send(tail, {"t": "nc", "kind": "senq",
                               "lock": lock_id, "frm": self.token})
        while True:
            body = yield from self._wait(lock_id, "nc")
            if body["kind"] == "sgrant":
                return
            # anything else on a shared wait is a protocol violation
            raise LockError(f"shared waiter got {body['kind']}")

    def _acquire_exclusive(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        tenure = _Tenure()
        while True:
            old = yield nic.cas(home, addr, rkey, 0, pack(self.token, 0))
            self._obs_word(lock_id, old)
            if old == 0:
                self._tenures[lock_id] = tenure
                self._obs_enqueue(lock_id, LockMode.EXCLUSIVE, prev=0)
                return  # free word: granted
            tail, count = unpack(old)
            old2 = yield nic.cas(home, addr, rkey, old,
                                 pack(self.token, 0))
            self._obs_word(lock_id, old2)
            if old2 != old:
                continue  # lost the race; retry with fresh value
            # enqueued: we are the new tail; shared requests from now on
            # register with us, so open the tenure before waiting
            self._tenures[lock_id] = tenure
            self._obs_enqueue(lock_id, LockMode.EXCLUSIVE, prev=tail)
            pred = tail if tail != 0 else None
            if pred is not None:
                self._peer_send(pred, {"t": "nc", "kind": "xenq",
                                       "lock": lock_id, "frm": self.token,
                                       "scount": count})
            yield from self._await_grant(lock_id, tenure, pred, count)
            return

    def _await_grant(self, lock_id: int, tenure: _Tenure,
                     pred: Optional[int], srel_needed: int):
        """Wait for hand-off from ``pred`` plus ``srel_needed`` drains."""
        need_xgrant = pred is not None
        srel_got = 0
        while need_xgrant or srel_got < srel_needed:
            body = yield from self._wait(lock_id, "nc")
            kind = body["kind"]
            if kind == "xgrant":
                need_xgrant = False
            elif kind == "srel":
                if need_xgrant:
                    # belongs to an earlier tenure: forward up the chain
                    self._peer_send(pred, dict(body))
                else:
                    srel_got += 1
            elif kind == "senq":
                tenure.registered.append(body["frm"])
            elif kind == "xenq":
                tenure.xenq = body
            else:  # pragma: no cover - defensive
                raise LockError(f"unexpected message {kind!r}")

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def _release(self, lock_id: int):
        mode = self._held.pop(lock_id, None)
        if mode is None:
            raise LockError(f"client {self.token} does not hold {lock_id}")
        if self.manager.ft:
            yield from self._release_ft(lock_id, mode)
            return None
        self._released(lock_id)
        if mode is LockMode.SHARED:
            yield from self._release_shared(lock_id)
        else:
            yield from self._release_exclusive(lock_id)
        return None

    def _release_shared(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            word = int.from_bytes(raw, "big")
            self._obs_word(lock_id, word)
            tail, count = unpack(word)
            if tail != 0:
                # an exclusive is pending: it (or its chain head) absorbs
                # our drain notification
                self._peer_send(tail, {"t": "nc", "kind": "srel",
                                       "lock": lock_id, "frm": self.token})
                return
            if count == 0:  # pragma: no cover - accounting bug guard
                raise LockError("shared release with zero count")
            old = yield nic.cas(home, addr, rkey, word,
                                pack(0, count - 1))
            self._obs_word(lock_id, old)
            if old == word:
                return

    def _release_exclusive(self, lock_id: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        tenure = self._tenures.pop(lock_id)
        self._drain_pending(lock_id, tenure)
        if tenure.xenq is None:
            # Fast path: guess the word from local bookkeeping and CAS it
            # in one round trip.  The guess is exact unless a shared FAA
            # or exclusive CAS is in flight, in which case we fall back.
            n_reg = len(tenure.registered)
            guess = pack(self.token, n_reg)
            old = yield nic.cas(home, addr, rkey, guess, pack(0, n_reg))
            self._obs_word(lock_id, old)
            if old == guess:
                for waiter in tenure.registered:
                    self._peer_send(waiter, {"t": "nc", "kind": "sgrant",
                                             "lock": lock_id})
                return
            # no successor yet: retire via the word the slow way
            while tenure.xenq is None:
                raw = yield nic.rdma_read(home, addr, rkey, 8)
                word = int.from_bytes(raw, "big")
                self._obs_word(lock_id, word)
                tail, count = unpack(word)
                if tail != self.token:
                    # a successor swapped itself in: await its xenq
                    yield from self._collect_until(lock_id, tenure, "xenq")
                    break
                while len(tenure.registered) < count and tenure.xenq is None:
                    yield from self._collect_until(lock_id, tenure, None)
                if tenure.xenq is not None:
                    break
                old = yield nic.cas(home, addr, rkey, word, pack(0, count))
                self._obs_word(lock_id, old)
                if old != word:
                    continue  # word moved under us; reassess
                # lock is no longer exclusively owned: grant every shared
                # waiter registered during our tenure in one volley
                for waiter in tenure.registered:
                    self._peer_send(waiter, {"t": "nc", "kind": "sgrant",
                                             "lock": lock_id})
                return
        # hand off to the exclusive successor: first grant the shared
        # requests that arrived before the successor enqueued
        succ = tenure.xenq["frm"]
        s_mine = tenure.xenq["scount"]
        while len(tenure.registered) < s_mine:
            yield from self._collect_until(lock_id, tenure, "senq")
        if len(tenure.registered) != s_mine:  # pragma: no cover - guard
            raise LockError("registered shared waiters exceed snapshot")
        for waiter in tenure.registered:
            self._peer_send(waiter, {"t": "nc", "kind": "sgrant",
                                     "lock": lock_id})
        self._peer_send(succ, {"t": "nc", "kind": "xgrant",
                               "lock": lock_id})
        return

    # -- helpers -----------------------------------------------------------
    def _drain_pending(self, lock_id: int, tenure: _Tenure) -> None:
        """Absorb protocol messages that arrived while we were holding."""
        q = self._queue(lock_id, "nc")
        while True:
            ok, body = q.try_get()
            if not ok:
                return
            self._classify(tenure, body)

    def _collect_until(self, lock_id: int, tenure: _Tenure,
                       kind: Optional[str]):
        """Blocking-consume one message (of ``kind`` if given)."""
        body = yield from self._wait(lock_id, "nc")
        self._classify(tenure, body)
        if kind is not None and body["kind"] != kind:
            yield from self._collect_until(lock_id, tenure, kind)

    def _classify(self, tenure: _Tenure, body: dict) -> None:
        kind = body["kind"]
        if kind == "senq":
            tenure.registered.append(body["frm"])
        elif kind == "xenq":
            if tenure.xenq is not None:  # pragma: no cover - guard
                raise LockError("two exclusive successors announced")
            tenure.xenq = body
        else:  # pragma: no cover - defensive
            raise LockError(f"unexpected message {kind!r} while holding")

    # ==================================================================
    # fault-tolerant mode (active when the manager has a lease)
    # ==================================================================
    def _acquire_ft(self, lock_id: int, mode: LockMode):
        """Bounded-retry acquire: completes or raises LockError."""
        mgr = self.manager
        attempts = 0
        while True:
            attempts += 1
            mgr._note_active(lock_id, self.token)
            try:
                if mode is LockMode.SHARED:
                    ep = yield from self._acquire_shared_ft(lock_id)
                else:
                    ep = yield from self._acquire_exclusive_ft(lock_id)
                break
            except (_Stale, FaultError, RdmaError) as exc:
                self._tenures.pop(lock_id, None)
                if attempts >= mgr.max_attempts:
                    obs = self.env.obs
                    if obs is not None:
                        obs.trace.emit("lock.fail", node=self.node.id,
                                       mgr=mgr.obs_name, lock=lock_id,
                                       token=self.token,
                                       attempts=attempts)
                        obs.metrics.counter("dlm.acquire_failures").inc()
                    raise LockError(
                        f"acquire of lock {lock_id} by client {self.token} "
                        f"failed after {attempts} attempts: {exc}") from exc
            finally:
                mgr._unnote_active(lock_id, self.token)
            yield self.env.timeout(
                mgr.attempt_backoff_us * min(attempts, 8))
        # a fresh grant supersedes any stale revocation marker
        mgr._revoked.pop((lock_id, self.token), None)
        self._held[lock_id] = mode
        self._grant_ep[lock_id] = ep
        self._granted(lock_id, mode, ep=ep)

    def _acquire_shared_ft(self, lock_id: int):
        mgr = self.manager
        home, addr, rkey = mgr.word(lock_id)
        old = yield self.node.nic.faa(home, addr, rkey, 1)
        self._obs_word(lock_id, old)
        ep, tail, _count = unpack_ft(old)
        if mgr.lock_epoch(lock_id) != ep:
            # the word was reclaimed around our increment: the +1 was
            # (or will be) wiped with the old generation
            raise _Stale(f"lock {lock_id} reclaimed around shared FAA")
        self._obs_enqueue(lock_id, LockMode.SHARED, prev=tail, ep=ep)
        if tail == 0:
            return ep  # granted immediately
        self._peer_send_ft(tail, {"t": "nc", "kind": "senq",
                                  "lock": lock_id, "frm": self.token,
                                  "ep": ep})
        while True:
            body = yield from self._wait_lease(lock_id, "nc", mgr.lease_us)
            if body is None:
                yield from self._check_epoch(lock_id, ep)
                continue
            if body.get("ep") != ep:
                continue  # stale generation
            if body["kind"] == "sgrant":
                if mgr.lock_epoch(lock_id) != ep:
                    raise _Stale("reclaimed at shared grant instant")
                return ep
            raise LockError(f"shared waiter got {body['kind']}")

    def _acquire_exclusive_ft(self, lock_id: int):
        mgr = self.manager
        home, addr, rkey = mgr.word(lock_id)
        nic = self.node.nic
        tenure = _Tenure()
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            self._obs_word(lock_id, int.from_bytes(raw, "big"))
            ep, tail, count = unpack_ft(int.from_bytes(raw, "big"))
            if tail == self.token:
                # residue of an aborted attempt; the reaper clears it
                raise _Stale(f"own stale tail on lock {lock_id}")
            word = pack_ft(ep, tail, count)
            old = yield nic.cas(home, addr, rkey, word,
                                pack_ft(ep, self.token, 0))
            self._obs_word(lock_id, old)
            if old != word:
                continue  # lost the race (or raced a reclaim): re-read
            tenure.ep = ep
            self._tenures[lock_id] = tenure
            self._obs_enqueue(lock_id, LockMode.EXCLUSIVE, prev=tail, ep=ep)
            pred = tail if tail != 0 else None
            if pred is not None:
                self._peer_send_ft(pred, {"t": "nc", "kind": "xenq",
                                          "lock": lock_id,
                                          "frm": self.token,
                                          "scount": count, "ep": ep})
            if pred is None and count == 0:
                if mgr.lock_epoch(lock_id) != ep:
                    raise _Stale("reclaimed at exclusive grant instant")
                return ep
            yield from self._await_grant_ft(lock_id, tenure, pred,
                                            count, ep)
            return ep

    def _await_grant_ft(self, lock_id: int, tenure: _Tenure,
                        pred: Optional[int], srel_needed: int, ep: int):
        mgr = self.manager
        need_xgrant = pred is not None
        srel_got = 0
        while need_xgrant or srel_got < srel_needed:
            body = yield from self._wait_lease(lock_id, "nc", mgr.lease_us)
            if body is None:
                yield from self._check_epoch(lock_id, ep)
                continue
            if body.get("ep") != ep:
                continue
            kind = body["kind"]
            if kind == "xgrant":
                need_xgrant = False
            elif kind == "srel":
                if need_xgrant:
                    self._peer_send_ft(pred, dict(body))
                else:
                    srel_got += 1
            elif kind == "senq":
                if body["frm"] not in tenure.registered:
                    tenure.registered.append(body["frm"])
            elif kind == "xenq":
                self._note_successor(tenure, body)
            else:  # pragma: no cover - defensive
                raise LockError(f"unexpected message {kind!r}")
        if mgr.lock_epoch(lock_id) != ep:
            raise _Stale("reclaimed at exclusive grant instant")

    def _check_epoch(self, lock_id: int, ep: int):
        """Lease expired while waiting: re-read the word, bail if moved."""
        home, addr, rkey = self.manager.word(lock_id)
        raw = yield self.node.nic.rdma_read(home, addr, rkey, 8)
        self._obs_word(lock_id, int.from_bytes(raw, "big"))
        if unpack_ft(int.from_bytes(raw, "big"))[0] != ep:
            raise _Stale(f"lock {lock_id} reclaimed while waiting")

    # -- release -------------------------------------------------------
    def _release_ft(self, lock_id: int, mode: LockMode):
        mgr = self.manager
        ep = self._grant_ep.pop(lock_id)
        if mgr._consume_revoked(lock_id, self.token, ep):
            # lease revoked by a reclaim: the grant already ended in the
            # ledger and the word was wiped — nothing to undo
            self._tenures.pop(lock_id, None)
            return
        self._released(lock_id)
        mgr._note_active(lock_id, self.token)
        try:
            if mode is LockMode.SHARED:
                yield from self._release_shared_ft(lock_id, ep)
            else:
                yield from self._release_exclusive_ft(lock_id, ep)
        except (FaultError, RdmaError):
            # home unreachable or we crashed mid-release: the word (and
            # possibly a waiter's hand-off) is in an unknown state —
            # flag it so the reaper reclaims, else a live successor
            # could wait forever on a grant that was never initiated
            mgr._flag_suspect(lock_id, self.token)
        finally:
            mgr._unnote_active(lock_id, self.token)

    def _release_shared_ft(self, lock_id: int, ep: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            self._obs_word(lock_id, int.from_bytes(raw, "big"))
            wep, tail, count = unpack_ft(int.from_bytes(raw, "big"))
            if wep != ep:
                return  # revoked: our count contribution was wiped
            if tail != 0:
                self._peer_send_ft(tail, {"t": "nc", "kind": "srel",
                                          "lock": lock_id,
                                          "frm": self.token, "ep": ep})
                return
            if count == 0:  # pragma: no cover - accounting bug guard
                raise LockError("shared release with zero count")
            word = pack_ft(ep, 0, count)
            old = yield nic.cas(home, addr, rkey, word,
                                pack_ft(ep, 0, count - 1))
            self._obs_word(lock_id, old)
            if old == word:
                return

    def _release_exclusive_ft(self, lock_id: int, ep: int):
        home, addr, rkey = self.manager.word(lock_id)
        nic = self.node.nic
        tenure = self._tenures.pop(lock_id)
        self._drain_pending_ft(lock_id, tenure, ep)
        if tenure.xenq is None:
            n_reg = len(tenure.registered)
            guess = pack_ft(ep, self.token, n_reg)
            old = yield nic.cas(home, addr, rkey, guess,
                                pack_ft(ep, 0, n_reg))
            self._obs_word(lock_id, old)
            if old == guess:
                self._grant_shared_ft(lock_id, tenure.registered, ep)
                return
            while tenure.xenq is None:
                raw = yield nic.rdma_read(home, addr, rkey, 8)
                self._obs_word(lock_id, int.from_bytes(raw, "big"))
                wep, tail, count = unpack_ft(int.from_bytes(raw, "big"))
                if wep != ep:
                    return  # revoked mid-release: fresh epoch owns it
                if tail != self.token:
                    if not (yield from self._collect_until_ft(
                            lock_id, tenure, "xenq", ep)):
                        return
                    break
                while (len(tenure.registered) < count
                       and tenure.xenq is None):
                    if not (yield from self._collect_until_ft(
                            lock_id, tenure, None, ep)):
                        return
                if tenure.xenq is not None:
                    break
                word = pack_ft(ep, tail, count)
                old = yield nic.cas(home, addr, rkey, word,
                                    pack_ft(ep, 0, count))
                self._obs_word(lock_id, old)
                if old != word:
                    continue
                self._grant_shared_ft(lock_id, tenure.registered, ep)
                return
        succ = tenure.xenq["frm"]
        s_mine = tenure.xenq["scount"]
        while len(tenure.registered) < s_mine:
            if not (yield from self._collect_until_ft(
                    lock_id, tenure, "senq", ep)):
                return
        if len(tenure.registered) != s_mine:  # pragma: no cover - guard
            raise LockError("registered shared waiters exceed snapshot")
        self._grant_shared_ft(lock_id, tenure.registered, ep)
        self._peer_send_ft(succ, {"t": "nc", "kind": "xgrant",
                                  "lock": lock_id, "ep": ep})

    # -- FT helpers ----------------------------------------------------
    def _grant_shared_ft(self, lock_id: int, waiters, ep: int) -> None:
        for waiter in waiters:
            self._peer_send_ft(waiter, {"t": "nc", "kind": "sgrant",
                                        "lock": lock_id, "ep": ep})

    def _drain_pending_ft(self, lock_id: int, tenure: _Tenure,
                          ep: int) -> None:
        q = self._queue(lock_id, "nc")
        while True:
            ok, body = q.try_get()
            if not ok:
                return
            if body.get("ep") != ep:
                continue
            self._classify_ft(tenure, body)

    def _collect_until_ft(self, lock_id: int, tenure: _Tenure,
                          kind: Optional[str], ep: int):
        """Consume messages until ``kind`` (any if None) arrives.

        Returns False when the lock was reclaimed from under us — the
        caller must abandon the release.
        """
        mgr = self.manager
        home, addr, rkey = mgr.word(lock_id)
        while True:
            body = yield from self._wait_lease(lock_id, "nc", mgr.lease_us)
            if body is None:
                raw = yield self.node.nic.rdma_read(home, addr, rkey, 8)
                self._obs_word(lock_id, int.from_bytes(raw, "big"))
                if unpack_ft(int.from_bytes(raw, "big"))[0] != ep:
                    return False
                continue
            if body.get("ep") != ep:
                continue
            self._classify_ft(tenure, body)
            if kind is None or body["kind"] == kind:
                return True

    def _classify_ft(self, tenure: _Tenure, body: dict) -> None:
        kind = body["kind"]
        if kind == "senq":
            if body["frm"] not in tenure.registered:
                tenure.registered.append(body["frm"])
        elif kind == "xenq":
            self._note_successor(tenure, body)
        else:  # pragma: no cover - defensive
            raise LockError(f"unexpected message {kind!r} while holding")

    @staticmethod
    def _note_successor(tenure: _Tenure, body: dict) -> None:
        if tenure.xenq is not None:
            if tenure.xenq["frm"] != body["frm"]:  # pragma: no cover
                raise LockError("two exclusive successors announced")
            return  # re-delivered announcement
        tenure.xenq = body

    def _peer_send_ft(self, token: int, body: dict) -> None:
        """At-least-once peer send (bounded re-send, receiver dedup)."""
        peer = self.manager.clients.get(token)
        if peer is None:
            raise LockError(f"unknown peer token {token}")
        msg = dict(body)
        msg["uid"] = self.env.next_id("dlm")
        self.env.process(self._send_reliable(peer, msg),
                         name=f"ncosed-send@{self.node.name}")

    def _send_reliable(self, peer: "NCoSEDClient", body: dict):
        mgr = self.manager
        for _ in range(mgr.send_attempts):
            try:
                yield self.node.nic.send_wait(peer.node.id, payload=body,
                                              size=32, tag=peer._tag)
                return
            except FaultError:
                yield self.env.timeout(mgr.resend_us)
        # Undeliverable protocol message: if its epoch is still current,
        # some peer is (or may be) waiting on it — flag the lock so the
        # reaper reclaims and waiters restart under a fresh epoch.
        lock_id = body.get("lock")
        if lock_id is not None and body.get("ep") == mgr.lock_epoch(lock_id):
            mgr._flag_suspect(lock_id, self.token)
