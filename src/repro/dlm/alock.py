"""ALock: asymmetric local/remote cohort lock (arena design #5).

After *ALock*: clients are split per lock into two cohorts — *local*
(co-resident with the lock's home node, so their atomics are loopback
cheap) and *remote* (everyone else, paying fabric latency).  Each
cohort runs its own MCS-style tail queue, and the two cohort leaders
settle ownership through a Peterson-style tournament word; once a
cohort wins, the holder hands the lock to its cohort successor with a
cheap pass-off message, up to ``cohort_budget`` consecutive grants,
before the tournament re-runs so the other cohort cannot starve.

Home-resident state per lock (24 bytes):

* ``+0``  local-cohort tail word  (``pack_ft``: epoch | tail | unused)
* ``+8``  remote-cohort tail word (same layout)
* ``+16`` tournament state word:
  ``(epoch << 48) | (victim << 2) | (remote_flag << 1) | local_flag``
  with victim 0 = none, 1 = local cohort, 2 = remote cohort.

A cohort leader enters the tournament by CASing its flag bit *and*
``victim = my cohort`` in one atomic step, then poll-reads until the
other cohort's flag is down or the victim has moved off it (classic
Peterson: the cohort that set victim last yields).  The flag stays up
across in-budget pass-offs — ownership of the flag travels with the
lock — and is lowered by the tenure-ending holder *before* it closes
its tail or sends the budget-exhausted ``restart``, so a fresh leader
(which needs tail == 0, impossible while our queue lives) or the
restarted successor always raises the flag itself.

Crash recovery rides the shared epoch-fencing base
(:mod:`repro.dlm.ft`): the reaper additionally treats a raised flag
with no holder and no active client as residue (the tournament word
has no queue entry to orphan-check).

SHARED mode is serialized through the cohort queues like DQNL's.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import LockError
from repro.net.node import Node

from repro.dlm.base import LockMode
from repro.dlm.ft import EpochFencedClient, EpochFencedManager
from repro.dlm.ncosed import _EP_MASK, _Stale, pack_ft, unpack_ft

__all__ = ["ALockManager", "ALockClient", "COHORT_LOCAL", "COHORT_REMOTE"]

COHORT_LOCAL = "L"
COHORT_REMOTE = "R"

#: per-lock word offsets in the home region
_OFF_LTAIL = 0
_OFF_RTAIL = 8
_OFF_STATE = 16
_STRIDE = 24

_VICTIM = {COHORT_LOCAL: 1, COHORT_REMOTE: 2}
_FLAG = {COHORT_LOCAL: 1, COHORT_REMOTE: 2}


def _pack_state(ep: int, victim: int, rflag: int, lflag: int) -> int:
    return ((ep & _EP_MASK) << 48) | (victim << 2) | (rflag << 1) | lflag


def _unpack_state(word: int) -> Tuple[int, int, int, int]:
    return (word >> 48) & _EP_MASK, (word >> 2) & 0x3, \
        (word >> 1) & 1, word & 1


class ALockManager(EpochFencedManager):
    """Home state: two cohort tails + a tournament word per lock."""

    SCHEME = "alock"

    def __init__(self, cluster, n_locks: int = 64, member_nodes=None, *,
                 cohort_budget: int = 4, tourney_poll_us: float = 2.0,
                 tourney_poll_max_us: float = 32.0, **ft_kwargs):
        if cohort_budget < 1:
            raise LockError("cohort_budget must be >= 1")
        self.cohort_budget = cohort_budget
        self.tourney_poll_us = tourney_poll_us
        self.tourney_poll_max_us = tourney_poll_max_us
        super().__init__(cluster, n_locks=n_locks,
                         member_nodes=member_nodes, **ft_kwargs)

    def _setup_homes(self) -> None:
        self._words: Dict[int, object] = {}
        for node in self.members:
            self._words[node.id] = node.memory.register(
                _STRIDE * self.n_locks, name=f"alock-words@{node.name}")

    def _word_at(self, lock_id: int, off: int):
        home = self.home_node(lock_id)
        region = self._words[home.id]
        return home.id, region.addr + _STRIDE * lock_id + off, region.rkey

    def word(self, lock_id: int):
        """Epoch-bearing word for lease re-reads: the local tail."""
        return self._word_at(lock_id, _OFF_LTAIL)

    def tail_word(self, lock_id: int, cohort: str):
        return self._word_at(lock_id, _OFF_LTAIL if cohort == COHORT_LOCAL
                             else _OFF_RTAIL)

    def state_word(self, lock_id: int):
        return self._word_at(lock_id, _OFF_STATE)

    def raw_words(self, lock_id: int) -> Tuple[int, int, int]:
        """Direct (zero-time) view (ltail, rtail, state), for tests."""
        home = self.home_node(lock_id)
        region = self._words[home.id]
        base = _STRIDE * lock_id
        return (region.read_u64(base + _OFF_LTAIL),
                region.read_u64(base + _OFF_RTAIL),
                region.read_u64(base + _OFF_STATE))

    def client(self, node: Node) -> "ALockClient":
        return ALockClient(self, node)

    def cohort_of(self, client: "ALockClient", lock_id: int) -> str:
        return (COHORT_LOCAL
                if client.node.id == self.home_node(lock_id).id
                else COHORT_REMOTE)

    # -- epoch-fencing hooks ----------------------------------------------
    def _ft_tails(self, lock_id: int):
        ltail, rtail, _state = self.raw_words(lock_id)
        return unpack_ft(ltail)[1], unpack_ft(rtail)[1]

    def _ft_extra_reclaim(self, lock_id: int) -> bool:
        # a raised tournament flag with no holder and no live attempt is
        # residue of a crash between flag-set and grant/clear
        _lt, _rt, state = self.raw_words(lock_id)
        _ep, _victim, rflag, lflag = _unpack_state(state)
        return bool((rflag or lflag)
                    and not self.holders.get(lock_id)
                    and not self._active.get(lock_id))

    def _ft_wipe(self, lock_id: int, new_ep: int) -> None:
        home = self.home_node(lock_id)
        region = self._words[home.id]
        base = _STRIDE * lock_id
        region.write_u64(base + _OFF_LTAIL, pack_ft(new_ep, 0, 0))
        region.write_u64(base + _OFF_RTAIL, pack_ft(new_ep, 0, 0))
        region.write_u64(base + _OFF_STATE, _pack_state(new_ep, 0, 0, 0))


class ALockClient(EpochFencedClient):
    """Client; its cohort per lock is fixed by node placement."""

    # -- acquire ----------------------------------------------------------
    def _attempt_acquire(self, lock_id: int, mode: LockMode):
        mgr = self.manager
        cohort = mgr.cohort_of(self, lock_id)
        home, addr, rkey = mgr.tail_word(lock_id, cohort)
        nic = self.node.nic
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            ep, tail, _ = unpack_ft(int.from_bytes(raw, "big"))
            if tail == self.token:
                raise _Stale(f"own stale tail on lock {lock_id}")
            word = pack_ft(ep, tail, 0)
            old = yield nic.cas(home, addr, rkey, word,
                                pack_ft(ep, self.token, 0))
            if old != word:
                continue  # lost the race (or raced a reclaim): re-read
            break
        self._obs_enqueue(lock_id, mode, prev=tail, ep=ep, cohort=cohort)
        extra = {"cohort": cohort, "budget": mgr.cohort_budget}
        if tail != 0:
            # queued behind a cohort predecessor: announce ourselves,
            # then wait for an in-budget pass or a budget-exhausted
            # restart (which sends us into the tournament ourselves)
            self._peer_call(tail, {"t": "asucc", "lock": lock_id,
                                   "frm": self.token, "ep": ep})
            body = yield from self._wait_msg(lock_id, "apass", ep)
            if body["kind"] == "pass":
                if mgr.ft and mgr.lock_epoch(lock_id) != ep:
                    raise _Stale("reclaimed at cohort pass-off instant")
                return ep, dict(extra, chain=body["chain"])
            if body["kind"] != "restart":  # pragma: no cover - defensive
                raise LockError(f"unexpected pass kind {body['kind']!r}")
        yield from self._tournament(lock_id, ep, cohort)
        return ep, dict(extra, chain=0)

    def _tournament(self, lock_id: int, ep: int, cohort: str):
        """Peterson round between the two cohort leaders."""
        mgr = self.manager
        home, addr, rkey = mgr.state_word(lock_id)
        nic = self.node.nic
        my_flag = _FLAG[cohort]
        my_victim = _VICTIM[cohort]
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            state = int.from_bytes(raw, "big")
            sep, _victim, rflag, lflag = _unpack_state(state)
            if sep != ep:
                raise _Stale(f"lock {lock_id} reclaimed at tournament")
            flags = (rflag << 1) | lflag
            new = _pack_state(ep, my_victim, *divmod(flags | my_flag, 2))
            old = yield nic.cas(home, addr, rkey, state, new)
            if old == state:
                break  # flag up, victim points at us
        other_flag = _FLAG[COHORT_REMOTE if cohort == COHORT_LOCAL
                           else COHORT_LOCAL]
        poll = mgr.tourney_poll_us
        while True:
            raw = yield nic.rdma_read(home, addr, rkey, 8)
            sep, victim, rflag, lflag = _unpack_state(
                int.from_bytes(raw, "big"))
            if sep != ep:
                raise _Stale(f"lock {lock_id} reclaimed at tournament")
            flags = (rflag << 1) | lflag
            if not (flags & other_flag) or victim != my_victim:
                break  # other cohort absent, or it yielded to us
            yield self.env.timeout(poll)
            poll = min(poll * 2, mgr.tourney_poll_max_us)
        if mgr.ft and mgr.lock_epoch(lock_id) != ep:
            raise _Stale("reclaimed at tournament win instant")

    # -- release ----------------------------------------------------------
    def _attempt_release(self, lock_id: int, ep: int):
        mgr = self.manager
        extra = self._grant_extra.pop(lock_id, {})
        chain = extra.get("chain", 0)
        cohort = extra.get("cohort") or mgr.cohort_of(self, lock_id)
        nic = self.node.nic
        succs = self._drain_msgs(lock_id, "asucc", ep)
        succ = succs[0]["frm"] if succs else None
        if succ is not None and chain + 1 < mgr.cohort_budget:
            # in-budget cohort pass-off: the flag travels with the lock
            self._peer_call(succ, {"t": "apass", "kind": "pass",
                                   "lock": lock_id, "chain": chain + 1,
                                   "ep": ep})
            return
        # tenure ends here: lower our cohort's flag BEFORE closing the
        # tail or restarting the successor, so nobody else's flag-raise
        # can race ours (fresh leaders need tail == 0, impossible while
        # our queue entry lives; a restarted successor raises it itself)
        shome, saddr, srkey = mgr.state_word(lock_id)
        my_flag = _FLAG[cohort]
        while True:
            raw = yield nic.rdma_read(shome, saddr, srkey, 8)
            state = int.from_bytes(raw, "big")
            sep, victim, rflag, lflag = _unpack_state(state)
            if sep != ep:
                return  # reclaimed: words already wiped
            flags = ((rflag << 1) | lflag) & ~my_flag
            new = _pack_state(ep, victim, *divmod(flags, 2))
            old = yield nic.cas(shome, saddr, srkey, state, new)
            if old == state:
                break
        if succ is None:
            # no known successor: try to close our cohort's queue
            thome, taddr, trkey = mgr.tail_word(lock_id, cohort)
            word = pack_ft(ep, self.token, 0)
            old = yield nic.cas(thome, taddr, trkey, word,
                                pack_ft(ep, 0, 0))
            if old == word:
                return  # queue closed
            if unpack_ft(old)[0] != ep:
                return  # reclaimed under us
            # a successor swapped the tail; its announce is in flight
            try:
                body = yield from self._wait_msg(lock_id, "asucc", ep)
            except _Stale:
                return
            succ = body["frm"]
        # budget exhausted (or late-arriving successor): send it through
        # the tournament so the other cohort gets its turn
        self._peer_call(succ, {"t": "apass", "kind": "restart",
                               "lock": lock_id, "ep": ep})
