"""Shared lease/epoch-fencing machinery for the arena lock designs.

The fault-tolerance story is the one proven out by N-CoSED
(:mod:`repro.dlm.ncosed`): every home-resident word carries a 16-bit
epoch (``pack_ft`` layout), a manager-wide reaper wipes a lock to
``(epoch+1, 0, 0…)`` when its tail/holder/active client is dead or its
word is residue, grants are revoked Chubby-style, waits are
lease-bounded with an epoch re-read on expiry, and peer messages carry
the epoch of the tenure they belong to (stale ones are discarded) with
bounded re-send plus receiver-side uid dedup.

:class:`EpochFencedManager` / :class:`EpochFencedClient` factor that
machinery into a reusable base so ALock and RDMA-MCS get crash recovery
for free; N-CoSED itself keeps its original (byte-identical) code.

Scheme hooks
------------

Managers implement ``_setup_homes`` plus:

* ``_ft_tails(lock_id)``   — tail tokens currently named by the lock's
  word(s); an orphaned tail (no holder, no active attempt) is residue.
* ``_ft_wipe(lock_id, new_ep)`` — rewrite every word of the lock to its
  empty state under ``new_ep`` (home-local, zero simulated time).
* ``_ft_extra_reclaim(lock_id)`` — optional extra residue predicate
  (e.g. ALock's orphaned tournament flags).

Clients implement ``_attempt_acquire(lock_id, mode)`` (a generator
returning ``(ep, extra)`` where ``extra`` rides on the grant event) and
``_attempt_release(lock_id, ep)``; the base provides the bounded-retry
wrapper, revocation handling, epoch-checked waits, reliable peer send,
and the local-spin signal used to model one-sided hand-off detection.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import FaultError, LockError, RdmaError
from repro.net.node import Node

from repro.dlm.base import LockClient, LockManagerBase, LockMode
from repro.dlm.ncosed import (_EP_MASK, _Stale, _UID_WINDOW, pack_ft,
                              unpack_ft)

__all__ = ["EpochFencedManager", "EpochFencedClient"]


class EpochFencedManager(LockManagerBase):
    """Home state + reaper shared by the epoch-fenced arena schemes.

    Pass ``lease_us`` for fault-tolerant mode; without it the epoch is
    pinned at 0, waits are unbounded, and the reaper never runs (the
    wire protocol is unchanged — non-FT mode is just FT with a frozen
    epoch).
    """

    def __init__(self, cluster, n_locks: int = 64,
                 member_nodes=None, *,
                 lease_us: Optional[float] = None,
                 detector=None,
                 reap_every_us: Optional[float] = None,
                 max_attempts: int = 12,
                 attempt_backoff_us: Optional[float] = None,
                 send_attempts: int = 6,
                 resend_us: Optional[float] = None):
        self.ft = lease_us is not None
        if self.ft and lease_us <= 0:
            raise LockError("lease_us must be positive")
        if max_attempts < 1:
            raise LockError("max_attempts must be >= 1")
        self.lease_us = lease_us
        self.detector = detector
        self.max_attempts = max_attempts
        if self.ft:
            self.reap_every_us = reap_every_us or lease_us
            self.attempt_backoff_us = (attempt_backoff_us
                                       if attempt_backoff_us is not None
                                       else lease_us / 2)
            self.resend_us = (resend_us if resend_us is not None
                              else lease_us / 4)
        else:
            self.reap_every_us = reap_every_us
            self.attempt_backoff_us = attempt_backoff_us
            self.resend_us = resend_us
        self.send_attempts = send_attempts
        #: lock -> current epoch (mirrored in the words' top 16 bits)
        self._epochs: Dict[int, int] = {}
        #: lock -> tokens with an in-flight acquire/release on it (the
        #: lease records separating a live waiter from residue)
        self._active: Dict[int, Set[int]] = {}
        #: (lock, token) -> grant epoch revoked by a reclaim
        self._revoked: Dict[Tuple[int, int], int] = {}
        #: lock -> tokens whose protocol obligation could not complete
        self._suspect: Dict[int, Set[int]] = {}
        #: (time, lock, new_epoch) for every reclaim, for tests
        self.reclaims: List[Tuple[float, int, int]] = []
        super().__init__(cluster, n_locks=n_locks,
                         member_nodes=member_nodes)
        if self.ft:
            self.env.process(self._reap_proc(),
                             name=f"{self.SCHEME}-reaper")

    # -- scheme hooks ----------------------------------------------------
    def _ft_tails(self, lock_id: int):
        raise NotImplementedError

    def _ft_wipe(self, lock_id: int, new_ep: int) -> None:
        raise NotImplementedError

    def _ft_extra_reclaim(self, lock_id: int) -> bool:
        return False

    # -- epochs, lease records, reaper ------------------------------------
    def lock_epoch(self, lock_id: int) -> int:
        return self._epochs.get(lock_id, 0)

    def _note_active(self, lock_id: int, token: int) -> None:
        self._active.setdefault(lock_id, set()).add(token)

    def _unnote_active(self, lock_id: int, token: int) -> None:
        tokens = self._active.get(lock_id)
        if tokens is not None:
            tokens.discard(token)

    def _consume_revoked(self, lock_id: int, token: int, ep: int) -> bool:
        if self._revoked.get((lock_id, token)) == ep:
            del self._revoked[(lock_id, token)]
            return True
        return False

    def _node_dead(self, node_id: int) -> bool:
        if self.detector is not None:
            return self.detector.is_dead(node_id)
        injector = self.cluster.fabric.injector
        return injector is not None and node_id in injector.down

    def _token_dead(self, token: int) -> bool:
        client = self.clients.get(token)
        return client is not None and self._node_dead(client.node.id)

    def _flag_suspect(self, lock_id: int, token: int) -> None:
        self._suspect.setdefault(lock_id, set()).add(token)

    def _reap_proc(self):
        while True:
            yield self.env.timeout(self.reap_every_us)
            for lock_id in range(self.n_locks):
                if self._should_reclaim(lock_id):
                    self._reclaim(lock_id)

    def _should_reclaim(self, lock_id: int) -> bool:
        if not getattr(self.detector, "has_quorum", True):
            # minority-partition view: freezing the reaper here is what
            # keeps a split brain from revoking the majority's grants
            return False
        if self._node_dead(self.home_node(lock_id).id):
            return False  # words unreachable; restart first
        if self._suspect.get(lock_id):
            return True  # a release/hand-off failed: chain state suspect
        holders = self.holders.get(lock_id, ())
        active = self._active.get(lock_id, ())
        if any(self._token_dead(tok) for tok, _mode in holders):
            return True
        if any(self._token_dead(tok) for tok in active):
            return True
        for tail in self._ft_tails(lock_id):
            if tail and tail not in active and not any(
                    tok == tail for tok, _mode in holders):
                return True  # orphaned tail: residue of an aborted attempt
        return self._ft_extra_reclaim(lock_id)

    def _reclaim(self, lock_id: int) -> None:
        """Wipe the lock's words at one instant and revoke every grant.

        Home-local, zero simulated time: any in-flight remote atomic
        lands strictly before or after the wipe and is rejected by its
        epoch guard afterwards.
        """
        old_ep = self._epochs.get(lock_id, 0)
        new_ep = (old_ep + 1) & _EP_MASK
        self._epochs[lock_id] = new_ep
        self._ft_wipe(lock_id, new_ep)
        obs = self.env.obs
        if obs is not None:
            # emitted before the revokes so the sanitizer advances its
            # authoritative epoch first, then validates each revocation
            obs.trace.emit("lock.reclaim", node=self.home_node(lock_id).id,
                           mgr=self.obs_name, lock=lock_id,
                           old_ep=old_ep, new_ep=new_ep)
            obs.metrics.counter("dlm.reclaims").inc()
        for token, _mode in list(self.holders.get(lock_id, ())):
            self._ledger_expunge(lock_id, token)
            self._revoked[(lock_id, token)] = old_ep
        self._suspect.pop(lock_id, None)
        self.reclaims.append((self.env.now, lock_id, new_ep))


class EpochFencedClient(LockClient):
    """Bounded-retry acquire/release wrapper around the scheme hooks."""

    def __init__(self, manager: EpochFencedManager, node: Node):
        super().__init__(manager, node)
        self._held_modes: Dict[int, LockMode] = {}
        self._grant_ep: Dict[int, int] = {}
        self._grant_extra: Dict[int, dict] = {}
        self._seen_uids: "OrderedDict[int, None]" = OrderedDict()

    # -- scheme hooks ----------------------------------------------------
    def _attempt_acquire(self, lock_id: int, mode: LockMode):
        """Generator: one acquire attempt; returns ``(ep, extra)``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _attempt_release(self, lock_id: int, ep: int):
        raise NotImplementedError
        yield  # pragma: no cover

    def _abort_attempt(self, lock_id: int) -> None:
        """Per-scheme cleanup after a failed acquire attempt."""

    def _epoch_word(self, lock_id: int):
        """(home, addr, rkey) of the epoch-bearing word to re-read."""
        return self.manager.word(lock_id)

    # -- acquire/release wrappers ----------------------------------------
    def _acquire(self, lock_id: int, mode: LockMode):
        if lock_id in self._held_modes:
            raise LockError(f"client {self.token} already holds {lock_id}")
        mgr = self.manager
        if not mgr.ft:
            ep, extra = yield from self._attempt_acquire(lock_id, mode)
            self._finish_grant(lock_id, mode, ep, extra)
            return None
        attempts = 0
        while True:
            attempts += 1
            mgr._note_active(lock_id, self.token)
            try:
                ep, extra = yield from self._attempt_acquire(lock_id, mode)
                break
            except (_Stale, FaultError, RdmaError) as exc:
                self._abort_attempt(lock_id)
                if attempts >= mgr.max_attempts:
                    obs = self.env.obs
                    if obs is not None:
                        obs.trace.emit("lock.fail", node=self.node.id,
                                       mgr=mgr.obs_name, lock=lock_id,
                                       token=self.token,
                                       attempts=attempts)
                        obs.metrics.counter("dlm.acquire_failures").inc()
                    raise LockError(
                        f"acquire of lock {lock_id} by client {self.token} "
                        f"failed after {attempts} attempts: {exc}") from exc
            finally:
                mgr._unnote_active(lock_id, self.token)
            yield self.env.timeout(
                mgr.attempt_backoff_us * min(attempts, 8))
        # a fresh grant supersedes any stale revocation marker
        mgr._revoked.pop((lock_id, self.token), None)
        self._finish_grant(lock_id, mode, ep, extra)
        return None

    def _finish_grant(self, lock_id: int, mode: LockMode, ep: int,
                      extra: dict) -> None:
        self._held_modes[lock_id] = mode
        self._grant_ep[lock_id] = ep
        self._grant_extra[lock_id] = extra
        self._granted(lock_id, mode, ep=ep, **extra)

    def _release(self, lock_id: int):
        mode = self._held_modes.pop(lock_id, None)
        if mode is None:
            raise LockError(f"client {self.token} does not hold {lock_id}")
        mgr = self.manager
        ep = self._grant_ep.pop(lock_id, 0)
        if mgr.ft and mgr._consume_revoked(lock_id, self.token, ep):
            # lease revoked by a reclaim: the grant already ended in the
            # ledger and the words were wiped — nothing to undo
            self._grant_extra.pop(lock_id, None)
            return None
        self._released(lock_id)
        if not mgr.ft:
            yield from self._attempt_release(lock_id, ep)
            return None
        mgr._note_active(lock_id, self.token)
        try:
            yield from self._attempt_release(lock_id, ep)
        except (FaultError, RdmaError):
            # the words (and possibly a waiter's hand-off) are in an
            # unknown state — flag the lock so the reaper reclaims
            mgr._flag_suspect(lock_id, self.token)
        finally:
            mgr._unnote_active(lock_id, self.token)
        return None

    # -- epoch-checked waits ----------------------------------------------
    def _wait_msg(self, lock_id: int, kind: str, ep: int):
        """Wait for a same-epoch message of ``kind``.

        In FT mode the wait is lease-bounded; on expiry the epoch word
        is re-read and a moved epoch raises :class:`_Stale`.
        """
        mgr = self.manager
        while True:
            if mgr.ft:
                body = yield from self._wait_lease(lock_id, kind,
                                                   mgr.lease_us)
                if body is None:
                    yield from self._check_epoch(lock_id, ep)
                    continue
            else:
                body = yield from self._wait(lock_id, kind)
            if body.get("ep") != ep:
                continue  # stale generation
            return body

    def _check_epoch(self, lock_id: int, ep: int):
        home, addr, rkey = self._epoch_word(lock_id)
        raw = yield self.node.nic.rdma_read(home, addr, rkey, 8)
        if unpack_ft(int.from_bytes(raw, "big"))[0] != ep:
            raise _Stale(f"lock {lock_id} reclaimed while waiting")

    def _drain_msgs(self, lock_id: int, kind: str, ep: int):
        """Non-blocking: pop queued same-epoch messages of ``kind``."""
        q = self._queue(lock_id, kind)
        out = []
        while True:
            ok, body = q.try_get()
            if not ok:
                return out
            if body.get("ep") == ep:
                out.append(body)

    # -- one-sided hand-off signalling ------------------------------------
    def _signal(self, peer: "EpochFencedClient", lock_id: int,
                kind: str, body: dict) -> None:
        """Local-spin wakeup for a one-sided write just completed.

        The payload travelled through a real ``rdma_write`` into the
        peer's registered memory; the peer detects it by polling its
        own cache-resident queue node, which costs no network traffic
        and (conservatively, at the writer's completion instant rather
        than a poll boundary) no extra simulated time.
        """
        peer._queue(lock_id, kind).try_put(dict(body, t=kind,
                                                lock=lock_id))

    # -- reliable peer messaging (lifted from N-CoSED) ---------------------
    def _accept_msg(self, body: dict) -> bool:
        uid = body.get("uid")
        if uid is None:
            return True
        if uid in self._seen_uids:
            return False  # duplicate delivery of a re-sent message
        self._seen_uids[uid] = None
        while len(self._seen_uids) > _UID_WINDOW:
            self._seen_uids.popitem(last=False)
        return True

    def _peer_call(self, token: int, body: dict) -> None:
        """Peer send: reliable (re-send + dedup) in FT mode."""
        if self.manager.ft:
            self._peer_send_ft(token, body)
        else:
            self._peer_send(token, body)

    def _peer_send_ft(self, token: int, body: dict) -> None:
        peer = self.manager.clients.get(token)
        if peer is None:
            raise LockError(f"unknown peer token {token}")
        msg = dict(body)
        msg["uid"] = self.env.next_id("dlm")
        self.env.process(
            self._send_reliable(peer, msg),
            name=f"{self.manager.SCHEME}-send@{self.node.name}")

    def _send_reliable(self, peer: "EpochFencedClient", body: dict):
        mgr = self.manager
        for _ in range(mgr.send_attempts):
            try:
                yield self.node.nic.send_wait(peer.node.id, payload=body,
                                              size=32, tag=peer._tag)
                return
            except FaultError:
                yield self.env.timeout(mgr.resend_us)
        # Undeliverable protocol message: if its epoch is still current,
        # some peer is (or may be) waiting on it — flag the lock so the
        # reaper reclaims and waiters restart under a fresh epoch.
        lock_id = body.get("lock")
        if (lock_id is not None
                and body.get("ep") == mgr.lock_epoch(lock_id)):
            mgr._flag_suspect(lock_id, self.token)
