"""Seeded generative space of fault schedules.

A *schedule* is the campaign's unit of work: a JSON-able list of fault
dicts sampled from :class:`ChaosSpace`.  Keeping the schedule as plain
data (rather than a built :class:`~repro.faults.FaultPlan`) is what
makes the rest of the pipeline work: schedules hash into stable run
ids, replay byte-identically from a verdict file, and shrink by simple
list/field surgery (:mod:`repro.chaos.shrinker`).

Fault dict shapes::

    {"kind": "crash",     "node": n, "at": t, "restart_at": t2|None}
    {"kind": "partition", "groups": [[...], [...]], "start": s,
     "until": u, "oneway": false}
    {"kind": "slow",      "node": n, "factor": f, "start": s, "until": u}
    {"kind": "stall",     "node": n, "start": s, "until": u}
    {"kind": "drop",      "rate": r, "start": s, "until": u}

Sampling is a pure function of ``(seed, index)`` via the same SplitMix
child-seed derivation the lab runner uses, so schedule ``(S, i)`` is
identical no matter which worker samples it or in which order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.sim.rng import spawn_child

__all__ = ["ChaosSpace", "plan_from_schedule", "schedule_key"]

#: every fault kind the space can emit
ALL_KINDS = ("partition", "crash", "slow", "stall", "drop")


def _r(x: float) -> float:
    """Round times/rates for canonical JSON (and readable verdicts)."""
    return round(float(x), 1)


class ChaosSpace:
    """Samples random fault schedules for an ``n_nodes`` cluster.

    ``protect`` lists node ids that never crash (e.g. the front-end
    that hosts the detector and coordinator — chaos against the
    *watcher* is a different experiment than chaos against the
    watched).  Partitions may still cut protected nodes off: surviving
    a partitioned coordinator is exactly what quorum fencing is for.
    """

    def __init__(self, n_nodes: int, horizon_us: float, *,
                 max_faults: int = 4,
                 kinds: Sequence[str] = ALL_KINDS,
                 protect: Sequence[int] = (0,)):
        if n_nodes < 3:
            raise ConfigError("chaos needs >= 3 nodes (quorum of 2 is "
                              "every pair; partitions degenerate)")
        if horizon_us <= 0:
            raise ConfigError("horizon_us must be positive")
        if max_faults < 1:
            raise ConfigError("max_faults must be >= 1")
        unknown = set(kinds) - set(ALL_KINDS)
        if unknown:
            raise ConfigError(f"unknown fault kinds {sorted(unknown)}; "
                              f"available: {ALL_KINDS}")
        self.n_nodes = n_nodes
        self.horizon_us = float(horizon_us)
        self.max_faults = max_faults
        self.kinds = tuple(kinds)
        self.protect = frozenset(protect)

    def sample(self, seed: int, index: int) -> List[Dict]:
        """Schedule ``index`` of campaign ``seed`` (pure, replayable)."""
        rng = np.random.default_rng(spawn_child(seed, index))
        n_faults = 1 + int(rng.integers(self.max_faults))
        schedule = [self._one(rng) for _ in range(n_faults)]
        schedule.sort(key=_fault_time)
        return schedule

    # -- per-kind samplers ---------------------------------------------
    def _one(self, rng) -> Dict:
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        return getattr(self, f"_sample_{kind}")(rng)

    def _window(self, rng, max_frac: float = 0.45):
        start = float(rng.uniform(0.1, 0.5)) * self.horizon_us
        dur = float(rng.uniform(0.08, max_frac)) * self.horizon_us
        until = min(start + dur, 0.92 * self.horizon_us)
        return _r(start), _r(until)

    def _sample_partition(self, rng) -> Dict:
        perm = [int(x) for x in rng.permutation(self.n_nodes)]
        cut = 1 + int(rng.integers(self.n_nodes - 1))
        start, until = self._window(rng)
        return {"kind": "partition",
                "groups": [sorted(perm[:cut]), sorted(perm[cut:])],
                "start": start, "until": until,
                "oneway": bool(rng.random() < 0.25)}

    def _sample_crash(self, rng) -> Dict:
        victims = sorted(set(range(self.n_nodes)) - self.protect)
        if not victims:
            raise ConfigError("every node is protected; cannot crash")
        node = victims[int(rng.integers(len(victims)))]
        at = _r(float(rng.uniform(0.1, 0.6)) * self.horizon_us)
        restart_at = None
        if rng.random() < 0.5:
            restart_at = _r(at + float(rng.uniform(0.05, 0.3))
                            * self.horizon_us)
        return {"kind": "crash", "node": node, "at": at,
                "restart_at": restart_at}

    def _sample_slow(self, rng) -> Dict:
        start, until = self._window(rng)
        return {"kind": "slow",
                "node": int(rng.integers(self.n_nodes)),
                "factor": _r(float(rng.uniform(2.0, 20.0))),
                "start": start, "until": until}

    def _sample_stall(self, rng) -> Dict:
        start, until = self._window(rng)
        return {"kind": "stall",
                "node": int(rng.integers(self.n_nodes)),
                "start": start, "until": until}

    def _sample_drop(self, rng) -> Dict:
        start, until = self._window(rng)
        return {"kind": "drop",
                "rate": round(float(rng.uniform(0.02, 0.25)), 3),
                "start": start, "until": until}


def _fault_time(fault: Dict) -> float:
    return float(fault.get("at", fault.get("start", 0.0)))


def plan_from_schedule(schedule: Sequence[Dict]) -> FaultPlan:
    """Compile a schedule (list of fault dicts) into a FaultPlan."""
    plan = FaultPlan()
    for fault in schedule:
        kind = fault.get("kind")
        if kind == "crash":
            plan.crash(fault["node"], at=fault["at"],
                       restart_at=fault.get("restart_at"))
        elif kind == "partition":
            plan.partition([tuple(g) for g in fault["groups"]],
                           start=fault["start"], until=fault["until"],
                           oneway=bool(fault.get("oneway", False)))
        elif kind == "slow":
            plan.slow_node(fault["node"], fault["factor"],
                           start=fault["start"], until=fault["until"])
        elif kind == "stall":
            plan.stall_credits(fault["node"], start=fault["start"],
                               until=fault["until"])
        elif kind == "drop":
            plan.drop_messages(fault["rate"], start=fault["start"],
                               until=fault["until"])
        else:
            raise ConfigError(f"unknown fault kind {kind!r} in schedule")
    return plan


def schedule_key(fault: Dict) -> str:
    """One-line human label for a fault dict (reports, shrink logs)."""
    kind = fault["kind"]
    if kind == "crash":
        r = fault.get("restart_at")
        back = f"->restart@{r}" if r is not None else ""
        return f"crash(node={fault['node']}@{fault['at']}{back})"
    if kind == "partition":
        arrow = "->" if fault.get("oneway") else "|"
        gs = arrow.join("".join(str(n) for n in g)
                        for g in fault["groups"])
        return (f"partition({gs}@[{fault['start']},{fault['until']}))")
    if kind == "slow":
        return (f"slow(node={fault['node']}x{fault['factor']}"
                f"@[{fault['start']},{fault['until']}))")
    if kind == "stall":
        return (f"stall(node={fault['node']}"
                f"@[{fault['start']},{fault['until']}))")
    if kind == "drop":
        return (f"drop(rate={fault['rate']}"
                f"@[{fault['start']},{fault['until']}))")
    return repr(fault)
