"""Chaos campaigns: sample fault schedules, run, judge, fold.

One *run* = one ``(scenario, schedule, seed, kernel)`` tuple: build the
scenario under the schedule's :class:`~repro.faults.FaultPlan`, export
the trace, replay every oracle (safety + the HA choreography oracle)
plus the live sanitizers, and reduce to a flat JSON record with the
canonical trace digest.  A *campaign* fans a grid of sampled schedules
through :mod:`repro.lab` (resumable store, optional worker pool) and
folds the records into a single verdict:

* violations on an ``expect_clean`` scenario fail the campaign;
* violations on a seeded-bug scenario (``locks-nofence``) are
  *findings* — the campaign is checking the pipeline can catch them;
* the same ``(scenario, index)`` run under both kernels must export the
  same canonical digest, or the kernels themselves diverged.

Everything keys off ``(seed, index)`` so a verdict names exactly the
schedules that failed and ``repro chaos replay``/``shrink`` can revisit
them without re-sampling the whole campaign.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.scenarios import get_scenario
from repro.chaos.space import schedule_key

__all__ = ["chaos_run_scenario", "run_campaign", "run_schedule"]

#: dotted entry point handed to :class:`repro.lab.Sweep`
SCENARIO_PATH = "repro.chaos.campaign:chaos_run_scenario"


def run_schedule(scenario: str, schedule: Sequence[dict], seed: int, *,
                 kernel: str = "fast",
                 fence: Optional[bool] = None) -> dict:
    """Run one schedule against one scenario and judge the trace."""
    from repro.verify import ALL_ORACLES, TraceView, canonical_trace_sha
    from repro.verify import replay
    from repro.verify.suites import _kernel

    sc = get_scenario(scenario)
    use_fence = sc.fence if fence is None else fence
    with _kernel(kernel):
        obs = sc.builder(seed, sc.n_nodes, list(schedule), use_fence)
    doc = obs.trace_dict()
    view = TraceView.from_obs(obs).require_complete()
    oracles = [factory() for factory in ALL_ORACLES]
    violations = replay(view, oracles)
    sanitizer_hits = obs.violations()
    msgs = [v["msg"] for v in violations[:4]]
    msgs += [f"[sanitizer:{v['sanitizer']}] {v['msg']}"
             for v in sanitizer_hits[:4]]
    n_bad = len(violations) + len(sanitizer_hits)
    return {
        "scenario": scenario,
        "seed": int(seed),
        "kernel": kernel,
        "fence": bool(use_fence),
        "n_nodes": sc.n_nodes,
        "schedule": [dict(f) for f in schedule],
        "faults": [schedule_key(f) for f in schedule],
        "events": len(view.events),
        "sim_now_us": float(doc.get("sim_now_us", 0.0)),
        "violations": n_bad,
        "violation_msgs": msgs,
        "trace_sha": canonical_trace_sha(doc),
        "verdict": "ok" if n_bad == 0 else "violation",
    }


def chaos_run_scenario(seed: int = 0, scenario: str = "locks",
                       index: int = 0, kernel: str = "fast") -> dict:
    """Lab entry point: sample schedule ``(seed, index)`` and run it.

    Sampling happens *inside* the worker from ``(seed, index)`` alone,
    so results are identical no matter how the grid is sharded.
    """
    sc = get_scenario(scenario)
    schedule = sc.space().sample(int(seed), int(index))
    record = run_schedule(scenario, schedule, int(seed), kernel=kernel)
    record["index"] = int(index)
    return record


def run_campaign(scenarios: Sequence[str] = ("locks",), seed: int = 0,
                 n_schedules: int = 10,
                 kernels: Sequence[str] = ("fast",),
                 workers: int = 0,
                 store_path: Optional[str] = None,
                 progress: bool = False) -> dict:
    """Sample+run ``n_schedules`` per scenario per kernel; fold verdict."""
    from repro.lab import ResultStore, Runner, Sweep

    names = list(scenarios)
    for name in names:
        get_scenario(name)  # fail fast on typos, before any workers spin
    sweep = Sweep(name=f"chaos-{seed}", scenario=SCENARIO_PATH,
                  grid={"scenario": names,
                        "index": list(range(int(n_schedules))),
                        "kernel": list(kernels)},
                  seeds=[int(seed)])
    store = ResultStore(store_path)
    summary = Runner(sweep, store=store, workers=workers,
                     progress=progress).run()

    cells: Dict[Tuple[str, int, str], dict] = {}
    for rec in store.records():
        p = rec["params"]
        cells[(p["scenario"], int(p["index"]), p["kernel"])] = rec["result"]

    violations: List[dict] = []
    findings: List[dict] = []
    for (name, index, kernel), res in sorted(cells.items()):
        if res["verdict"] == "ok":
            continue
        entry = {"scenario": name, "index": index, "kernel": kernel,
                 "violations": res["violations"],
                 "msgs": res.get("violation_msgs", []),
                 "faults": res.get("faults", []),
                 "schedule": res.get("schedule", [])}
        if get_scenario(name).expect_clean:
            violations.append(entry)
        else:
            findings.append(entry)

    mismatches: List[dict] = []
    for name, index in sorted({(n, i) for (n, i, _k) in cells}):
        shas = {k: cells[(name, index, k)]["trace_sha"]
                for k in kernels if (name, index, k) in cells}
        if len(set(shas.values())) > 1:
            mismatches.append({"scenario": name, "index": index,
                               "shas": shas})

    runs = len(cells)
    ok = (not violations and not mismatches
          and not summary.get("failed", 0) and runs > 0)
    return {
        "format": "repro-chaos-v1",
        "seed": int(seed),
        "scenarios": names,
        "kernels": list(kernels),
        "n_schedules": int(n_schedules),
        "runs": runs,
        "run_errors": summary.get("failed", 0),
        "violations": violations,
        "findings": findings,
        "kernel_mismatches": mismatches,
        "records": [cells[key] for key in sorted(cells)],
        "verdict": "ok" if ok else "violation",
    }
