"""Chaos campaigns: randomized fault schedules judged by oracles.

The robustness counterpart to :mod:`repro.verify`'s fixed check
scenarios: instead of one hand-written fault per test, a campaign
samples whole *schedules* — partitions (symmetric and one-way), node
crashes, gray failures (slow nodes, stalled flow-control credits),
message drops — from a seeded generative space
(:class:`~repro.chaos.space.ChaosSpace`), runs packaged scenarios under
them through :mod:`repro.lab`, and judges every run with the full
oracle suite plus declarative HA expectations
(:class:`~repro.verify.HAOracle`): failover must happen within the
detection bound on the majority side, and must *never* happen from a
minority view.  Failing schedules shrink to minimal reproducers
(:func:`~repro.chaos.shrinker.shrink_schedule`).

Everything is a pure function of ``(seed, index)``: re-running a
campaign with the same seed reproduces the same schedules, verdicts and
canonical trace digests on either event kernel.

CLI: ``repro chaos {list,run,replay,shrink,report}``.
"""

from repro.chaos.space import ChaosSpace, plan_from_schedule, schedule_key
from repro.chaos.scenarios import (SCENARIOS, ChaosScenario, get_scenario,
                                   ha_expectations)
from repro.chaos.campaign import (chaos_run_scenario, run_campaign,
                                  run_schedule)
from repro.chaos.shrinker import (find_failing, schedule_fails,
                                  shrink_schedule)

__all__ = [
    "ChaosSpace",
    "ChaosScenario",
    "SCENARIOS",
    "chaos_run_scenario",
    "find_failing",
    "get_scenario",
    "ha_expectations",
    "plan_from_schedule",
    "run_campaign",
    "run_schedule",
    "schedule_fails",
    "schedule_key",
    "shrink_schedule",
]
