"""Shrink a failing fault schedule to a minimal reproducer.

Greedy delta-debugging over the schedule's *structure*, in three
passes, each preserved only if the shrunk candidate still fails:

1. **drop faults** — remove one fault at a time, to a fixpoint;
2. **narrow windows** — repeatedly halve each windowed fault's
   duration (and pull crash restarts earlier);
3. **shrink groups** — remove nodes from partition groups, keeping at
   least one node per side.

Expectations are *re-derived* from the candidate schedule on every
probe (the scenario builder computes them from the schedule it is
given), so shrinking stays self-consistent: a narrowed partition is
judged against its own narrowed window, never the original's.

Probes are capped; the shrinker returns the smallest failing schedule
found within the budget, which is still a valid reproducer even when
the cap bites mid-pass.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.campaign import run_schedule
from repro.chaos.scenarios import get_scenario
from repro.chaos.space import schedule_key

__all__ = ["find_failing", "schedule_fails", "shrink_schedule"]


def schedule_fails(scenario: str, schedule: Sequence[dict], seed: int,
                   kernel: str = "fast") -> Tuple[bool, dict]:
    """Run one schedule; True when any oracle or sanitizer flags it."""
    record = run_schedule(scenario, schedule, seed, kernel=kernel)
    return record["verdict"] != "ok", record


def _halved(fault: Dict) -> Optional[Dict]:
    """One window-narrowing step for a fault, or None if not narrowable."""
    f = copy.deepcopy(fault)
    if f["kind"] == "crash":
        r = f.get("restart_at")
        if r is None:
            return None
        gap = r - f["at"]
        if gap <= 200.0:
            return None
        f["restart_at"] = round(f["at"] + gap / 2.0, 1)
        return f
    start, until = float(f["start"]), float(f["until"])
    dur = until - start
    if dur <= 400.0:
        return None  # below any detection bound; stop narrowing
    f["until"] = round(start + dur / 2.0, 1)
    return f


def shrink_schedule(scenario: str, schedule: Sequence[dict], seed: int, *,
                    kernel: str = "fast", max_probes: int = 64) -> dict:
    """Reduce ``schedule`` to a (locally) minimal failing reproducer."""
    get_scenario(scenario)  # validate name before burning probes
    probes = 0

    def fails(candidate: Sequence[dict]) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False  # budget exhausted: treat as "can't shrink"
        probes += 1
        bad, _record = schedule_fails(scenario, candidate, seed, kernel)
        return bad

    original = [copy.deepcopy(f) for f in schedule]
    if not fails(original):
        return {"failed": False, "probes": probes,
                "scenario": scenario, "seed": int(seed),
                "kernel": kernel, "schedule": original,
                "labels": [schedule_key(f) for f in original]}

    current = [copy.deepcopy(f) for f in original]

    # pass 1: drop whole faults, to a fixpoint
    changed = True
    while changed and len(current) > 1:
        changed = False
        i = 0
        while i < len(current) and len(current) > 1:
            candidate = current[:i] + current[i + 1:]
            if fails(candidate):
                current = candidate
                changed = True
            else:
                i += 1

    # pass 2: narrow windows (halve durations while still failing)
    for i in range(len(current)):
        while True:
            narrowed = _halved(current[i])
            if narrowed is None:
                break
            candidate = current[:i] + [narrowed] + current[i + 1:]
            if fails(candidate):
                current = candidate
            else:
                break

    # pass 3: shrink partition groups node by node
    for i, fault in enumerate(list(current)):
        if fault["kind"] != "partition":
            continue
        for g in range(len(fault["groups"])):
            for node in list(current[i]["groups"][g]):
                groups = [list(grp) for grp in current[i]["groups"]]
                if len(groups[g]) <= 1:
                    break
                groups[g] = [n for n in groups[g] if n != node]
                candidate = copy.deepcopy(current)
                candidate[i]["groups"] = groups
                if fails(candidate):
                    current = candidate

    return {
        "failed": True,
        "scenario": scenario,
        "seed": int(seed),
        "kernel": kernel,
        "original_faults": len(original),
        "kept_faults": len(current),
        "probes": probes,
        "schedule": current,
        "labels": [schedule_key(f) for f in current],
    }


def find_failing(scenario: str, seed: int, n_schedules: int = 20,
                 kernel: str = "fast") -> Optional[dict]:
    """Scan sampled schedules; return the first failing one (or None)."""
    sc = get_scenario(scenario)
    space = sc.space()
    for index in range(int(n_schedules)):
        schedule = space.sample(int(seed), index)
        bad, record = schedule_fails(scenario, schedule, int(seed), kernel)
        if bad:
            return {"index": index, "schedule": schedule,
                    "record": record}
    return None
