"""Packaged chaos scenarios and their HA expectations.

A chaos scenario is a workload that (a) runs under an arbitrary
sampled fault schedule, (b) never crashes the *driver* on injected
faults (actors absorb ``LockError``/``FaultError`` — giving up is a
legal outcome, dividing the lock is not), and (c) declares, from the
schedule alone, what correct recovery looks like via ``ha.expect``
trace events (:class:`repro.verify.ha.HAOracle`).

``locks`` is the flagship: fault-tolerant N-CoSED with a phi-accrual
detector behind a quorum gate, so a symmetric partition that isolates a
lock home must produce a majority-side rehome within the detection
bound, while a minority-side front must produce *none*.
``locks-nofence`` is the same scenario with the quorum gate removed —
the packaged split-brain bug that campaigns are expected to find and
shrink.  ``ddss`` exercises replicated coherence under the same fault
classes with no HA choreography (the data oracles carry the verdict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.errors import (ConfigError, DDSSError, FaultError, LockError,
                          RdmaError, TimeoutError)

from repro.chaos.space import ChaosSpace, plan_from_schedule

__all__ = ["SCENARIOS", "ChaosScenario", "get_scenario",
           "ha_expectations"]

#: detector probe cadence for chaos scenarios (µs)
PERIOD_US = 500.0
TIMEOUT_US = 120.0
#: quorum-gate hold window: one probe period lets a closing partition's
#: deaths be counted together before quorum arithmetic runs
HOLD_US = PERIOD_US
#: phi history warm-up before expectations are judgeable
WARMUP_US = 3_000.0
N_LOCKS = 4


@dataclass(frozen=True)
class ChaosScenario:
    """One packaged scenario: builder + sampling space + expectations."""

    name: str
    builder: Callable  # (seed, n_nodes, schedule, fence) -> Observability
    n_nodes: int
    horizon_us: float
    fence: bool = True
    #: False for seeded-bug scenarios: campaign counts their failures
    #: as *findings* (expected), not campaign violations
    expect_clean: bool = True
    kinds: Sequence[str] = ("partition", "crash", "slow", "drop")
    max_faults: int = 4
    description: str = ""

    def space(self) -> ChaosSpace:
        return ChaosSpace(self.n_nodes, self.horizon_us,
                          max_faults=self.max_faults, kinds=self.kinds,
                          protect=(0,))


# ----------------------------------------------------------------------
# expectations: schedule -> declarative HA assertions (pure function)
# ----------------------------------------------------------------------

def _covers_all(groups: Sequence[Sequence[int]], n_nodes: int) -> bool:
    covered = set()
    for g in groups:
        covered.update(g)
    return covered == set(range(n_nodes))


def ha_expectations(schedule: Sequence[dict], n_nodes: int,
                    n_locks: int, bound_us: float,
                    warmup_us: float = WARMUP_US) -> List[dict]:
    """Derive conservative ``ha.expect`` declarations from a schedule.

    Only *unambiguous* situations produce expectations — a failover
    assertion is emitted only for the chronologically first partition,
    with no overlapping fault that could slow detection or change
    quorum; a no-failover assertion only when no other partition muddies
    the window.  Everything else is left to the safety oracles: a false
    "missing failover" would poison every campaign, while a skipped
    expectation merely checks less.
    """
    quorum = n_nodes // 2 + 1
    parts = [f for f in schedule if f["kind"] == "partition"]
    crashes = [f for f in schedule if f["kind"] == "crash"]
    grays = [f for f in schedule if f["kind"] in ("slow", "stall")]
    crashed = {c["node"] for c in crashes}
    expects: List[dict] = []
    for p in parts:
        if p.get("oneway") or len(p["groups"]) != 2:
            continue
        if not _covers_all(p["groups"], n_nodes):
            continue  # uncut nodes bridge both sides: reachability blurs
        g0, g1 = set(p["groups"][0]), set(p["groups"][1])
        front_side, far = (g0, g1) if 0 in g0 else (g1, g0)
        if 0 not in front_side:
            continue  # pragma: no cover - groups always cover node 0
        start, until = float(p["start"]), float(p["until"])
        others = [q for q in parts if q is not p]
        if len(front_side) >= quorum:
            # failover must happen — judged only in a clean neighbourhood
            if start < warmup_us or until < start + bound_us:
                continue
            if any(float(q["start"]) <= start + bound_us for q in others):
                continue
            if any(float(g["start"]) <= start + bound_us for g in grays):
                continue
            if any(float(c["at"]) <= start + bound_us for c in crashes):
                continue
            victims = sorted(v for v in far
                             if v < n_locks and v not in crashed)
            if victims:
                expects.append({
                    "kind": "failover", "victims": victims,
                    "after": start, "by": start + bound_us,
                    "start": start, "until": until})
        else:
            # front is in the minority: it must not evict the far side
            if any(float(q["start"]) < until
                   and float(q["until"]) > start for q in others):
                continue
            victims = sorted(v for v in far if v not in crashed)
            if victims:
                expects.append({
                    "kind": "no-failover", "victims": victims,
                    "after": start, "by": until,
                    "start": start, "until": until})
    return expects


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------

def _locks(seed: int, n_nodes: int, schedule: Sequence[dict],
           fence: bool = True):
    """FT N-CoSED under chaos: phi detector (+ quorum gate) drives
    lock-home failover; actors tolerate bounded-retry failures."""
    from repro.net import Cluster
    from repro.monitor import PhiAccrualDetector, QuorumGate
    from repro.dlm import LockMode, NCoSEDManager

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    cluster.install_faults(plan_from_schedule(schedule))
    front, backs = cluster.nodes[0], cluster.nodes[1:]
    phi = PhiAccrualDetector(front, backs, period_us=PERIOD_US,
                             timeout_us=TIMEOUT_US)
    detector = QuorumGate(phi, hold_us=HOLD_US) if fence else phi
    manager = NCoSEDManager(cluster, n_locks=N_LOCKS, lease_us=800.0,
                            detector=detector)
    # detection bound for the HA liveness assertions: phi confirmation,
    # plus the gate hold, plus two probe periods of scheduling slack
    bound = (phi.detect_bound_us() + (HOLD_US if fence else 0.0)
             + 2.0 * PERIOD_US)
    horizon = SCENARIOS["locks"].horizon_us
    for exp in ha_expectations(schedule, n_nodes, N_LOCKS, bound):
        obs.trace.emit("ha.expect", node=-1, **exp)
    env = cluster.env
    rng = cluster.rng.get("chaos-locks")

    def actor(env, client, lock_i, shared, delay, hold):
        mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
        yield env.timeout(delay)
        try:
            yield client.acquire(lock_i, mode)
        except (LockError, FaultError, RdmaError):
            return  # giving up under faults is legal; splitting is not
        yield env.timeout(hold)
        try:
            yield client.release(lock_i)
        except (LockError, FaultError, RdmaError):
            pass

    for i in range(3 * n_nodes):
        client = manager.client(cluster.nodes[i % n_nodes])
        env.process(actor(env, client, i % N_LOCKS, rng.random() < 0.4,
                          rng.uniform(0.0, 0.8) * horizon,
                          rng.uniform(500.0, 3_000.0)),
                    name=f"chaos-lock-{i}")
    env.run(until=horizon)
    return obs


def _locks_nofence(seed: int, n_nodes: int, schedule: Sequence[dict],
                   fence: bool = False):
    return _locks(seed, n_nodes, schedule, fence=False)


def _ddss(seed: int, n_nodes: int, schedule: Sequence[dict],
          fence: bool = True):
    """Replicated DDSS coherence under chaos; data oracles judge."""
    from repro.net import Cluster
    from repro.ddss import DDSS, Coherence

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    cluster.install_faults(plan_from_schedule(schedule))
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    env = cluster.env
    rng = cluster.rng.get("chaos-ddss")
    horizon = SCENARIOS["ddss"].horizon_us
    tolerated = (DDSSError, FaultError, RdmaError, TimeoutError)

    def owner(env, client, model, replicas, keys_out):
        try:
            key = yield client.allocate(128, coherence=model, placement=0,
                                        delta=2, ttl_us=300.0,
                                        replicas=replicas)
        except tolerated:
            return
        keys_out.append(key)

    def worker(env, client, keys, stamp, delay):
        yield env.timeout(delay)
        if not keys:
            return
        key = keys[0]
        for i in range(1, 6):
            try:
                yield client.put(key, bytes([stamp]) * 96)
                yield client.get(key)
            except tolerated:
                pass
            yield env.timeout(rng.uniform(200.0, 900.0))
            try:
                yield client.get(key)
            except tolerated:
                pass

    models = [Coherence.NULL, Coherence.WRITE, Coherence.DELTA]
    for m_i, model in enumerate(models):
        keys: List[int] = []
        replicas = 1 if model is Coherence.NULL else 0
        opener = ddss.client(cluster.nodes[1 % n_nodes])
        p = env.process(owner(env, opener, model, replicas, keys),
                        name=f"chaos-ddss-alloc-{m_i}")
        env.run_until_event(p)
        for w in range(3):
            node = cluster.nodes[(1 + w) % n_nodes]
            env.process(worker(env, ddss.client(node), keys,
                               16 * (m_i + 1) + w,
                               rng.uniform(0.0, 0.3) * horizon),
                        name=f"chaos-ddss-{m_i}-{w}")
    env.run(until=horizon)
    return obs


def _txn(seed: int, n_nodes: int, schedule: Sequence[dict],
         fence: bool = True):
    """Multi-key transactions under chaos: transfers over units homed
    on the protected front node (the data path never faults, so every
    outcome is determinate) while the 2PL workers' N-CoSED lock homes
    are spread across faultable nodes — failed acquires must surface
    as clean aborts, never as torn or lost writes.  Judged by the txn
    oracle plus the usual lock/HA choreography."""
    from repro.net import Cluster
    from repro.monitor import PhiAccrualDetector, QuorumGate
    from repro.dlm import NCoSEDManager
    from repro.ddss import DDSS, Coherence
    from repro.txn import OCCTxnClient, TwoPLTxnClient
    from repro.workloads.tpcc import transfer_txn

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    cluster.install_faults(plan_from_schedule(schedule))
    front, backs = cluster.nodes[0], cluster.nodes[1:]
    phi = PhiAccrualDetector(front, backs, period_us=PERIOD_US,
                             timeout_us=TIMEOUT_US)
    detector = QuorumGate(phi, hold_us=HOLD_US) if fence else phi
    manager = NCoSEDManager(cluster, n_locks=N_LOCKS, lease_us=800.0,
                            detector=detector)
    bound = (phi.detect_bound_us() + (HOLD_US if fence else 0.0)
             + 2.0 * PERIOD_US)
    for exp in ha_expectations(schedule, n_nodes, N_LOCKS, bound):
        obs.trace.emit("ha.expect", node=-1, **exp)
    env = cluster.env
    rng = cluster.rng.get("chaos-txn")
    horizon = SCENARIOS["txn"].horizon_us
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    accounts: List[int] = []

    def setup(env):
        store = ddss.client(front)
        init = OCCTxnClient(store)
        for _ in range(N_LOCKS):
            key = yield store.allocate(32, coherence=Coherence.VERSION,
                                       placement=front.id)
            accounts.append(key)
            yield init.init(key, (100).to_bytes(8, "big")
                            + b"\x00" * 24)

    env.run_until_event(env.process(setup(env), name="chaos-txn-setup"))
    lock_of = {k: i for i, k in enumerate(accounts)}

    def actor(env, client, delay, n_txns):
        yield env.timeout(delay)
        for _ in range(n_txns):
            i, j = rng.choice(len(accounts), size=2, replace=False)
            txn = transfer_txn(accounts[int(i)], accounts[int(j)],
                               int(rng.integers(1, 20)))
            yield client.run(txn)  # aborts are absorbed into the result
            yield env.timeout(rng.uniform(100.0, 600.0))

    for i in range(2 * n_nodes):
        store = ddss.client(front)
        if i % 2:
            client = TwoPLTxnClient(store, manager.client(front),
                                    lock_of=lock_of, max_attempts=4)
        else:
            client = OCCTxnClient(store, max_attempts=4)
        env.process(actor(env, client, rng.uniform(0.0, 0.7) * horizon,
                          n_txns=3),
                    name=f"chaos-txn-{i}")
    env.run(until=horizon)
    return obs


SCENARIOS: Dict[str, ChaosScenario] = {
    "locks": ChaosScenario(
        name="locks", builder=_locks, n_nodes=5, horizon_us=40_000.0,
        fence=True, expect_clean=True,
        description="FT N-CoSED + phi detector + quorum gate: "
                    "failover within bound, no split-brain"),
    "locks-nofence": ChaosScenario(
        name="locks-nofence", builder=_locks_nofence, n_nodes=5,
        horizon_us=40_000.0, fence=False, expect_clean=False,
        kinds=("partition",), max_faults=3,
        description="seeded bug: same scenario without the quorum "
                    "gate; minority partitions evict the majority"),
    "ddss": ChaosScenario(
        name="ddss", builder=_ddss, n_nodes=5, horizon_us=30_000.0,
        fence=True, expect_clean=True,
        kinds=("partition", "crash", "slow", "stall", "drop"),
        description="replicated DDSS coherence contracts under "
                    "partitions, crashes and gray failures"),
    "txn": ChaosScenario(
        name="txn", builder=_txn, n_nodes=5, horizon_us=40_000.0,
        fence=True, expect_clean=True, max_faults=3,
        description="OCC + 2PL transfers under chaos: committed txns "
                    "stay serializable, failed lock acquires abort "
                    "cleanly, failover choreography holds"),
}


def get_scenario(name: str) -> ChaosScenario:
    sc = SCENARIOS.get(name)
    if sc is None:
        raise ConfigError(f"unknown chaos scenario {name!r}; available: "
                          f"{', '.join(sorted(SCENARIOS))}")
    return sc
