"""repro — reproduction of "Designing Efficient Systems Services and
Primitives for Next-Generation Data-Centers" (Vaidyanathan, Narravula,
Balaji, Panda; IPDPS 2007).

The paper's three-layer framework over a simulated RDMA cluster:

* communication protocols — :mod:`repro.transport` (TCP emulation, SDP,
  ZSDP, AZ-SDP, flow control) over :mod:`repro.net` (RDMA NIC model);
* service primitives — :mod:`repro.ddss` (distributed data sharing
  substrate) and :mod:`repro.dlm` (SRSL / DQNL / N-CoSED lock managers);
* advanced services — :mod:`repro.cache` (cooperative caching),
  :mod:`repro.monitor` (RDMA resource monitoring) and
  :mod:`repro.reconfig` (dynamic reconfiguration with QoS);

plus the :mod:`repro.datacenter` multi-tier testbed,
:mod:`repro.workloads` generators and the :mod:`repro.apps.storm` query
engine used by the evaluation.

Quickstart::

    from repro import Cluster, DDSS, Coherence

    cluster = Cluster(n_nodes=4)
    ddss = DDSS(cluster)
    client = ddss.client(cluster.nodes[1])

    def app(env):
        key = yield client.allocate(64, coherence=Coherence.WRITE)
        yield client.put(key, b"hello")
        return (yield client.get(key))

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run()
"""

from repro.ddss import DDSS, Coherence
from repro.dlm import DQNLManager, LockMode, NCoSEDManager, SRSLManager
from repro.net import Cluster, NetworkParams
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Coherence",
    "DDSS",
    "DQNLManager",
    "Environment",
    "LockMode",
    "NCoSEDManager",
    "NetworkParams",
    "SRSLManager",
    "__version__",
]
