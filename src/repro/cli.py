"""Command-line figure runner: regenerate paper experiments quickly.

Usage::

    python -m repro list
    python -m repro run fig5a
    python -m repro run fig3a fig8a
    python -m repro run all

The CLI runs *quick* variants (reduced sweeps) of the experiments so a
user can see every figure's shape in seconds to a couple of minutes;
the full-fidelity runs live in ``benchmarks/`` under pytest-benchmark.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.bench import BenchTable, improvement_pct
from repro.bench.plot import ascii_bars

__all__ = ["main"]


# ---------------------------------------------------------------------------
# quick experiment runners
# ---------------------------------------------------------------------------

def _fig3a() -> List[BenchTable]:
    from repro.net import Cluster
    from repro.ddss import DDSS, Coherence

    models = [Coherence.NULL, Coherence.READ, Coherence.WRITE,
              Coherence.STRICT, Coherence.VERSION, Coherence.DELTA]
    table = BenchTable("Fig 3a: DDSS put() latency (us)",
                       ["size"] + [m.value for m in models])
    for size in (1, 1024, 4096):
        row = [size]
        for model in models:
            cluster = Cluster(n_nodes=4, seed=1)
            ddss = DDSS(cluster, segment_bytes=64 * 1024)
            client = ddss.client(cluster.nodes[1])

            def app(env, model=model, size=size):
                key = yield client.allocate(size + 8, coherence=model,
                                            placement=3)
                t0 = env.now
                for _ in range(10):
                    yield client.put(key, b"x" * size)
                return (env.now - t0) / 10

            p = cluster.env.process(app(cluster.env))
            cluster.env.run_until_event(p)
            row.append(round(p.value, 2))
        table.add(*row)
    return [table]


def _fig3b() -> List[BenchTable]:
    from repro.net import Cluster
    from repro.apps.storm import StormEngine

    table = BenchTable("Fig 3b: STORM query time (us)",
                       ["records", "traditional", "ddss", "improv_%"])
    for n in (1_000, 10_000, 100_000):
        vals = {}
        for use_ddss in (False, True):
            cluster = Cluster(n_nodes=5, seed=3)
            engine = StormEngine(cluster, n_records=n,
                                 use_ddss=use_ddss, seed=3)

            def work(env):
                t0 = env.now
                for q in range(5):
                    yield engine.run_query(0, 2000 + 500 * q)
                return (env.now - t0) / 5

            p = cluster.env.process(work(cluster.env))
            cluster.env.run_until_event(p, limit=1e10)
            vals[use_ddss] = p.value
        table.add(n, round(vals[False], 1), round(vals[True], 1),
                  round(improvement_pct(vals[False], vals[True]), 1))
    return [table]


def _fig5(mode_name: str) -> List[BenchTable]:
    from repro.dlm import (DQNLManager, LockMode, NCoSEDManager,
                           SRSLManager, cascade_latency)

    mode = (LockMode.SHARED if mode_name == "shared"
            else LockMode.EXCLUSIVE)
    table = BenchTable(f"Fig 5: {mode.value} cascade latency (us)",
                       ["waiters", "SRSL", "DQNL", "N-CoSED"])
    for n in (2, 8, 16):
        row = [n]
        for cls in (SRSLManager, DQNLManager, NCoSEDManager):
            row.append(round(cascade_latency(cls, n, mode)["cascade_us"],
                             1))
        table.add(*row)
    return [table]


def _fig6() -> List[BenchTable]:
    from repro.datacenter import DataCenter

    table = BenchTable("Fig 6 (quick): TPS, 2 proxies",
                       ["size", "AC", "BCC", "CCWR", "MTACC", "HYBCC"])
    for size in (8_192, 65_536):
        row = [f"{size // 1024}k"]
        for scheme in ("AC", "BCC", "CCWR", "MTACC", "HYBCC"):
            dc = DataCenter(n_proxies=2, n_app=2, scheme=scheme,
                            n_docs=600, doc_bytes=size,
                            cache_bytes=4 * 1024 * 1024,
                            n_sessions=24, seed=1)
            row.append(round(dc.run_tps(warmup_us=50_000,
                                        measure_us=100_000)))
        table.add(*row)
    return [table]


def _fig8a() -> List[BenchTable]:
    from repro.monitor.experiments import accuracy_trace

    table = BenchTable("Fig 8a: thread-count deviation",
                       ["scheme", "mean_abs_dev", "max_dev"])
    bars = {}
    for scheme in ("socket-async", "socket-sync", "rdma-async",
                   "rdma-sync"):
        r = accuracy_trace(scheme, duration_us=150_000.0, seed=0)
        table.add(scheme, round(r.mean_abs_deviation, 2),
                  r.max_deviation)
        bars[scheme] = max(r.mean_abs_deviation, 0.01)
    print(ascii_bars(bars, title="mean |reported-actual| (threads)"))
    return [table]


def _fig8b() -> List[BenchTable]:
    from repro.monitor.experiments import lb_throughput

    table = BenchTable("Fig 8b (quick): improvement vs socket-async (%)",
                       ["alpha", "socket-sync", "rdma-async",
                        "rdma-sync", "e-rdma-sync"])
    for alpha in (0.9, 0.5):
        base = lb_throughput("socket-async", alpha,
                             measure_us=150_000.0, seed=0)
        row = [alpha]
        for scheme in ("socket-sync", "rdma-async", "rdma-sync",
                       "e-rdma-sync"):
            tps = lb_throughput(scheme, alpha, measure_us=150_000.0,
                                seed=0)
            row.append(round(improvement_pct(tps, base), 1))
        table.add(*row)
    return [table]


def _sdp() -> List[BenchTable]:
    from repro.net import Cluster, NetworkParams
    from repro.transport import (AzSdpEndpoint, BufferedSdpEndpoint,
                                 ZeroCopySdpEndpoint)

    table = BenchTable("SDP bandwidth (MB/s)",
                       ["msg", "BSDP", "ZSDP", "AZ-SDP"])
    for size in (1_024, 65_536, 262_144):
        row = [size]
        for cls in (BufferedSdpEndpoint, ZeroCopySdpEndpoint,
                    AzSdpEndpoint):
            cluster = Cluster(n_nodes=2,
                              params=NetworkParams.infiniband(), seed=0)
            server, client = cls(cluster.nodes[0]), cls(cluster.nodes[1])
            listener = server.listen(1)
            marks = {}

            def rx(env):
                conn = yield listener.accept()
                for _ in range(20):
                    yield conn.recv()
                marks["end"] = env.now

            def tx(env, cls=cls, size=size):
                conn = yield client.connect(0, port=1)
                marks["start"] = env.now
                for i in range(20):
                    if cls is AzSdpEndpoint:
                        yield conn.send(i, size=size, buf=f"b{i % 8}")
                    else:
                        yield conn.send(i, size=size)

            cluster.env.process(rx(cluster.env))
            cluster.env.process(tx(cluster.env))
            cluster.env.run()
            row.append(round(20 * size / (marks["end"] - marks["start"]),
                             1))
        table.add(*row)
    return [table]


def _flowctl() -> List[BenchTable]:
    from repro.net import Cluster
    from repro.transport import (CreditFlowSender, FlowReceiver,
                                 PacketizedFlowSender)

    table = BenchTable("Flow control (MB/s)",
                       ["msg", "credit", "packetized", "speedup"])
    for size in (1, 64, 8_192):
        vals = {}
        for cls in (CreditFlowSender, PacketizedFlowSender):
            cluster = Cluster(n_nodes=2, seed=0)
            rx = FlowReceiver(cluster.nodes[1], nbufs=8, buf_bytes=8_192)
            p = cluster.env.process(cls(cluster.nodes[0], rx)
                                    .stream(200, size))
            cluster.env.run_until_event(p, limit=1e10)
            vals[cls.__name__] = p.value
        credit = vals["CreditFlowSender"]
        packed = vals["PacketizedFlowSender"]
        table.add(size, round(credit, 2), round(packed, 2),
                  round(packed / credit, 1))
    return [table]


def _reconfig() -> List[BenchTable]:
    from repro.reconfig import burst_recovery_time

    table = BenchTable("Reconfiguration responsiveness",
                       ["config", "detection_us"])
    for name, scheme, period in (
            ("coarse 25ms", "socket-async", 25_000.0),
            ("fine 1ms", "rdma-sync", 1_000.0)):
        r = burst_recovery_time(monitor_scheme=scheme,
                                check_every_us=period,
                                burst_requests=600, seed=0)
        detect = r["detection_us"]
        table.add(name, "missed" if detect is None else round(detect))
    return [table]


EXPERIMENTS: Dict[str, Callable[[], List[BenchTable]]] = {
    "fig3a": _fig3a,
    "fig3b": _fig3b,
    "fig5a": lambda: _fig5("shared"),
    "fig5b": lambda: _fig5("exclusive"),
    "fig6": _fig6,
    "fig8a": _fig8a,
    "fig8b": _fig8b,
    "sdp": _sdp,
    "flowctl": _flowctl,
    "reconfig": _reconfig,
}


# ---------------------------------------------------------------------------
# observability subcommand
# ---------------------------------------------------------------------------

def _obs_main(args) -> int:
    from repro.obs.scenarios import SCENARIOS, run_scenario

    if args.action == "list":
        for name in sorted(SCENARIOS):
            print(name)
        return 0
    if not args.scenario:
        print("obs run requires a scenario name; try: repro obs list",
              file=sys.stderr)
        return 2
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario: {args.scenario}", file=sys.stderr)
        print(f"available: {', '.join(sorted(SCENARIOS))}",
              file=sys.stderr)
        return 2
    obs = run_scenario(args.scenario, seed=args.seed,
                       sanitize=not args.no_sanitize, strict=False)
    if args.json:
        obs.export_json(args.json)
        print(f"wrote {args.json}")
    if args.trace:
        obs.export_trace_json(args.trace)
        print(f"wrote {args.trace}")
    summary = obs.to_dict()
    print(f"[{args.scenario}] sim time: {summary['sim_now_us']:.1f} us, "
          f"events: {summary['events']['emitted']}")
    for etype, n in sorted(summary["events"]["by_type"].items()):
        print(f"  {etype:24s} {n}")
    bad = obs.violations()
    if obs.sanitizers:
        print(f"sanitizers: {len(obs.sanitizers)} attached, "
              f"{len(bad)} violation(s)")
        for v in bad[:10]:
            print(f"  [{v['sanitizer']}] t={v['t']:.1f} {v['msg']}")
    return 1 if bad else 0


# ---------------------------------------------------------------------------
# check subcommand (trace-replay correctness oracles)
# ---------------------------------------------------------------------------

def _check_print_verdict(r: dict) -> None:
    where = r.get("check") or r.get("trace")
    kern = f" [{r['kernel']}]" if "kernel" in r else ""
    print(f"[{where}]{kern} events={r['events']} "
          f"verdict={r['verdict']}")
    for oname in sorted(r["oracles"]):
        o = r["oracles"][oname]
        print(f"  {oname:6s} checked={o['checked']:6d} "
              f"violations={len(o['violations'])}")
        for v in o["violations"][:5]:
            t = "end" if v["t"] is None else f"{v['t']:.1f}"
            print(f"    t={t} #{v['index']} {v['msg']}")
    for s in r.get("sanitizers", ())[:5]:
        print(f"  [sanitizer {s['sanitizer']}] t={s['t']:.1f} {s['msg']}")
    if "repro" in r:
        rep = r["repro"]
        print(f"  reproducer: {rep['kept_events']}/"
              f"{rep['original_events']} events "
              f"({rep['probes']} probes)")


def _check_main(args) -> int:
    import json as _json

    from repro.verify import (CHECKS, check_trace, metamorphic_sweep,
                              run_check)

    if args.action == "list":
        for name in sorted(CHECKS):
            print(name)
        return 0

    if args.action == "trace":
        if not args.names:
            print("check trace requires a trace file path",
                  file=sys.stderr)
            return 2
        results = [check_trace(p, shrink=not args.no_shrink)
                   for p in args.names]
    elif args.action == "meta":
        rep = metamorphic_sweep(
            checks=args.names or None,
            seeds=[int(s) for s in args.seeds.split(",")],
            node_counts=[int(n) for n in args.nodes.split(",")],
            workers=args.workers)
        print(f"[meta] runs={rep['runs']} pairs={rep['pairs']} "
              f"kernel_mismatches={len(rep['kernel_mismatches'])} "
              f"violations={len(rep['violations'])} "
              f"verdict={rep['verdict']}")
        for m in rep["kernel_mismatches"][:5]:
            shas = " ".join(f"{k}={v}" for k, v in sorted(m["shas"].items()))
            print(f"  MISMATCH {m['check']} seed={m['seed']}: {shas}")
        for v in rep["violations"][:5]:
            print(f"  VIOLATION {v['check']} [{v['kernel']}] "
                  f"seed={v['seed']}: {v['violations']} finding(s)")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(rep, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json}")
        return 0 if rep["verdict"] == "ok" else 1
    else:  # run
        names = args.names or ["all"]
        if "all" in names:
            names = sorted(CHECKS)
        unknown = [n for n in names if n not in CHECKS]
        if unknown:
            print(f"unknown check(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"available: {', '.join(sorted(CHECKS))}",
                  file=sys.stderr)
            return 2
        kernels = (["fast", "heap", "slow"] if args.both_kernels
                   else [args.kernel])
        results = [run_check(n, seed=args.seed, kernel=k,
                             shrink=not args.no_shrink)
                   for n in names for k in kernels]

    for r in results:
        _check_print_verdict(r)
    bad = [r for r in results if r["verdict"] != "ok"]
    if args.json:
        doc = {"results": results,
               "verdict": "ok" if not bad else "violation"}
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    print(f"{len(results) - len(bad)}/{len(results)} checks ok")
    return 1 if bad else 0


# ---------------------------------------------------------------------------
# chaos subcommand (fault-schedule campaigns + shrinking)
# ---------------------------------------------------------------------------

def _chaos_print_record(rec: dict) -> None:
    print(f"[{rec['scenario']} seed={rec['seed']}"
          f"{' index=' + str(rec['index']) if 'index' in rec else ''}"
          f" {rec['kernel']}] events={rec['events']} "
          f"sha={rec['trace_sha']} verdict={rec['verdict']}")
    for label in rec["faults"]:
        print(f"  fault: {label}")
    for msg in rec["violation_msgs"]:
        print(f"  VIOLATION: {msg}")


def _chaos_load_schedule(path: str):
    import json as _json

    with open(path, encoding="utf-8") as fh:
        doc = _json.load(fh)
    # accept a bare schedule list, a run record, or a shrink report
    if isinstance(doc, dict):
        doc = doc.get("schedule", doc)
    if not isinstance(doc, list):
        raise ValueError(f"{path} holds no fault schedule")
    return doc


def _chaos_main(args) -> int:
    import json as _json

    from repro.chaos import (SCENARIOS, find_failing, get_scenario,
                             run_campaign, run_schedule, shrink_schedule)
    from repro.errors import ConfigError

    if args.action == "list":
        for name in sorted(SCENARIOS):
            sc = SCENARIOS[name]
            clean = "clean" if sc.expect_clean else "SEEDED BUG"
            print(f"  {name:14s} n_nodes={sc.n_nodes} "
                  f"horizon={sc.horizon_us:.0f}us [{clean}]")
            print(f"  {'':14s} {sc.description}")
        return 0

    if args.action == "report":
        if not args.names:
            print("chaos report requires a verdict JSON path",
                  file=sys.stderr)
            return 2
        with open(args.names[0], encoding="utf-8") as fh:
            v = _json.load(fh)
        print(f"[chaos seed={v['seed']}] runs={v['runs']} "
              f"errors={v['run_errors']} "
              f"mismatches={len(v['kernel_mismatches'])} "
              f"findings={len(v['findings'])} "
              f"violations={len(v['violations'])} verdict={v['verdict']}")
        for e in v["violations"][:10]:
            print(f"  VIOLATION {e['scenario']}#{e['index']} "
                  f"[{e['kernel']}]: {e['msgs'][:1]}")
        for e in v["findings"][:10]:
            print(f"  finding {e['scenario']}#{e['index']} "
                  f"[{e['kernel']}]: {len(e['msgs'])} msg(s)")
        return 0 if v["verdict"] == "ok" else 1

    kernels = ["fast", "slow"] if args.both_kernels else [args.kernel]

    if args.action == "run":
        names = args.names or ["locks", "ddss"]
        try:
            verdict = run_campaign(
                scenarios=names, seed=args.seed,
                n_schedules=args.schedules, kernels=kernels,
                workers=args.workers, store_path=args.store,
                progress=False)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"[chaos seed={args.seed}] runs={verdict['runs']} "
              f"errors={verdict['run_errors']} "
              f"mismatches={len(verdict['kernel_mismatches'])} "
              f"findings={len(verdict['findings'])} "
              f"violations={len(verdict['violations'])} "
              f"verdict={verdict['verdict']}")
        for e in verdict["violations"][:10]:
            print(f"  VIOLATION {e['scenario']}#{e['index']} "
                  f"[{e['kernel']}]:")
            for msg in e["msgs"][:3]:
                print(f"    {msg}")
            for label in e["faults"]:
                print(f"    fault: {label}")
        for m in verdict["kernel_mismatches"][:5]:
            print(f"  KERNEL MISMATCH {m['scenario']}#{m['index']}: "
                  f"{m['shas']}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(verdict, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0 if verdict["verdict"] == "ok" else 1

    # replay / shrink operate on one scenario + one schedule
    if not args.names:
        print(f"chaos {args.action} requires a scenario name; "
              f"try: repro chaos list", file=sys.stderr)
        return 2
    name = args.names[0]
    try:
        scenario = get_scenario(name)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.schedule:
        schedule = _chaos_load_schedule(args.schedule)
        index = None
    elif args.action == "shrink" and args.index is None:
        hit = find_failing(name, seed=args.seed,
                           n_schedules=args.schedules,
                           kernel=kernels[0])
        if hit is None:
            print(f"no failing schedule for {name!r} in the first "
                  f"{args.schedules} samples of seed {args.seed}")
            return 1
        schedule, index = hit["schedule"], hit["index"]
        print(f"shrinking {name}#{index} (seed {args.seed})")
    else:
        index = args.index if args.index is not None else 0
        schedule = scenario.space().sample(args.seed, index)

    if args.action == "replay":
        rec = run_schedule(name, schedule, args.seed, kernel=kernels[0])
        if index is not None:
            rec["index"] = index
        _chaos_print_record(rec)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(rec, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0 if rec["verdict"] == "ok" else 1

    # shrink
    report = shrink_schedule(name, schedule, args.seed,
                             kernel=kernels[0],
                             max_probes=args.max_probes)
    if not report["failed"]:
        print(f"schedule does not fail {name!r}; nothing to shrink")
        return 1
    print(f"shrunk {report['original_faults']} -> "
          f"{report['kept_faults']} fault(s) "
          f"in {report['probes']} probes:")
    for label in report["labels"]:
        print(f"  {label}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# lab subcommand (parallel sweeps + resumable store)
# ---------------------------------------------------------------------------

def _lab_store_and_sweep(args):
    """Resolve (sweep, store) from a packaged name or a store directory."""
    import os

    from repro.errors import ConfigError
    from repro.lab import ResultStore, SWEEPS, packaged_sweep, store_for

    name = args.sweep
    if name in SWEEPS:
        sweep = packaged_sweep(name)
        store = store_for(name, root=args.store_root)
        if store.has_sweep():
            on_disk = store.load_sweep()
            if on_disk.spec_hash() != sweep.spec_hash():
                print(f"warning: store at {store.path} was written by a "
                      f"different version of sweep {name!r}; stale "
                      f"records are kept but may no longer match",
                      file=sys.stderr)
        return sweep, store
    if os.path.isdir(name):
        store = ResultStore(name)
        return store.load_sweep(), store
    raise ConfigError(
        f"unknown sweep {name!r} (not packaged, not a store directory); "
        f"try: repro lab ls")


def _lab_main(args) -> int:
    import json
    import os

    from repro.errors import ConfigError
    from repro.lab import (DEFAULT_ROOT, ResultStore, Runner, RetryPolicy,
                           SWEEPS, merge_tables, store_for)

    if args.action == "ls":
        print("packaged sweeps:")
        for name in sorted(SWEEPS):
            sweep = SWEEPS[name]()
            n = len(sweep.expand())
            store = store_for(name, root=args.store_root)
            state = ""
            if store.has_sweep():
                done = len(store.completed_ids())
                state = f"   [{done}/{n} complete on disk]"
            print(f"  {name:18s} {n:4d} runs  "
                  f"({sweep.scenario}){state}")
        root = args.store_root or DEFAULT_ROOT
        if os.path.isdir(root):
            extra = sorted(d for d in os.listdir(root)
                           if d not in SWEEPS
                           and os.path.isdir(os.path.join(root, d)))
            for d in extra:
                print(f"  {d:18s} (store only: {os.path.join(root, d)})")
        return 0

    try:
        sweep, store = _lab_store_and_sweep(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "show":
        records = store.records()
        if not records:
            print(f"no completed runs in {store.path}", file=sys.stderr)
            return 1
        for table in merge_tables(sweep, store):
            table.show()
        print(f"\n{len(records)}/{len(sweep.expand())} runs complete "
              f"in {store.path}")
        return 0

    # run / resume
    if args.action == "resume" and not store.has_sweep():
        print(f"nothing to resume: no store at {store.path} "
              f"(use: repro lab run {args.sweep})", file=sys.stderr)
        return 2
    runner = Runner(
        sweep, store, workers=args.workers, timeout_s=args.timeout,
        retry=RetryPolicy(retries=args.retries),
        progress=not args.no_progress)
    report = runner.run()
    print(f"[lab {sweep.name}] {report['completed']} ran, "
          f"{report['skipped']} skipped, {report['failed']} failed "
          f"({report['wall_s']:.1f}s wall, workers={args.workers})")
    for failure in report["failures"]:
        print(f"  FAILED {failure['run_id']} "
              f"params={failure['params']} after "
              f"{failure['attempts']} attempt(s): {failure['error']}",
              file=sys.stderr)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.report}")
    if report["interrupted"]:
        print(f"interrupted — continue with: "
              f"repro lab resume {args.sweep}", file=sys.stderr)
        return 130
    if not report["failed"] and not args.no_tables:
        for table in merge_tables(sweep, store):
            table.show()
    return 1 if report["failed"] else 0


def _lab_bench_main(args) -> int:
    import json

    from repro.lab.labbench import run_lab_bench

    report = run_lab_bench(workers=args.workers, sweep_name=args.sweep)
    res = report["results"]
    print(f"lab bench ({report['runs']} runs, sweep {report['sweep']}, "
          f"{report['cpu_count']} cpus):")
    print(f"  serial   {res['serial_wall_s']:>8.2f} s")
    speedup = ("skipped" if res["speedup"] is None
               else f"{res['speedup']:.2f}x")
    print(f"  workers={report['workers']:<2d} "
          f"{res['parallel_wall_s']:>6.2f} s   "
          f"({speedup})")
    if res.get("speedup_skipped_reason"):
        print(f"  speedup skipped: {res['speedup_skipped_reason']}")
    print(f"  records identical: {res['records_identical']}   "
          f"tables identical: {res['tables_identical']}")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if not res["records_identical"] or not res["tables_identical"]:
        print("FATAL: serial and parallel runs disagree",
              file=sys.stderr)
        return 1
    if res["serial_failed"] or res["parallel_failed"]:
        print("FATAL: lab bench had failing runs", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# txn subcommand (multi-key transactions: OCC vs 2PL)
# ---------------------------------------------------------------------------

def _txn_main(args) -> int:
    import json as _json

    from repro.txn.scenarios import build_txn_scenario
    from repro.verify import ALL_ORACLES, TraceView, replay
    from repro.verify.suites import _kernel

    if args.action == "run":
        with _kernel(args.kernel):
            obs, stats = build_txn_scenario(
                args.variant, args.seed, args.n_nodes,
                n_keys=args.n_keys)
        view = TraceView.from_obs(obs).require_complete()
        oracles = [f() for f in ALL_ORACLES]
        violations = replay(view, oracles)
        sanitizers = obs.violations()
        ok = (not violations and not sanitizers
              and stats["conserved"])
        print(f"[txn {args.variant}] seed={args.seed} "
              f"n_keys={args.n_keys} [{args.kernel}]")
        print(f"  commits={stats['commits']} aborts={stats['aborts']} "
              f"attempt_aborts={stats['attempt_aborts']} "
              f"wedges={stats['wedges']}")
        print(f"  abort_rate={stats['abort_rate']:.3f} "
              f"commit_per_s={stats['commit_per_s']:.1f} "
              f"conserved={stats['conserved']}")
        for o in oracles:
            print(f"  {o.NAME:6s} checked={o.checked:6d} "
                  f"violations={len(o.violations)}")
        for v in violations[:5]:
            print(f"    VIOLATION: {v['msg']}")
        print(f"verdict={'ok' if ok else 'violation'}")
        if args.json:
            doc = {"stats": stats,
                   "oracles": {o.NAME: o.to_dict() for o in oracles},
                   "sanitizers": list(sanitizers),
                   "verdict": "ok" if ok else "violation"}
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0 if ok else 1

    # bench: the packaged contention sweep, deterministic output
    from repro.lab import ResultStore, Runner, merge_tables
    from repro.lab.scenarios import packaged_sweep

    sweep = packaged_sweep("txn")
    store = ResultStore(None)
    runner = Runner(sweep, store, workers=args.workers)
    report = runner.run()
    if report["failed"]:
        for failure in report["failures"]:
            print(f"FAILED {failure['run_id']}: {failure['error']}",
                  file=sys.stderr)
        return 1
    tables = merge_tables(sweep, store)
    for table in tables:
        table.show()
    records = sorted(store.records(), key=lambda r: r["run_id"])
    doc = {
        "sweep": sweep.name,
        "records": [{"run_id": r["run_id"], "params": r["params"],
                     "seed": r["seed"], "repeat": r["repeat"],
                     "result": r["result"]} for r in records],
        "tables": [{"title": t.title, "columns": t.columns,
                    "rows": t.rows} for t in tables],
    }
    bad = [r for r in records if not r["result"]["conserved"]]
    doc["verdict"] = "ok" if not bad else "violation"
    with open(args.out, "w", encoding="utf-8") as fh:
        _json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if bad:
        print("FATAL: conservation failed in a sweep cell",
              file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# topo subcommand (rack/spine fabric + sharded namespaces)
# ---------------------------------------------------------------------------

#: packaged topo scenarios for ``repro topo ls`` / ``run``
_TOPO_SCENARIOS = {
    "lab": ("repro.topo.scenarios:build_topo_scenario",
            "100+ nodes / 4 racks / 1M+ RUBiS sessions with a "
            "rebalance-during-load crash fault"),
    "shard-check": ("repro.topo.scenarios:shard_check",
                    "2-rack sharded DDSS + locks with a live ring "
                    "rebalance (also packaged as `repro check shard`)"),
}


def _topo_main(args) -> int:
    import json as _json

    from repro.verify import ALL_ORACLES, TraceView, replay
    from repro.verify.suites import _kernel

    if args.action == "ls":
        for name in sorted(_TOPO_SCENARIOS):
            dotted, desc = _TOPO_SCENARIOS[name]
            print(f"{name:12s} {dotted}")
            print(f"{'':12s}   {desc}")
        return 0

    if args.action == "run":
        from repro.topo.scenarios import build_topo_scenario, shard_check

        with _kernel(args.kernel):
            if args.scenario == "shard-check":
                obs = shard_check(args.seed, args.n_nodes)
                stats = {}
            else:
                obs, stats = build_topo_scenario(seed=args.seed)
        view = TraceView.from_obs(obs).require_complete()
        oracles = [f() for f in ALL_ORACLES]
        violations = replay(view, oracles)
        sanitizers = obs.violations()
        ok = not violations and not sanitizers
        print(f"[topo {args.scenario}] seed={args.seed} "
              f"[{args.kernel}] events={len(view)} "
              f"sim_now_us={view.meta.get('sim_now_us')}")
        for k in sorted(stats):
            print(f"  {k}={stats[k]}")
        for o in oracles:
            print(f"  {o.NAME:6s} checked={o.checked:6d} "
                  f"violations={len(o.violations)}")
        for v in violations[:5]:
            print(f"    VIOLATION: {v['msg']}")
        for s in list(sanitizers)[:5]:
            print(f"    SANITIZER: {s}")
        print(f"verdict={'ok' if ok else 'violation'}")
        if args.json:
            doc = {"scenario": args.scenario, "seed": args.seed,
                   "kernel": args.kernel, "stats": stats,
                   "oracles": {o.NAME: o.to_dict() for o in oracles},
                   "sanitizers": list(sanitizers),
                   "verdict": "ok" if ok else "violation"}
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0 if ok else 1

    # bench: deterministic simulated figures of merit + regression gate
    from repro.bench.engine import RESULTS_DIR
    from repro.bench.topo import (check_topo_regression, run_topo_suite,
                                  write_topo_report)

    report = run_topo_suite(seed=args.seed)
    res = report["results"]
    vl, lt = res["verb_latency"], res["lock_throughput"]
    print(f"topo bench (seed {args.seed}):")
    print(f"  intra-rack read   {vl['intra_rack_us']:>10.4f} us RTT")
    print(f"  cross-rack read   {vl['cross_rack_us']:>10.4f} us RTT "
          f"({vl['cross_over_intra']:.2f}x intra)")
    print(f"  single-home locks {lt['single_home_ops_per_s']:>10,.1f} /s")
    print(f"  sharded locks     {lt['sharded_ops_per_s']:>10,.1f} /s "
          f"({lt['speedup']:.2f}x single-home)")
    for path in write_topo_report(report, args.out,
                                  None if args.no_archive
                                  else RESULTS_DIR):
        print(f"wrote {path}")
    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = _json.load(fh)
        except (OSError, ValueError):
            print(f"no usable baseline at {args.baseline}; "
                  f"regression gate skipped")
            return 0
        failures = check_topo_regression(report, baseline)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print("regression gate passed (>25% drop would fail)")
    return 0


# ---------------------------------------------------------------------------
# lock-arena subcommand
# ---------------------------------------------------------------------------

#: scheme -> one-line description for ``repro locks ls``
_LOCK_SCHEMES = {
    "srsl": "server-based send/recv locking (two-sided baseline)",
    "dqnl": "distributed queue via one-sided CAS (exclusive only)",
    "ncosed": "paper's combined shared/exclusive one-sided design",
    "mcs": "RDMA-MCS queue lock: per-client queue node, epoch-fenced",
    "alock": "asymmetric cohort lock: local pass-off + tournament word",
}


def _locks_main(args) -> int:
    import json as _json

    if args.action == "ls":
        for name, desc in _LOCK_SCHEMES.items():
            print(f"{name:8s} {desc}")
        print("chaos modes: none | crash "
              "(two crashes, lease-fenced schemes reclaim)")
        return 0

    if args.action == "run":
        from repro.dlm.tournament import lock_tournament
        from repro.errors import LockError
        from repro.verify.suites import _kernel

        try:
            with _kernel(args.kernel):
                stats = lock_tournament(args.scheme,
                                        n_clients=args.clients,
                                        alpha=args.alpha,
                                        chaos=args.chaos,
                                        seed=args.seed)
        except LockError as exc:
            print(f"[locks {args.scheme}] {exc}", file=sys.stderr)
            print("verdict=violation")
            return 1
        print(f"[locks {args.scheme}] clients={args.clients} "
              f"alpha={args.alpha} chaos={args.chaos} seed={args.seed} "
              f"[{args.kernel}]")
        for k in ("grants", "failures", "ops_per_s", "mean_wait_us",
                  "p99_wait_us", "max_wait_us", "jain", "max_chain",
                  "events", "sim_now_us"):
            v = stats[k]
            print(f"  {k}={v:.1f}" if isinstance(v, float)
                  else f"  {k}={v}")
        print("verdict=ok (oracle-replayed, 0 violations)")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(stats, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0

    # bench: the full tournament + crossover table + regression gate
    from repro.bench.engine import RESULTS_DIR
    from repro.bench.locks import (check_locks_regression,
                                   run_locks_suite, write_locks_report)

    levels = args.levels or None
    kw = {"levels": levels} if levels else {}
    report = run_locks_suite(seed=args.seed, alpha=args.alpha, **kw)
    res = report["results"]
    cross = res["crossover"]
    print(f"locks bench (seed {args.seed}, alpha {report['alpha']}):")
    for n in cross["levels"]:
        row = "  ".join(
            f"{s}={res['tournament'][f'{s}@{n}']['ops_per_s']:>10,.1f}/s"
            for s in _LOCK_SCHEMES)
        print(f"  {n:>5d} clients: {row}")
        print(f"        winner: {cross['winners'][str(n)]}")
    chaos_row = "  ".join(
        f"{s}={res['chaos'][s]['ops_per_s']:>10,.1f}/s"
        for s in _LOCK_SCHEMES)
    print(f"  chaos column: {chaos_row}")
    for path in write_locks_report(report, args.out,
                                   None if args.no_archive
                                   else RESULTS_DIR):
        print(f"wrote {path}")
    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = _json.load(fh)
        except (OSError, ValueError):
            print(f"no usable baseline at {args.baseline}; "
                  f"regression gate skipped")
            return 0
        failures = check_locks_regression(report, baseline)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print("regression gate passed (>25% drop would fail)")
    return 0


# ---------------------------------------------------------------------------
# engine benchmark subcommand
# ---------------------------------------------------------------------------

def _bench_main(args) -> int:
    import json

    from repro.bench.engine import (RESULTS_DIR, check_regression,
                                    run_suite, write_report)

    report = run_suite(quick=args.quick, workers=args.workers)
    res = report["results"]
    print(f"engine bench ({'quick' if args.quick else 'full'}):")
    print(f"  events       {res['events']['events_per_sec']:>12,.0f} /s")
    ag = res["agenda"]
    for mix in ("uniform", "narrow_band", "burst"):
        print(f"  agenda {mix:<12s} {ag[f'{mix}_entries_per_sec']:>9,.0f} /s "
              f"({ag[f'{mix}_ladder_speedup']:.2f}x vs REPRO_HEAP_AGENDA)")
    sv = res["small_verbs"]
    print(f"  small verbs  {sv['verbs_per_sec']:>12,.0f} /s   "
          f"({sv['speedup_vs_slow']:.2f}x vs REPRO_SLOW_KERNEL, "
          f"sim clocks {'match' if sv['sim_now_match'] else 'DIVERGE'})")
    print(f"  lock ops     {res['lock_ops']['ops_per_sec']:>12,.0f} /s")
    print(f"  ddss scenario {res['scenario_ddss']['wall_s']:>10.3f} s wall")
    try:
        from repro.bench.topo import DEFAULT_TOPO_RESULT, GUARDED_TOPO_RATES
        with open(DEFAULT_TOPO_RESULT, encoding="utf-8") as fh:
            topo_res = json.load(fh).get("results", {})
        print(f"topo (from {DEFAULT_TOPO_RESULT}, simulated):")
        for bench, key in GUARDED_TOPO_RATES:
            val = topo_res.get(bench, {}).get(key)
            if isinstance(val, (int, float)):
                print(f"  {bench}.{key:<24s} {val:>12,.1f} /s")
    except (OSError, ValueError):
        pass  # no committed topo baseline: engine keys only
    if not sv["sim_now_match"]:
        print("FATAL: fast and slow kernels disagree on simulated time",
              file=sys.stderr)
        return 1
    for path in write_report(report, args.out,
                             None if args.no_archive else RESULTS_DIR):
        print(f"wrote {path}")
    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError):
            print(f"no usable baseline at {args.baseline}; "
                  f"regression gate skipped")
            return 0
        failures = check_regression(report, baseline)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print("regression gate passed (>25% drop would fail)")
    return 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quick paper-figure regeneration "
                    "(full runs: pytest benchmarks/ --benchmark-only)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one or more experiments")
    runp.add_argument("ids", nargs="+",
                      help="experiment ids (or 'all')")
    obsp = sub.add_parser(
        "obs", help="run an instrumented demo workload "
                    "(tracing + metrics + sanitizers)")
    obsp.add_argument("action", choices=["list", "run"])
    obsp.add_argument("scenario", nargs="?",
                      help="scenario name (for 'run')")
    obsp.add_argument("--seed", type=int, default=0)
    obsp.add_argument("--json", metavar="PATH", default=None,
                      help="write the deterministic JSON export here")
    obsp.add_argument("--trace", metavar="PATH", default=None,
                      help="write the full-event trace export here "
                           "(replayable with 'repro check trace')")
    obsp.add_argument("--no-sanitize", action="store_true",
                      help="trace + metrics only, no invariant checks")
    benchp = sub.add_parser(
        "bench", help="wall-clock engine benchmarks "
                      "(events/s, verbs/s, lock ops/s) + perf gate")
    benchp.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI-sized)")
    benchp.add_argument("--out", metavar="PATH",
                        default="BENCH_engine.json",
                        help="result file (default: BENCH_engine.json)")
    benchp.add_argument("--baseline", metavar="PATH", default=None,
                        help="compare against this report; exit 1 when a "
                             "guarded rate regresses >25%% (missing file "
                             "skips the gate)")
    benchp.add_argument("--no-archive", action="store_true",
                        help="skip the benchmarks/results/ archive copy")
    benchp.add_argument("--workers", type=int, default=0,
                        help="dispatch the suite through the lab runner "
                             "with this many pool workers (0 = in-process;"
                             " wall-clock rates are only comparable "
                             "across runs at the same setting)")
    checkp = sub.add_parser(
        "check", help="replay traces against correctness oracles "
                      "(locks / DDSS coherence / caching)")
    checkp.add_argument("action",
                        choices=["list", "run", "trace", "meta"])
    checkp.add_argument("names", nargs="*",
                        help="check names (or 'all') for run/meta; "
                             "trace file path(s) for trace")
    checkp.add_argument("--seed", type=int, default=0)
    checkp.add_argument("--kernel", choices=["fast", "heap", "slow"],
                        default="fast")
    checkp.add_argument("--both-kernels", action="store_true",
                        help="run every check under all three event "
                             "kernels (ladder / heap / slow)")
    checkp.add_argument("--no-shrink", action="store_true",
                        help="skip reproducer shrinking on violation")
    checkp.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable verdict here")
    checkp.add_argument("--seeds", default="0,1",
                        help="meta: comma-separated seed list")
    checkp.add_argument("--nodes", default="0",
                        help="meta: comma-separated node counts "
                             "(0 = per-check default)")
    checkp.add_argument("--workers", type=int, default=0,
                        help="meta: lab pool workers (0 = in-process)")
    chaosp = sub.add_parser(
        "chaos", help="randomized fault-schedule campaigns judged by "
                      "oracles, with reproducer shrinking")
    chaosp.add_argument("action",
                        choices=["list", "run", "replay", "shrink",
                                 "report"])
    chaosp.add_argument("names", nargs="*",
                        help="scenario names for run/replay/shrink "
                             "(run default: locks ddss); verdict JSON "
                             "path for report")
    chaosp.add_argument("--seed", type=int, default=0,
                        help="campaign seed (schedules are a pure "
                             "function of seed+index)")
    chaosp.add_argument("--schedules", type=int, default=10,
                        help="schedules per scenario per kernel "
                             "(run), or samples scanned for a failure "
                             "(shrink without --index)")
    chaosp.add_argument("--index", type=int, default=None,
                        help="replay/shrink this sampled schedule index")
    chaosp.add_argument("--schedule", metavar="PATH", default=None,
                        help="replay/shrink a schedule from this JSON "
                             "file (bare list, run record, or shrink "
                             "report)")
    chaosp.add_argument("--kernel", choices=["fast", "heap", "slow"],
                        default="fast")
    chaosp.add_argument("--both-kernels", action="store_true",
                        help="run: every schedule under both event "
                             "kernels, diffing canonical trace digests")
    chaosp.add_argument("--workers", type=int, default=0,
                        help="lab pool workers (0 = in-process)")
    chaosp.add_argument("--store", metavar="DIR", default=None,
                        help="run: resumable lab result store directory")
    chaosp.add_argument("--max-probes", type=int, default=64,
                        help="shrink: probe budget (default 64)")
    chaosp.add_argument("--json", metavar="PATH", default=None,
                        help="write the verdict/record/reproducer here")
    txnp = sub.add_parser(
        "txn", help="multi-key transactions over DDSS: run a workload "
                    "under the oracle, or sweep OCC vs 2PL")
    txnp.add_argument("action", choices=["run", "bench"])
    txnp.add_argument("--variant", choices=["occ", "2pl", "mixed"],
                      default="occ",
                      help="concurrency control for 'run' "
                           "(default: occ)")
    txnp.add_argument("--seed", type=int, default=0)
    txnp.add_argument("--n-nodes", type=int, default=4)
    txnp.add_argument("--n-keys", type=int, default=4,
                      help="account/stock pool size (fewer = hotter)")
    txnp.add_argument("--kernel", choices=["fast", "heap", "slow"],
                      default="fast")
    txnp.add_argument("--workers", type=int, default=0,
                      help="bench: lab pool workers (0 = in-process)")
    txnp.add_argument("--json", metavar="PATH", default=None,
                      help="run: write the verdict JSON here")
    txnp.add_argument("--out", metavar="PATH", default="BENCH_txn.json",
                      help="bench: result file (default: "
                           "BENCH_txn.json)")
    topop = sub.add_parser(
        "topo", help="rack/spine topology + sharded namespaces: run "
                     "the packaged scale-out scenario under the "
                     "oracles, or bench the fabric")
    topop.add_argument("action", choices=["ls", "run", "bench"])
    topop.add_argument("scenario", nargs="?", default="lab",
                       choices=sorted(_TOPO_SCENARIOS),
                       help="scenario for 'run' (default: lab)")
    topop.add_argument("--seed", type=int, default=0)
    topop.add_argument("--n-nodes", type=int, default=8,
                       help="shard-check: cluster size (default 8)")
    topop.add_argument("--kernel", choices=["fast", "heap", "slow"],
                       default="fast")
    topop.add_argument("--json", metavar="PATH", default=None,
                       help="run: write the verdict JSON here")
    topop.add_argument("--out", metavar="PATH", default="BENCH_topo.json",
                       help="bench: result file (default: "
                            "BENCH_topo.json)")
    topop.add_argument("--baseline", metavar="PATH", default=None,
                       help="bench: compare against this baseline and "
                            "fail on a >25%% rate drop")
    topop.add_argument("--no-archive", action="store_true",
                       help="bench: skip the benchmarks/results/ "
                            "archive copy")
    locksp = sub.add_parser(
        "locks", help="lock-design arena: run one oracle-checked "
                      "tournament cell, or bench the five-design "
                      "crossover table")
    locksp.add_argument("action", choices=["ls", "run", "bench"])
    locksp.add_argument("scheme", nargs="?", default="ncosed",
                        choices=sorted(_LOCK_SCHEMES),
                        help="scheme for 'run' (default: ncosed)")
    locksp.add_argument("--clients", type=int, default=64,
                        help="run: contending clients (default 64)")
    locksp.add_argument("--alpha", type=float, default=1.2,
                        help="Zipf skew of the lock-choice "
                             "distribution (default 1.2)")
    locksp.add_argument("--chaos", choices=["none", "crash"],
                        default="none",
                        help="run: fault plan (default none)")
    locksp.add_argument("--seed", type=int, default=0)
    locksp.add_argument("--kernel", choices=["fast", "heap", "slow"],
                        default="fast")
    locksp.add_argument("--json", metavar="PATH", default=None,
                        help="run: write the stats JSON here")
    locksp.add_argument("--levels", type=int, nargs="+", default=None,
                        help="bench: contention levels (default "
                             "64 256 1024)")
    locksp.add_argument("--out", metavar="PATH",
                        default="BENCH_locks.json",
                        help="bench: result file (default: "
                             "BENCH_locks.json)")
    locksp.add_argument("--baseline", metavar="PATH", default=None,
                        help="bench: compare against this baseline and "
                             "fail on a >25%% rate drop")
    locksp.add_argument("--no-archive", action="store_true",
                        help="bench: skip the benchmarks/results/ "
                             "archive copy")
    labp = sub.add_parser(
        "lab", help="parallel experiment sweeps with a resumable "
                    "result store")
    labsub = labp.add_subparsers(dest="action", required=True)
    lab_ls = labsub.add_parser("ls", help="list packaged sweeps + "
                                          "on-disk stores")
    lab_bench = labsub.add_parser(
        "bench", help="serial-vs-parallel speedup + byte-identity check "
                      "(writes BENCH_lab.json)")
    lab_bench.add_argument("--workers", type=int, default=4)
    lab_bench.add_argument("--sweep", default="bench8",
                           help="packaged sweep to compare on "
                                "(default: bench8)")
    lab_bench.add_argument("--out", metavar="PATH",
                           default="BENCH_lab.json")
    store_root_help = ("override benchmarks/results/lab/ as the "
                       "store root")
    lab_ls.add_argument("--store-root", default=None,
                        help=store_root_help)
    for act, hlp in (("run", "run a sweep (skips completed runs)"),
                     ("resume", "re-invoke a killed sweep: only missing "
                                "runs execute"),
                     ("show", "merged tables + completion state of a "
                              "store")):
        p = labsub.add_parser(act, help=hlp)
        p.add_argument("sweep", help="packaged sweep name or store "
                                     "directory")
        p.add_argument("--store-root", default=None,
                       help=store_root_help)
        if act != "show":
            p.add_argument("--workers", type=int, default=0,
                           help="pool workers (0 = serial in-process, "
                                "the byte-identical reference mode)")
            p.add_argument("--timeout", type=float, default=None,
                           help="per-run timeout in seconds")
            p.add_argument("--retries", type=int, default=2,
                           help="extra attempts per run after a "
                                "failure/crash (default 2)")
            p.add_argument("--report", metavar="PATH", default=None,
                           help="write the runner summary JSON here")
            p.add_argument("--no-progress", action="store_true")
            p.add_argument("--no-tables", action="store_true",
                           help="skip the merged-table rendering")
    args = parser.parse_args(argv)

    if args.command == "lab":
        if args.action == "bench":
            return _lab_bench_main(args)
        return _lab_main(args)

    if args.command == "bench":
        return _bench_main(args)

    if args.command == "obs":
        return _obs_main(args)

    if args.command == "check":
        return _check_main(args)

    if args.command == "chaos":
        return _chaos_main(args)

    if args.command == "txn":
        return _txn_main(args)

    if args.command == "topo":
        return _topo_main(args)

    if args.command == "locks":
        return _locks_main(args)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    ids = list(EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        t0 = time.time()
        for table in EXPERIMENTS[exp_id]():
            table.show()
        print(f"[{exp_id} took {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
