"""Packaged topology scenarios: the datacenter lab and its checks.

``build_topo_scenario`` is the flagship: 100+ nodes in 4+ racks behind
oversubscribed ToR uplinks, both sharded namespaces (lock ring + DDSS
directory ring) serving a RUBiS-style session load north of a million
sessions, with a **rebalance-during-load** chaos fault — one member
crashes mid-run (ring eviction, lock rehome, unit migration) and later
restarts (ring re-admission) while the load keeps coming.  The trace
carries an ``ha.expect`` failover assertion derived from the schedule,
so the HA oracle judges recovery liveness and the lock/DDSS oracles
judge safety.

Sessions are driven in *batches*: each node's frontend models a
threaded web tier (``threads`` concurrent workers), so one batch of
``k`` sessions charges ``k * mean_cpu_us / threads`` of wall CPU —
the per-session arithmetic stays honest while the event count stays
bounded at datacenter scale.  Each batch also runs a traced sharded
lock round and a DDSS put/get, so the oracles see real cross-rack
protocol traffic, not just CPU burn.

``shard_check`` is the deterministic little sibling for the metamorphic
suite: no faults, but a timed mid-run ``migrate_off``/``ring_restore``
exercises bounce + tombstone + rebalance identically on every kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import (DDSSError, FaultError, LockError, RdmaError,
                          TimeoutError)

__all__ = ["build_topo_scenario", "shard_check", "topo_lab",
           "measure_verb_latency", "measure_lock_throughput"]

#: detector cadence (shared with repro.chaos so bounds read the same)
PERIOD_US = 500.0
TIMEOUT_US = 120.0
HOLD_US = PERIOD_US

#: faults an actor absorbs: giving up under injected failure is legal
TOLERATED = (LockError, FaultError, RdmaError, DDSSError, TimeoutError)

UNIT_BYTES = 64


def build_topo_scenario(seed: int = 0, racks: int = 4,
                        hosts_per_rack: int = 26, spines: int = 2,
                        oversub: float = 4.0,
                        sessions_per_node: int = 12_500,
                        batches: int = 10, threads: int = 64,
                        n_locks: int = 256, n_units: int = 128,
                        horizon: float = 50_000.0,
                        crash_at: float = 12_000.0,
                        restart_at: float = 30_000.0):
    """Run the datacenter scenario; returns ``(obs, stats)``."""
    from repro.ddss import Coherence
    from repro.faults import FaultPlan
    from repro.monitor import PhiAccrualDetector, QuorumGate
    from repro.reconfig import ReconfigManager, Service
    from repro.shard import ShardedDDSS, ShardedNCoSEDManager
    from repro.topo import TopoCluster
    from repro.workloads.rubis import RubisMix

    cluster = TopoCluster(racks=racks, hosts_per_rack=hosts_per_rack,
                          spines=spines, oversub=oversub, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False, ring=1 << 20)
    env = cluster.env
    n_nodes = len(cluster.nodes)
    # the victim homes ring slices of both namespaces; keep it off the
    # detector front / reconfig coordinator (node 0)
    victim = cluster.nodes[1 + hosts_per_rack]  # first host of rack 1
    cluster.install_faults(FaultPlan().crash(victim.id, at=crash_at,
                                             restart_at=restart_at))

    ddss = ShardedDDSS(cluster, segment_bytes=256 * 1024)
    front, backs = cluster.nodes[0], cluster.nodes[1:]
    phi = PhiAccrualDetector(front, backs, period_us=PERIOD_US,
                             timeout_us=TIMEOUT_US)
    detector = QuorumGate(phi, hold_us=HOLD_US)
    manager = ShardedNCoSEDManager(cluster, n_locks=n_locks,
                                   lease_us=800.0, detector=detector)
    svc = Service("rubis", cluster.nodes)
    reconfig = ReconfigManager(front, [svc], detector=detector,
                               ddss=ddss)
    bound = phi.detect_bound_us() + HOLD_US + 2.0 * PERIOD_US
    obs.trace.emit("ha.expect", node=-1, kind="failover",
                   victims=[victim.id], after=crash_at,
                   by=crash_at + bound, start=crash_at,
                   until=restart_at)

    keys: List[int] = []

    def setup(env):
        client = ddss.client(front)
        for i in range(n_units):
            key = yield client.allocate(UNIT_BYTES,
                                        coherence=Coherence.WRITE)
            yield client.put(key, i.to_bytes(8, "big"))
            keys.append(key)

    env.run_until_event(env.process(setup(env), name="topo-setup"))

    per_batch = sessions_per_node // batches
    mean_cpu = RubisMix(cluster.rng.get("topo-mix")).mean_cpu_us()
    batch_us = per_batch * mean_cpu / threads
    served = [0]

    def driver(node, idx, rng):
        store = ddss.client(node)
        locks = manager.client(node)
        yield env.timeout(rng.uniform(0.0, 500.0))
        for b in range(batches):
            yield node.cpu.run(batch_us, name="rubis-batch")
            served[0] += per_batch
            lock_id = int(rng.integers(0, n_locks))
            try:
                yield locks.acquire(lock_id)
                yield env.timeout(5.0)
                yield locks.release(lock_id)
            except TOLERATED:
                pass
            key = keys[int(rng.integers(0, len(keys)))]
            try:
                yield store.put(key, idx.to_bytes(8, "big"))
                yield store.get(key)
            except TOLERATED:
                pass

    for idx, node in enumerate(cluster.nodes):
        env.process(driver(node, idx, cluster.rng.get(f"topo-drv-{idx}")),
                    name=f"topo-driver-{idx}")
    env.run(until=horizon)

    stats = {
        "seed": seed,
        "nodes": n_nodes,
        "racks": racks,
        "spines": spines,
        "oversub": oversub,
        "sessions": served[0],
        "sessions_offered": sessions_per_node * n_nodes,
        "xrack_transfers": cluster.fabric.xrack_transfers,
        "xrack_bytes": cluster.fabric.xrack_bytes,
        "lock_rehomes": len(manager.rehomes),
        "ring_rebalances": (len(ddss.dir_map.rebalances)
                            + len(manager.shard_map.rebalances)),
        "units_moved": len(obs.trace.select("ddss.migrate")),
        "evictions": len(reconfig.evictions),
        "sim_now_us": env.now,
    }
    return obs, stats


def shard_check(seed: int, n_nodes: int):
    """Deterministic sharded check for the metamorphic suite.

    Two racks, both sharded services, and a *timed* mid-run rebalance:
    ``migrate_off`` drops a member from the directory ring under load
    (stale clients bounce, tombstoned units re-resolve), then
    ``ring_restore`` re-admits it.  No faults are injected, so all
    three kernels must produce byte-identical canonical traces.
    """
    from repro.ddss import Coherence
    from repro.dlm import LockMode
    from repro.shard import ShardedDDSS, ShardedNCoSEDManager
    from repro.topo import TopoCluster

    hosts = max(1, n_nodes // 2)
    cluster = TopoCluster(racks=2, hosts_per_rack=hosts, oversub=2.0,
                          seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    env = cluster.env
    ddss = ShardedDDSS(cluster, segment_bytes=64 * 1024)
    manager = ShardedNCoSEDManager(cluster, n_locks=16)
    victim = cluster.nodes[-1]
    keys: List[int] = []

    def setup(env):
        client = ddss.client(cluster.nodes[0])
        for i in range(2 * len(cluster.nodes)):
            key = yield client.allocate(32, coherence=Coherence.WRITE)
            yield client.put(key, i.to_bytes(4, "big"))
            keys.append(key)

    env.run_until_event(env.process(setup(env), name="shard-setup"))

    def rebalancer(env):
        yield env.timeout(6_000.0)
        ddss.migrate_off(victim.id)
        yield env.timeout(8_000.0)
        ddss.ring_restore(victim.id)

    env.process(rebalancer(env), name="shard-rebalancer")

    rng = cluster.rng.get("shard-check")

    def actor(env, node, i, delay):
        store = ddss.client(node)
        locks = manager.client(node)
        # one key per actor, revisited every round: the pre-rebalance
        # rounds populate the client's directory-owner cache, and the
        # post-rebalance rounds must heal it through the bounce path
        key = keys[i % len(keys)]
        yield env.timeout(delay)
        for r in range(4):
            lock_id = (i + r) % manager.n_locks
            mode = (LockMode.SHARED if (i + r) % 3 == 0
                    else LockMode.EXCLUSIVE)
            yield locks.acquire(lock_id, mode)
            yield env.timeout(20.0)
            yield locks.release(lock_id)
            try:
                yield store.put(key, bytes([i % 251, r]) * 4)
                yield store.get(key)
            except DDSSError:
                pass  # mid-migration install window: a legal refusal
            yield env.timeout(float(rng.uniform(2_000.0, 8_000.0)))

    for i in range(2 * len(cluster.nodes)):
        node = cluster.nodes[i % len(cluster.nodes)]
        env.process(actor(env, node, i,
                          float(rng.uniform(0.0, 10_000.0))),
                    name=f"shard-actor-{i}")
    env.run(until=30_000.0)
    return obs


# ----------------------------------------------------------------------
# measurements (deterministic sim-time, reused by bench + lab)
# ----------------------------------------------------------------------

def measure_verb_latency(seed: int = 0, nbytes: int = 256,
                         reps: int = 32,
                         oversub: float = 4.0) -> Dict[str, float]:
    """Mean RDMA-read RTT intra-rack vs cross-rack (µs)."""
    from repro.topo import TopoCluster

    cluster = TopoCluster(racks=2, hosts_per_rack=4, spines=1,
                          oversub=oversub, seed=seed)
    env = cluster.env
    src = cluster.nodes[0]
    results: Dict[str, float] = {}
    for label, dst in (("intra_rack_us", cluster.nodes[1]),
                       ("cross_rack_us", cluster.nodes[4])):
        region = dst.memory.register(4_096, name=f"ping@{dst.name}")
        times: List[float] = []

        def pinger(env, dst_id=dst.id, region=region, times=times):
            for _ in range(reps):
                t0 = env.now
                yield src.nic.rdma_read(dst_id, region.addr,
                                        region.rkey, nbytes)
                times.append(env.now - t0)

        env.run_until_event(env.process(pinger(env), name="pinger"))
        results[label] = round(sum(times) / len(times), 4)
    return results


def measure_lock_throughput(seed: int = 0, n_locks: int = 64,
                            rounds: int = 40) -> Dict[str, float]:
    """Completed acquire/release pairs per sim-second: every lock homed
    on one node vs spread over the shard ring (same 2-rack cluster,
    same workload).

    Workers hold each lock for zero time and never contend logically
    (distinct lock ids), so the measured rate is bounded by the lock
    *homes* — a single home serializes every CAS through one NIC, while
    the ring spreads them across the membership.  The rate divides a
    fixed op count by the completion time, not by a fixed horizon.
    """
    from repro.dlm import NCoSEDManager
    from repro.shard import ShardedNCoSEDManager
    from repro.topo import TopoCluster

    def run(sharded: bool) -> float:
        cluster = TopoCluster(racks=2, hosts_per_rack=4, oversub=4.0,
                              seed=seed)
        env = cluster.env
        if sharded:
            manager = ShardedNCoSEDManager(cluster, n_locks=n_locks)
        else:
            manager = NCoSEDManager(cluster, n_locks=n_locks,
                                    member_nodes=[cluster.nodes[0]])
        ops = [0]

        def worker(env, node, i):
            client = manager.client(node)
            for r in range(rounds):
                lock_id = (i * rounds + r) % n_locks
                yield client.acquire(lock_id)
                yield client.release(lock_id)
                ops[0] += 1

        procs = [env.process(worker(env, n, i), name=f"lk-{i}")
                 for i, n in enumerate(cluster.nodes)]
        for p in procs:
            env.run_until_event(p)
        return ops[0] / (env.now / 1e6)

    single = run(False)
    sharded = run(True)
    return {"single_home_ops_per_s": round(single, 1),
            "sharded_ops_per_s": round(sharded, 1),
            "speedup": round(sharded / single, 3) if single else 0.0}


def topo_lab(racks: int = 2, oversub: float = 1.0,
             seed: int = 0) -> Dict[str, float]:
    """One 16-node lab grid point: cross-rack cost at a topology."""
    from repro.topo import TopoCluster

    hosts = 16 // racks
    cluster = TopoCluster(racks=racks, hosts_per_rack=hosts,
                          oversub=oversub, seed=seed)
    env = cluster.env

    def blaster(env, src, dst):
        for _ in range(8):
            yield cluster.fabric.transfer(src.id, dst.id, 8_192)

    procs = []
    for i, src in enumerate(cluster.nodes):
        dst = cluster.nodes[(i + hosts) % len(cluster.nodes)]
        procs.append(env.process(blaster(env, src, dst),
                                 name=f"blast-{i}"))
    for p in procs:
        env.run_until_event(p)
    return {
        "racks": racks,
        "oversub": oversub,
        "sim_now_us": round(env.now, 3),
        "xrack_transfers": cluster.fabric.xrack_transfers,
        "xrack_bytes": cluster.fabric.xrack_bytes,
    }
