"""Two-level rack/spine fabric: host egress links + ToR uplinks.

An intra-rack transfer is exactly a flat-fabric transfer — same code
path, same float association order, same fast-path eligibility — so a
single-rack :class:`TopoFabric` is byte-identical to :class:`Fabric`.

A cross-rack transfer crosses two serialization stages::

    nic_tx + host-egress hold + ToR-uplink hold + (wire + spine) + nic_rx

The per-rack uplink pool carries ``hosts_per_rack / oversub`` times one
host's bandwidth split over ``spines`` links, so an oversubscribed rack
sending cross-rack from many hosts at once queues on the uplink — the
contention the flat fabric cannot express.  A transfer's uplink is
picked deterministically by destination rack (``dst_rack % spines``),
the static ECMP-style spreading real ToRs do per flow.

Cross-rack transfers always run the explicit generator path, never the
analytic shortcut: the single-link reservation proof behind the fast
path (DESIGN.md §9) relies on every transfer's link-hold start lagging
its issue instant by the same constant (``nic_tx``), and the uplink's
hold start lags by ``nic_tx + serialization(nbytes)`` — size-dependent,
so reservation order and FIFO-acquire order can disagree.  Falling back
keeps ladder/heap/slow kernels byte-identical by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.sim import Environment, Resource

from repro.net.fabric import Fabric
from repro.net.params import NetworkParams

__all__ = ["TopoFabric"]


class TopoFabric(Fabric):
    """A :class:`Fabric` whose nodes live in racks behind ToR uplinks."""

    def __init__(self, env: Environment, params: NetworkParams, *,
                 racks: int, hosts_per_rack: int, spines: int = 1,
                 oversub: float = 1.0,
                 spine_latency_us: Optional[float] = None):
        if racks < 1:
            raise ConfigError("need at least one rack")
        if hosts_per_rack < 1:
            raise ConfigError("need at least one host per rack")
        if spines < 1:
            raise ConfigError("need at least one spine link per rack")
        if oversub < 1.0:
            raise ConfigError("oversubscription ratio must be >= 1.0")
        if spine_latency_us is not None and spine_latency_us < 0.0:
            raise ConfigError("spine latency must be non-negative")
        super().__init__(env, params)
        self.racks = racks
        self.hosts_per_rack = hosts_per_rack
        self.spines = spines
        self.oversub = float(oversub)
        #: extra one-way latency of the ToR->spine->ToR detour; defaults
        #: to two additional switch hops at the base wire latency
        self.spine_latency_us = (spine_latency_us
                                 if spine_latency_us is not None
                                 else 2.0 * params.wire_latency_us)
        #: bandwidth of one ToR uplink (bytes/us): a rack's aggregate
        #: host bandwidth divided by the oversubscription ratio, split
        #: over its spine links
        self.uplink_bpus = (params.bandwidth_bpus * hosts_per_rack
                            / (self.oversub * spines))
        self._xwire_us = params.wire_latency_us + self.spine_latency_us
        self._uplink: Dict[Tuple[int, int], Resource] = {
            (r, s): Resource(env, capacity=1)
            for r in range(racks) for s in range(spines)
        }
        self.xrack_transfers = 0
        self.xrack_bytes = 0
        self._obs_xcache: Optional[tuple] = None

    # -- topology ---------------------------------------------------------
    def rack_of(self, node_id: int) -> int:
        return node_id // self.hosts_per_rack

    def same_rack(self, a: int, b: int) -> bool:
        return a // self.hosts_per_rack == b // self.hosts_per_rack

    def _up_key(self, src_id: int, dst_id: int) -> Tuple[int, int]:
        return (src_id // self.hosts_per_rack,
                (dst_id // self.hosts_per_rack) % self.spines)

    def uplink_queue_len(self, rack: int, spine: int = 0) -> int:
        """Cross-rack transfers waiting on one ToR uplink."""
        return self._uplink[(rack, spine)].queue_len

    # -- data movement ----------------------------------------------------
    def transfer(self, src_id: int, dst_id: int, nbytes: int):
        if src_id // self.hosts_per_rack == dst_id // self.hosts_per_rack:
            return super().transfer(src_id, dst_id, nbytes)
        if src_id not in self._nodes or dst_id not in self._nodes:
            raise ConfigError(f"transfer between unknown nodes "
                              f"{src_id}->{dst_id}")
        if nbytes < 0:
            raise ConfigError("cannot transfer negative bytes")
        if self.injector is not None:
            fail = self.injector.transfer_fault(src_id, dst_id)
            if fail is not None:
                return fail
        self._count_xrack(src_id, dst_id, nbytes)
        self._pre_acquire[src_id] += 1
        done = self.env.process(
            self._xrack_proc(src_id, dst_id, nbytes),
            name=f"xfer-{src_id}->{dst_id}",
        )
        if self.injector is not None:
            return self.injector.fence_completion(src_id, dst_id, done)
        return done

    def fast_send(self, src_id: int, dst_id: int, nbytes: int) -> float:
        if src_id // self.hosts_per_rack == dst_id // self.hosts_per_rack:
            return super().fast_send(src_id, dst_id, nbytes)
        # cross-rack: never analytic (see module docstring); the verb
        # layer falls back to send_process, which spawns the real thing
        return -1.0

    def send_process(self, src_id: int, dst_id: int, nbytes: int,
                     arrive) -> None:
        if src_id // self.hosts_per_rack == dst_id // self.hosts_per_rack:
            return super().send_process(src_id, dst_id, nbytes, arrive)
        self._count_xrack(src_id, dst_id, nbytes)
        self._pre_acquire[src_id] += 1
        ev = self.env.process(self._xrack_proc(src_id, dst_id, nbytes),
                              name=f"xfer-{src_id}->{dst_id}")
        ev.callbacks.append(lambda _e: arrive())

    def _xrack_proc(self, src_id: int, dst_id: int, nbytes: int):
        p = self.params
        factor = (self.injector.link_factor(src_id, dst_id)
                  if self.injector is not None else 1.0)
        yield self.env.timeout(p.nic_tx_us)
        link = self._egress[src_id]
        grant = link.acquire()
        self._pre_acquire[src_id] -= 1
        yield grant
        try:
            yield self.env.timeout(p.serialization_us(nbytes) * factor)
        finally:
            link.release()
        up = self._uplink[self._up_key(src_id, dst_id)]
        yield up.acquire()
        try:
            yield self.env.timeout((nbytes / self.uplink_bpus) * factor)
        finally:
            up.release()
        yield self.env.timeout(self._xwire_us * factor + p.nic_rx_us)

    # -- accounting -------------------------------------------------------
    def _count_xrack(self, src_id: int, dst_id: int, nbytes: int) -> None:
        self.transfers += 1
        self.bytes_moved += nbytes
        self.xrack_transfers += 1
        self.xrack_bytes += nbytes
        obs = self.env.obs
        if obs is not None:
            self._obs_transfer(obs, nbytes)
            self._obs_xrack(obs, src_id, dst_id, nbytes)

    def _obs_xrack(self, obs, src_id: int, dst_id: int,
                   nbytes: int) -> None:
        cache = self._obs_xcache
        if cache is None or cache[0] is not obs:
            m = obs.metrics
            cache = self._obs_xcache = (
                obs, m.counter("topo.xrack.transfers"),
                m.counter("topo.xrack.bytes"), {})
        cache[1].inc()
        cache[2].inc(nbytes)
        srack = src_id // self.hosts_per_rack
        per_rack = cache[3].get(srack)
        if per_rack is None:
            # node= carries the *rack* index for topo.uplink metrics
            per_rack = cache[3][srack] = obs.metrics.counter(
                "topo.uplink.bytes", node=srack)
        per_rack.inc(nbytes)
        obs.trace.emit("topo.xrack", node=src_id, dst=dst_id,
                       srack=srack, drack=dst_id // self.hosts_per_rack,
                       nbytes=nbytes)
