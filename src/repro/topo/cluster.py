"""TopoCluster: racks × hosts/rack behind spine uplinks, in one call."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.net.params import NetworkParams

from repro.topo.fabric import TopoFabric

__all__ = ["TopoCluster"]


class TopoCluster(Cluster):
    """A :class:`Cluster` whose fabric has rack/spine structure.

    Node ids are assigned rack-major: rack ``r`` holds nodes
    ``[r * hosts_per_rack, (r + 1) * hosts_per_rack)``.  Everything
    else — environment, RNG streams, node construction order — matches
    the flat cluster exactly, so a single rack at ``oversub=1.0``
    produces byte-identical traces.

    Parameters
    ----------
    racks / hosts_per_rack:
        The grid; ``len(cluster) == racks * hosts_per_rack``.
    spines:
        ToR uplinks per rack (cross-rack transfers spread over them by
        destination rack).
    oversub:
        Oversubscription ratio: a rack's aggregate uplink bandwidth is
        ``hosts_per_rack * host_bandwidth / oversub``.
    spine_latency_us:
        Extra one-way cross-rack latency; defaults to two more switch
        hops at the params' wire latency.
    """

    def __init__(self, racks: int = 1, hosts_per_rack: int = 4, *,
                 spines: int = 1, oversub: float = 1.0,
                 spine_latency_us: Optional[float] = None,
                 params: Optional[NetworkParams] = None,
                 cores_per_node: int = 2, seed: int = 0):
        self.racks = racks
        self.hosts_per_rack = hosts_per_rack
        self.spines = spines
        self.oversub = float(oversub)
        self._spine_latency_us = spine_latency_us
        if racks < 1 or hosts_per_rack < 1:
            raise ConfigError("need at least one rack and one host")
        super().__init__(n_nodes=racks * hosts_per_rack, params=params,
                         cores_per_node=cores_per_node, seed=seed)

    def _make_fabric(self) -> TopoFabric:
        return TopoFabric(self.env, self.params, racks=self.racks,
                          hosts_per_rack=self.hosts_per_rack,
                          spines=self.spines, oversub=self.oversub,
                          spine_latency_us=self._spine_latency_us)

    # -- topology helpers --------------------------------------------------
    @property
    def spine_latency_us(self) -> float:
        return self.fabric.spine_latency_us

    def rack_of(self, node_id: int) -> int:
        return node_id // self.hosts_per_rack

    def rack_nodes(self, rack: int) -> List[Node]:
        if not 0 <= rack < self.racks:
            raise ConfigError(f"no rack {rack} in a {self.racks}-rack "
                              f"cluster")
        lo = rack * self.hosts_per_rack
        return self.nodes[lo:lo + self.hosts_per_rack]
