"""Rack/spine datacenter topology layered on the flat fabric.

The paper's testbed is a handful of nodes on one InfiniBand switch; the
roadmap's north star is a simulated datacenter.  :class:`TopoCluster`
builds racks of hosts behind top-of-rack uplinks into a spine layer,
with an **oversubscription ratio** making cross-rack bandwidth a scarce,
contended quantity and an extra spine hop adding cross-rack latency —
while a single rack at 1:1 oversubscription stays byte-identical to the
flat :class:`repro.net.Cluster` (every transfer takes the exact same
code path).

Pairs with :mod:`repro.shard`, which spreads the N-CoSED lock namespace
and the DDSS directory across the topology's home nodes.
"""

from repro.topo.cluster import TopoCluster
from repro.topo.fabric import TopoFabric

__all__ = ["TopoCluster", "TopoFabric"]
