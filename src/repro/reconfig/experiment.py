"""Burst-recovery experiment (paper §6: fine-grained reconfiguration).

Two services share a node pool.  Service A receives a sudden burst;
the reconfiguration manager must notice and migrate capacity.  We
measure the time from the burst until A's backlog drains back under a
threshold — with coarse-grained (socket-based, long-period) monitoring
versus fine-grained (RDMA, millisecond) monitoring the paper reports an
order-of-magnitude difference in responsiveness.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.net.cluster import Cluster
from repro.net.params import NetworkParams

from repro.monitor.kernel import KernelStats
from repro.monitor.schemes import MONITOR_SCHEMES
from repro.reconfig.manager import ReconfigManager, Service

__all__ = ["burst_recovery_time"]


def burst_recovery_time(monitor_scheme: str = "rdma-sync",
                        check_every_us: float = 1_000.0,
                        n_nodes: int = 6,
                        burst_requests: int = 400,
                        req_us: float = 400.0,
                        seed: int = 0) -> Dict[str, object]:
    """Run one burst; returns recovery time and migration trace."""
    if monitor_scheme not in MONITOR_SCHEMES:
        raise ConfigError(f"unknown scheme {monitor_scheme!r}")
    names = ["front"] + [f"srv{i}" for i in range(n_nodes)]
    cluster = Cluster(names=names, params=NetworkParams.infiniband(),
                      seed=seed)
    env = cluster.env
    front = cluster.nodes[0]
    pool = cluster.nodes[1:]
    half = n_nodes // 2
    svc_a = Service("A", pool[:half], priority=2)
    svc_b = Service("B", pool[half:], priority=1)
    stats = {n.id: KernelStats(n) for n in pool}
    monitor_cls = MONITOR_SCHEMES[monitor_scheme]
    # async schemes push/poll at the manager's check granularity: that is
    # what "coarse-grained" vs "fine-grained" monitoring means here
    try:
        monitor = monitor_cls(front, stats, period_us=check_every_us)
    except TypeError:
        monitor = monitor_cls(front, stats)
    manager = ReconfigManager(front, [svc_a, svc_b], monitor=monitor,
                              check_every_us=check_every_us,
                              sensitivity=2.0, cooldown_us=10_000.0)
    manager.start()

    result: Dict[str, object] = {}

    def steady_load(env, svc, period_us):
        while True:
            svc.submit(200.0)
            yield env.timeout(period_us)

    def burst(env):
        yield env.timeout(50_000.0)
        t_burst = env.now
        for _ in range(burst_requests):
            svc_a.submit(req_us)
        # wait until the backlog drains
        while svc_a.backlog > 5:
            yield env.timeout(200.0)
        result["recovery_us"] = env.now - t_burst
        result["migrations"] = list(manager.migrations)
        # responsiveness: how long until extra capacity actually arrived
        after = [t for t, *_rest in manager.migrations if t >= t_burst]
        result["detection_us"] = (min(after) - t_burst) if after else None
        result["nodes_a"] = len(svc_a.nodes)

    env.process(steady_load(env, svc_a, 2_000.0))
    env.process(steady_load(env, svc_b, 2_000.0))
    done = env.process(burst(env))
    env.run_until_event(done, limit=5e7)
    return result
