"""Dynamic reconfiguration with QoS (paper §3 initial work + §6).

Server nodes are partitioned among hosted *services*; a reconfiguration
manager watches per-node load through a monitoring scheme and migrates
nodes from underloaded to overloaded services.  The design reproduces
the three challenges the paper calls out:

* concurrency control — reconfiguration decisions serialize through a
  CAS lock word in registered memory, so multiple front-ends never
  migrate the same node twice (no live-locks);
* history-aware reconfiguration — a per-node cooldown prevents server
  thrashing;
* sensitivity tuning — a load-imbalance ratio threshold gates every
  migration.

Priorities implement the soft-QoS extension: nodes are stolen from the
lowest-priority donor first, and a high-priority service can always
keep its minimum share.
"""

from repro.reconfig.manager import ReconfigManager, Service
from repro.reconfig.experiment import burst_recovery_time

__all__ = ["ReconfigManager", "Service", "burst_recovery_time"]
