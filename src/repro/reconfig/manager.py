"""Reconfiguration manager and service abstraction."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.net.node import Node

from repro.monitor.schemes import MonitorBase

__all__ = ["Service", "ReconfigManager"]

#: CPU work per request on a serving node (µs) unless the request says
DEFAULT_REQ_US = 300.0


class Service:
    """One hosted website/service: thread-per-request over its nodes.

    Requests dispatch round-robin to the service's current nodes and run
    as CPU jobs immediately (Apache's thread-per-connection model), so a
    burst shows up as a thread spike *on the back-end nodes* — visible
    to the reconfiguration manager only through the monitoring layer.
    Requests already running on a migrated-away node finish where they
    are (connection draining).
    """

    def __init__(self, name: str, nodes: Sequence[Node],
                 priority: int = 1, min_nodes: int = 1):
        if not nodes:
            raise ConfigError(f"service {name!r} needs at least one node")
        if min_nodes < 1 or min_nodes > len(nodes):
            raise ConfigError("bad min_nodes")
        self.name = name
        self.priority = priority
        self.min_nodes = min_nodes
        self.env = nodes[0].env
        self.nodes: List[Node] = list(nodes)
        self.submitted = 0
        self.completed = 0
        self.latency_sum = 0.0
        self._rr = itertools.count()

    def add_node(self, node: Node) -> None:
        self.nodes.append(node)

    def remove_node(self, node: Node) -> None:
        self.nodes.remove(node)

    # -- load interface ---------------------------------------------------
    def submit(self, work_us: float = DEFAULT_REQ_US) -> None:
        node = self.nodes[next(self._rr) % len(self.nodes)]
        self.submitted += 1
        self.env.process(self._run_one(node, work_us),
                         name=f"svc-{self.name}@{node.name}")

    def _run_one(self, node: Node, work_us: float):
        arrived_at = self.env.now
        yield node.cpu.run(work_us, name=f"svc-{self.name}")
        self.completed += 1
        self.latency_sum += self.env.now - arrived_at

    @property
    def backlog(self) -> int:
        """Requests in flight (running threads across the service)."""
        return self.submitted - self.completed

    def mean_latency(self) -> float:
        return self.latency_sum / self.completed if self.completed else 0.0


class ReconfigManager:
    """Watches services, migrates nodes, serialized via a CAS lock."""

    def __init__(self, coordinator: Node, services: Sequence[Service],
                 monitor: Optional[MonitorBase] = None,
                 check_every_us: float = 2_000.0,
                 sensitivity: float = 2.0,
                 cooldown_us: float = 20_000.0):
        if sensitivity <= 1.0:
            raise ConfigError("sensitivity must exceed 1.0")
        self.node = coordinator
        self.env = coordinator.env
        self.services = list(services)
        self.monitor = monitor
        self.check_every_us = check_every_us
        self.sensitivity = sensitivity
        self.cooldown_us = cooldown_us
        #: CAS lock word serializing concurrent reconfiguration managers
        self._lock_region = coordinator.memory.register(8, name="reconf-lock")
        #: node id -> last migration time (history-aware reconfiguration)
        self._last_moved: Dict[int, float] = {}
        self.migrations: List[tuple] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            raise ConfigError("manager already started")
        self._running = True
        self.env.process(self._loop(), name="reconfig-manager")

    # -- load estimation ---------------------------------------------------
    def _service_pressure(self, svc: Service) -> float:
        """Mean *monitored* thread count of the service's nodes.

        The manager only knows what the monitoring layer tells it, so
        its responsiveness is bounded by the monitor's granularity and
        accuracy — the coarse-vs-fine comparison of the experiment.
        Without a monitor it falls back to front-end-visible backlog.
        """
        if self.monitor is not None:
            ids = {n.id for n in svc.nodes} & set(self.monitor.back_ids)
            if ids:
                threads = sum(self.monitor.view(bid)["n_threads"]
                              for bid in ids)
                return (threads + 1.0) / len(ids)
        return (svc.backlog + 1.0) / max(1, len(svc.nodes))

    def _loop(self):
        while True:
            yield self.env.timeout(self.check_every_us)
            # refresh node views through the monitoring scheme, so the
            # responsiveness of reconfiguration inherits the monitor's
            # granularity (coarse socket vs fine-grained RDMA)
            if self.monitor is not None:
                for bid in self.monitor.back_ids:
                    yield self.monitor.query(bid)
            yield from self._maybe_migrate()

    def _maybe_migrate(self):
        hungry = max(self.services, key=self._service_pressure)
        # donors: prefer lowest priority, then lowest pressure (QoS)
        donors = [s for s in self.services
                  if s is not hungry and len(s.nodes) > s.min_nodes]
        if not donors:
            return
        donor = min(donors, key=lambda s: (s.priority,
                                           self._service_pressure(s)))
        if (self._service_pressure(hungry)
                < self.sensitivity * self._service_pressure(donor)):
            return
        # pick a donor node outside its cooldown window
        candidates = [n for n in donor.nodes
                      if self.env.now - self._last_moved.get(n.id, -1e18)
                      >= self.cooldown_us]
        if not candidates:
            return
        node = candidates[0]
        # concurrency control: CAS the shared lock word
        region = self._lock_region
        old = yield self.node.nic.cas(self.node.id, region.addr,
                                      region.rkey, 0, 1)
        if old != 0:
            return  # another manager is reconfiguring; try next round
        try:
            donor.remove_node(node)
            hungry.add_node(node)
            self._last_moved[node.id] = self.env.now
            self.migrations.append((self.env.now, node.id,
                                    donor.name, hungry.name))
        finally:
            yield self.node.nic.cas(self.node.id, region.addr,
                                    region.rkey, 1, 0)
