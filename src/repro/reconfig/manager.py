"""Reconfiguration manager and service abstraction."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.net.node import Node

from repro.monitor.schemes import MonitorBase

__all__ = ["Service", "ReconfigManager"]

#: CPU work per request on a serving node (µs) unless the request says
DEFAULT_REQ_US = 300.0


class Service:
    """One hosted website/service: thread-per-request over its nodes.

    Requests dispatch round-robin to the service's current nodes and run
    as CPU jobs immediately (Apache's thread-per-connection model), so a
    burst shows up as a thread spike *on the back-end nodes* — visible
    to the reconfiguration manager only through the monitoring layer.
    Requests already running on a migrated-away node finish where they
    are (connection draining).
    """

    def __init__(self, name: str, nodes: Sequence[Node],
                 priority: int = 1, min_nodes: int = 1):
        if not nodes:
            raise ConfigError(f"service {name!r} needs at least one node")
        if min_nodes < 1 or min_nodes > len(nodes):
            raise ConfigError("bad min_nodes")
        self.name = name
        self.priority = priority
        self.min_nodes = min_nodes
        self.env = nodes[0].env
        self.nodes: List[Node] = list(nodes)
        self.submitted = 0
        self.completed = 0
        self.dropped = 0  # requests arriving while the service has no node
        self.latency_sum = 0.0
        self._rr = itertools.count()

    def add_node(self, node: Node) -> None:
        self.nodes.append(node)

    def remove_node(self, node: Node) -> None:
        self.nodes.remove(node)

    # -- load interface ---------------------------------------------------
    def submit(self, work_us: float = DEFAULT_REQ_US) -> None:
        if not self.nodes:
            # every node evicted (e.g. crashed): shed the request rather
            # than crash the dispatcher
            self.dropped += 1
            return
        node = self.nodes[next(self._rr) % len(self.nodes)]
        self.submitted += 1
        self.env.process(self._run_one(node, work_us),
                         name=f"svc-{self.name}@{node.name}")

    def _run_one(self, node: Node, work_us: float):
        arrived_at = self.env.now
        yield node.cpu.run(work_us, name=f"svc-{self.name}")
        self.completed += 1
        self.latency_sum += self.env.now - arrived_at

    @property
    def backlog(self) -> int:
        """Requests in flight (running threads across the service)."""
        return self.submitted - self.completed

    def mean_latency(self) -> float:
        return self.latency_sum / self.completed if self.completed else 0.0


class ReconfigManager:
    """Watches services, migrates nodes, serialized via a CAS lock.

    With a ``detector`` (:class:`repro.monitor.HeartbeatDetector`) the
    manager is **failure-aware**: the instant the detector declares a
    node dead it is evicted from every service hosting it (a crashed
    node serves nothing, so eviction ignores ``min_nodes``), and a
    service pushed below its ``min_nodes`` is backfilled from the
    lowest-priority donor that can spare a live node.  When the node
    comes back the detector reports it alive and the manager restores
    it to the services it was evicted from.
    """

    def __init__(self, coordinator: Node, services: Sequence[Service],
                 monitor: Optional[MonitorBase] = None,
                 detector=None,
                 ddss=None,
                 check_every_us: float = 2_000.0,
                 sensitivity: float = 2.0,
                 cooldown_us: float = 20_000.0):
        if sensitivity <= 1.0:
            raise ConfigError("sensitivity must exceed 1.0")
        self.node = coordinator
        self.env = coordinator.env
        self.services = list(services)
        self.monitor = monitor
        self.detector = detector
        #: optional :class:`repro.ddss.DDSS`: evicting a dead node also
        #: rebalances the units it homes (tombstoning old locations so
        #: stale clients re-resolve instead of writing to a dead home)
        self.ddss = ddss
        self.check_every_us = check_every_us
        self.sensitivity = sensitivity
        self.cooldown_us = cooldown_us
        #: CAS lock word serializing concurrent reconfiguration managers
        self._lock_region = coordinator.memory.register(8, name="reconf-lock")
        #: node id -> last migration time (history-aware reconfiguration)
        self._last_moved: Dict[int, float] = {}
        self.migrations: List[tuple] = []
        #: (time, node_id, service, "evict"|"restore"|"backfill")
        self.evictions: List[tuple] = []
        #: node id -> services it was evicted from (for restore)
        self._evicted: Dict[int, List[Service]] = {}
        #: (time, node_id) — membership changes refused without quorum
        self.fenced: List[tuple] = []
        self._running = False
        if detector is not None:
            detector.subscribe(self._on_transition)

    # -- failure awareness -------------------------------------------------
    def _quorate(self) -> bool:
        """Reconfiguration is only valid while the detector side holds a
        majority (``QuorumGate.has_quorum``); detectors without quorum
        arithmetic (plain heartbeat) never fence."""
        return getattr(self.detector, "has_quorum", True)

    def _on_transition(self, node_id: int, transition: str) -> None:
        if transition == "dead":
            self._evict(node_id)
        else:
            self._restore(node_id)

    def _evict(self, node_id: int) -> None:
        if not self._quorate():
            # a minority view must not rewrite membership: defense in
            # depth behind QuorumGate's own hold-and-fence
            self.fenced.append((self.env.now, node_id))
            self._obs_transition("reconfig.fenced", node_id, "*")
            return
        for svc in self.services:
            victim = next((n for n in svc.nodes if n.id == node_id), None)
            if victim is None:
                continue
            svc.remove_node(victim)
            self._evicted.setdefault(node_id, []).append(svc)
            self.evictions.append((self.env.now, node_id, svc.name,
                                   "evict"))
            self._obs_transition("reconfig.evict", node_id, svc.name)
            self._backfill(svc)
        if self.ddss is not None:
            from repro.errors import DDSSError
            dead = [m.id for m in self.ddss.members
                    if m.id != node_id and self._node_dead(m.id)]
            try:
                self.ddss.migrate_off(node_id, avoid=dead)
            except DDSSError:
                pass  # no live member left; data stays until restore

    def _backfill(self, svc: Service) -> None:
        """Refill a service below min_nodes from the cheapest donor."""
        while len(svc.nodes) < svc.min_nodes:
            donors = [s for s in self.services
                      if s is not svc and len(s.nodes) > s.min_nodes]
            candidates = [(s, n) for s in donors for n in s.nodes
                          if not self._node_dead(n.id)]
            if not candidates:
                return  # nothing can be spared; run degraded
            donor, node = min(
                candidates,
                key=lambda pair: (pair[0].priority, len(pair[0].nodes)))
            donor.remove_node(node)
            svc.add_node(node)
            self._last_moved[node.id] = self.env.now
            self.evictions.append((self.env.now, node.id, svc.name,
                                   "backfill"))
            self._obs_transition("reconfig.backfill", node.id, svc.name)

    def _restore(self, node_id: int) -> None:
        for svc in self._evicted.pop(node_id, []):
            node = self.node.fabric.node(node_id)
            if node in svc.nodes:  # pragma: no cover - defensive
                continue
            svc.add_node(node)
            self.evictions.append((self.env.now, node_id, svc.name,
                                   "restore"))
            self._obs_transition("reconfig.restore", node_id, svc.name)
        if self.ddss is not None and hasattr(self.ddss, "ring_restore"):
            # sharded directory: re-admit the member to the hash ring
            self.ddss.ring_restore(node_id)

    def _obs_transition(self, etype: str, node_id: int,
                        service: str) -> None:
        obs = self.env.obs
        if obs is not None:
            ep = getattr(self.detector, "config_epoch", 0)
            obs.trace.emit(etype, node=self.node.id, mnode=node_id,
                           service=service, ep=ep)
            obs.metrics.counter(f"{etype}s").inc()

    def _node_dead(self, node_id: int) -> bool:
        return self.detector is not None and self.detector.is_dead(node_id)

    def start(self) -> None:
        if self._running:
            raise ConfigError("manager already started")
        self._running = True
        self.env.process(self._loop(), name="reconfig-manager")

    # -- load estimation ---------------------------------------------------
    def _service_pressure(self, svc: Service) -> float:
        """Mean *monitored* thread count of the service's nodes.

        The manager only knows what the monitoring layer tells it, so
        its responsiveness is bounded by the monitor's granularity and
        accuracy — the coarse-vs-fine comparison of the experiment.
        Without a monitor it falls back to front-end-visible backlog.
        """
        if self.monitor is not None:
            ids = {n.id for n in svc.nodes} & set(self.monitor.back_ids)
            if ids:
                threads = sum(self.monitor.view(bid)["n_threads"]
                              for bid in ids)
                return (threads + 1.0) / len(ids)
        return (svc.backlog + 1.0) / max(1, len(svc.nodes))

    def _loop(self):
        while True:
            yield self.env.timeout(self.check_every_us)
            # refresh node views through the monitoring scheme, so the
            # responsiveness of reconfiguration inherits the monitor's
            # granularity (coarse socket vs fine-grained RDMA)
            if self.monitor is not None:
                for bid in self.monitor.back_ids:
                    yield self.monitor.query(bid)
            yield from self._maybe_migrate()

    def _maybe_migrate(self):
        if not self._quorate():
            return  # no membership rewrites from a minority partition
        hungry = max(self.services, key=self._service_pressure)
        # donors: prefer lowest priority, then lowest pressure (QoS)
        donors = [s for s in self.services
                  if s is not hungry and len(s.nodes) > s.min_nodes]
        if not donors:
            return
        donor = min(donors, key=lambda s: (s.priority,
                                           self._service_pressure(s)))
        if (self._service_pressure(hungry)
                < self.sensitivity * self._service_pressure(donor)):
            return
        # pick a donor node outside its cooldown window
        candidates = [n for n in donor.nodes
                      if self.env.now - self._last_moved.get(n.id, -1e18)
                      >= self.cooldown_us]
        if not candidates:
            return
        node = candidates[0]
        # concurrency control: CAS the shared lock word
        region = self._lock_region
        old = yield self.node.nic.cas(self.node.id, region.addr,
                                      region.rkey, 0, 1)
        if old != 0:
            return  # another manager is reconfiguring; try next round
        try:
            donor.remove_node(node)
            hungry.add_node(node)
            self._last_moved[node.id] = self.env.now
            self.migrations.append((self.env.now, node.id,
                                    donor.name, hungry.name))
            obs = self.env.obs
            if obs is not None:
                obs.trace.emit("reconfig.migrate", node=self.node.id,
                               mnode=node.id, frm=donor.name,
                               to=hungry.name)
                obs.metrics.counter("reconfig.migrations").inc()
        finally:
            yield self.node.nic.cas(self.node.id, region.addr,
                                    region.rkey, 1, 0)
