"""Packaged transaction scenarios: checks, benches, and tests share them.

:func:`build_txn_scenario` stands up a cluster, a DDSS substrate, an
N-CoSED lock table (for the 2PL variant), allocates the TPC-C-like key
pools, initializes them through the transactional path, and drives N
workers over a seeded :class:`repro.workloads.TpccMix`.  It returns the
populated observability plus a stats dict (commit/abort tallies and the
account-sum conservation check).

Entry points layered on top:

* ``txn_check_occ`` / ``txn_check_2pl`` / ``txn_check_mixed`` — the
  ``(seed, n_nodes) -> obs`` builders registered in
  :data:`repro.verify.suites.CHECKS`.
* :func:`txn_bench` — the ``repro.lab`` sweep entry measuring commit
  throughput and abort rate across contention × variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ddss.substrate import HEADER_BYTES, VERSION_OFF

__all__ = ["build_txn_scenario", "unit_state", "account_sum",
           "txn_check_occ", "txn_check_2pl", "txn_check_mixed",
           "txn_bench"]

UNIT_BYTES = 32
ACCOUNT_START = 100
STOCK_START = 50


def unit_state(ddss, key: int) -> Tuple[int, bytes]:
    """White-box peek at a unit's (version word, data) on its segment."""
    meta = ddss._directory[key]
    seg = ddss.segment(meta.home)
    off = meta.addr - seg.addr
    word = int.from_bytes(seg.read(off + VERSION_OFF, 8), "big")
    return word, bytes(seg.read(off + HEADER_BYTES, meta.size))


def account_sum(ddss, keys) -> int:
    from repro.workloads.tpcc import balance
    return sum(balance(unit_state(ddss, k)[1]) for k in keys)


def build_txn_scenario(variant: str, seed: int, n_nodes: int,
                       n_keys: int = 4, n_workers: Optional[int] = None,
                       txns_per_worker: int = 5,
                       horizon: float = 300_000.0,
                       p_transfer: float = 0.5,
                       max_attempts: int = 8):
    """Run one transaction scenario; returns ``(obs, stats)``.

    ``variant`` is ``occ``, ``2pl``, or ``mixed`` (workers alternate —
    safe because both protocols commit through the same CAS-install
    word).  ``n_keys`` sizes the account and stock pools: fewer keys =
    hotter keys = more aborts (OCC) or lock waits (2PL).
    """
    from repro.ddss import DDSS, Coherence
    from repro.dlm import NCoSEDManager
    from repro.net import Cluster
    from repro.txn.base import TxnClient
    from repro.txn.occ import OCCTxnClient
    from repro.txn.tpl import TwoPLTxnClient
    from repro.txn.worker import TxnWorker
    from repro.workloads.tpcc import TpccMix, balance

    if variant not in ("occ", "2pl", "mixed"):
        raise ValueError(f"unknown txn variant {variant!r}")
    if n_keys < 2:
        raise ValueError("need at least two account keys")
    n_workers = n_workers or 2 * n_nodes

    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    env = cluster.env
    ddss = DDSS(cluster, segment_bytes=256 * 1024)

    n_districts = max(1, n_keys // 4)
    n_units = 2 * n_keys + n_districts
    accounts: List[int] = []
    districts: List[int] = []
    stock: List[int] = []

    def setup(env):
        client = ddss.client(cluster.nodes[0])
        init = OCCTxnClient(client)
        pools = ([(accounts, ACCOUNT_START)] * n_keys
                 + [(districts, 0)] * n_districts
                 + [(stock, STOCK_START)] * n_keys)
        for i, (pool, start) in enumerate(pools):
            key = yield client.allocate(
                UNIT_BYTES, coherence=Coherence.VERSION,
                placement=cluster.nodes[i % n_nodes].id)
            pool.append(key)
            result = yield init.init(
                key, start.to_bytes(8, "big") + b"\x00" * (UNIT_BYTES - 8))
            assert result.committed, "init txn must commit unopposed"

    p = env.process(setup(env), name="txn-setup")
    env.run_until_event(p)

    lock_of = {k: i for i, k in
               enumerate(accounts + districts + stock)}
    manager = None
    if variant in ("2pl", "mixed"):
        manager = NCoSEDManager(cluster, n_locks=len(lock_of))

    def make_client(i: int) -> TxnClient:
        node = cluster.nodes[i % n_nodes]
        store = ddss.client(node)
        use_2pl = (variant == "2pl"
                   or (variant == "mixed" and i % 2 == 1))
        if use_2pl:
            return TwoPLTxnClient(store, manager.client(node),
                                  lock_of=lock_of,
                                  max_attempts=max_attempts)
        return OCCTxnClient(store, max_attempts=max_attempts)

    clients: List[TxnClient] = []
    workers: List[TxnWorker] = []
    for i in range(n_workers):
        client = make_client(i)
        mix = TpccMix(cluster.rng.get(f"txn-mix-{i}"), accounts,
                      districts, stock, p_transfer=p_transfer)
        worker = TxnWorker(client, name=f"txn-worker-{i}")
        for txn in mix.batch(txns_per_worker):
            worker.add_txn(txn)
        worker.start()
        clients.append(client)
        workers.append(worker)
    env.run(until=horizon)

    attempts = sum(r.attempts for w in workers for r in w.results)
    commits = sum(c.commits for c in clients)
    stats = {
        "variant": variant,
        "n_keys": n_keys,
        "n_workers": n_workers,
        "txns": n_workers * txns_per_worker,
        "done": sum(len(w.results) for w in workers),
        # init txns ran through a separate client, so worker counters
        # cover exactly the workload transactions
        "commits": commits,
        "aborts": sum(c.aborts for c in clients),
        "attempt_aborts": sum(c.retries + c.aborts for c in clients),
        "wedges": sum(c.wedges for c in clients),
        "attempts": attempts,
        "abort_rate": (1.0 - commits / attempts) if attempts else 0.0,
        "commit_per_s": commits / (env.now / 1e6) if env.now else 0.0,
        "account_sum": account_sum(ddss, accounts),
        "conserved": (account_sum(ddss, accounts)
                      == ACCOUNT_START * n_keys),
        "sim_now_us": env.now,
    }
    return obs, stats


# -- verify.suites builders (seed, n_nodes) -> obs ----------------------

def txn_check_occ(seed: int, n_nodes: int):
    return build_txn_scenario("occ", seed, n_nodes, n_keys=4,
                              n_workers=6, txns_per_worker=4)[0]


def txn_check_2pl(seed: int, n_nodes: int):
    return build_txn_scenario("2pl", seed, n_nodes, n_keys=4,
                              n_workers=6, txns_per_worker=4)[0]


def txn_check_mixed(seed: int, n_nodes: int):
    return build_txn_scenario("mixed", seed, n_nodes, n_keys=4,
                              n_workers=6, txns_per_worker=4)[0]


# -- lab entry -----------------------------------------------------------

def txn_bench(variant: str = "occ", n_keys: int = 8, seed: int = 0,
              n_nodes: int = 4, n_workers: int = 8,
              txns_per_worker: int = 6) -> Dict[str, object]:
    """One (variant × contention) cell for the ``txn`` lab sweep."""
    obs, stats = build_txn_scenario(variant, seed, n_nodes,
                                    n_keys=n_keys, n_workers=n_workers,
                                    txns_per_worker=txns_per_worker)
    del obs  # the bench keys off aggregate outcomes, not the trace
    return stats
