"""lstore-style transaction workers: queue transactions, run, join.

A :class:`TxnWorker` owns one :class:`repro.txn.TxnClient` and drains
its queued transactions sequentially in a single simulation process —
N workers over shared keys is the standard concurrent-update
correctness harness (``tests/txn/test_concurrent_updates.py``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TxnError
from repro.sim import Event
from repro.txn.base import Txn, TxnClient, TxnResult

__all__ = ["TxnWorker"]


class TxnWorker:
    """Run queued transactions back to back on one client."""

    def __init__(self, client: TxnClient, name: str = "txn-worker"):
        self.client = client
        self.name = name
        self._queue: List[Txn] = []
        self._event: Optional[Event] = None
        self.results: List[TxnResult] = []

    def add_txn(self, txn: Txn) -> None:
        if self._event is not None:
            raise TxnError(f"{self.name}: already started")
        self._queue.append(txn)

    def start(self) -> Event:
        """Begin draining the queue; the event fires when all done."""
        if self._event is None:
            self._event = self.client.env.process(
                self._drain(), name=self.name)
        return self._event

    def _drain(self):
        for txn in self._queue:
            result = yield self.client.run(txn)
            self.results.append(result)
        return tuple(self.results)

    # -- outcome tallies ------------------------------------------------
    @property
    def commits(self) -> int:
        return sum(1 for r in self.results if r.committed)

    @property
    def aborts(self) -> int:
        return sum(1 for r in self.results
                   if not r.committed and not r.wedged)
