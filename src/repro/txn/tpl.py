"""Two-phase locking over N-CoSED distributed locks.

The pessimistic variant: before touching any data, acquire a per-key
exclusive lock from an :class:`repro.dlm.NCoSEDManager` for every key
in the read set, in canonical (sorted) key order — total ordering makes
deadlock impossible.  Data access then reuses the same snapshot /
claim / publish path as OCC: with every key exclusively locked the CAS
claims cannot conflict with other 2PL transactions, but they still
catch an OCC transaction racing the same keys, an FT lease that was
revoked mid-transaction, or a unit rebalanced under our feet — the
version word remains the final authority (defense in depth).

Growing phase = lock acquisition; shrinking phase = the ``finally``
block releasing every held lock in reverse order, whether the attempt
committed or aborted (strict 2PL).  Under a fault-tolerant lock manager
``acquire`` can raise :class:`repro.errors.LockError` after its retry
budget — that aborts the attempt cleanly and the bounded txn retry loop
takes over.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dlm.base import LockClient, LockMode
from repro.errors import FaultError, LockError, RdmaError, TxnError
from repro.txn.base import Txn, TxnClient

__all__ = ["TwoPLTxnClient"]


class TwoPLTxnClient(TxnClient):
    """Pessimistic variant: lock all keys, then snapshot and install.

    ``lock_of`` maps unit keys to lock ids in the manager's lock table;
    every key a transaction touches must be mapped.
    """

    VARIANT = "2pl"

    def __init__(self, store, locks: LockClient,
                 lock_of: Optional[Dict[int, int]] = None,
                 max_attempts: int = 8):
        super().__init__(store, max_attempts=max_attempts)
        self.locks = locks
        self.lock_of = dict(lock_of) if lock_of else {}

    def map_lock(self, key: int, lock_id: int) -> None:
        self.lock_of[key] = lock_id

    def _attempt(self, txn: Txn, tid: int, attempt: int, keys):
        try:
            lock_ids = [self.lock_of[k] for k in keys]
        except KeyError as exc:
            raise TxnError(f"{txn.label}: key {exc} has no mapped lock")
        held = []
        try:
            for lid in lock_ids:
                yield self.locks.acquire(lid, LockMode.EXCLUSIVE)
                held.append(lid)
            snaps = yield from self._read_phase(tid, attempt, keys)
            writes = self._compute(txn, snaps)
            wkeys = yield from self._claim_and_validate(
                tid, attempt, snaps, writes)
            yield from self._publish(tid, attempt, snaps, writes, wkeys)
            return writes
        finally:
            for lid in reversed(held):
                try:
                    yield self.locks.release(lid)
                except (LockError, FaultError, RdmaError):
                    # a lost lease or dead home: the reaper reclaims it
                    pass
