"""Multi-key transactions over DDSS one-sided verbs (paper §4.1 + §4.2
composed: the data-sharing substrate supplies versioned units, the
distributed lock manager supplies N-CoSED locks, and this package
layers serializable multi-key read-modify-writes on top).

Two interchangeable concurrency-control protocols behind one API:

* :class:`OCCTxnClient` — optimistic (snapshot, CAS-validate, install).
* :class:`TwoPLTxnClient` — two-phase locking over N-CoSED exclusive
  locks in canonical key order.

Both commit through the same version-word CAS-install protocol, so the
variants are mutually safe on shared keys.  Traces are judged offline
by :class:`repro.verify.TxnOracle`.

Example::

    from repro.net import Cluster
    from repro.ddss import DDSS
    from repro.txn import OCCTxnClient, Txn

    cluster = Cluster(n_nodes=3)
    obs = cluster.observe()
    ddss = DDSS(cluster)
    client = OCCTxnClient(ddss.client(cluster.nodes[1]))

    def app(env, store):
        a = yield store.allocate(32)
        b = yield store.allocate(32)
        yield client.init(a, (100).to_bytes(8, "big"))
        yield client.init(b, (0).to_bytes(8, "big"))
        from repro.workloads.tpcc import transfer_txn
        result = yield client.run(transfer_txn(a, b, 25))
        assert result.committed

    cluster.env.process(app(cluster.env, client.store))
    cluster.env.run()
"""

from repro.txn.base import Txn, TxnClient, TxnResult
from repro.txn.occ import OCCTxnClient
from repro.txn.scenarios import build_txn_scenario, txn_bench
from repro.txn.tpl import TwoPLTxnClient
from repro.txn.worker import TxnWorker

__all__ = [
    "OCCTxnClient",
    "Txn",
    "TxnClient",
    "TxnResult",
    "TwoPLTxnClient",
    "TxnWorker",
    "build_txn_scenario",
    "txn_bench",
]
