"""Multi-key transactions over DDSS: common client machinery.

A :class:`Txn` is a read-modify-write over a set of unit keys: the
client snapshots every key in the read set, runs ``compute`` over the
values, and publishes the returned write set (a subset of the read set)
atomically with respect to other transactions.  Two concurrency-control
variants share this base (the taxonomy of RDMA-enabled protocols —
one-sided OCC vs. lock-based 2PL):

* :class:`repro.txn.OCCTxnClient` — optimistic: snapshot, validate by
  CAS-claiming every write-set version word in canonical key order,
  re-check read-only versions, publish.
* :class:`repro.txn.TwoPLTxnClient` — pessimistic: acquire a per-key
  N-CoSED exclusive lock in canonical order first, then run the same
  claim/publish path (defense in depth: a revoked lease or a concurrent
  rebalance still surfaces as a version conflict, never as a lost
  update).

``TxnClient.run(txn)`` returns a simulation event whose value is a
:class:`TxnResult`; attempts that abort are retried with exponential
backoff up to ``max_attempts``.  Every phase emits ``txn.*`` trace
events carrying the transaction id, the attempt number, and payload
fingerprints — the material :class:`repro.verify.TxnOracle` replays to
check serializability offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.ddss.client import DDSSClient, _fingerprint
from repro.ddss.substrate import INSTALL_BIT
from repro.errors import (DDSSError, FaultError, LockError, RdmaError,
                          TimeoutError, TxnConflict, TxnError)
from repro.sim import Event

__all__ = ["Txn", "TxnResult", "TxnClient"]

#: abort-retry backoff (µs): initial, multiplier, cap
_RETRY_BACKOFF = (10.0, 2.0, 400.0)

#: failures that abort an attempt cleanly (unwound, retryable)
_ABORTABLE = (TxnConflict, LockError, DDSSError, FaultError, RdmaError,
              TimeoutError)


@dataclass(frozen=True)
class Txn:
    """One read-modify-write transaction.

    ``reads`` names the unit keys to snapshot; ``compute`` maps the
    snapshot values (``key -> bytes``) to the write set (``key -> new
    bytes``, keys ⊆ reads).  ``compute`` must be pure — it may run once
    per attempt.
    """

    reads: Tuple[int, ...]
    compute: Callable[[Dict[int, bytes]], Dict[int, bytes]]
    label: str = "txn"

    def keys(self) -> Tuple[int, ...]:
        """The read set in canonical (sorted, deduplicated) order."""
        return tuple(sorted(set(self.reads)))


@dataclass
class TxnResult:
    """Outcome of one ``TxnClient.run``."""

    tid: int
    label: str
    committed: bool
    attempts: int
    writes: Tuple[int, ...] = ()
    wedged: bool = False
    reason: str = ""


class _Wedged(TxnError):
    """Internal: publish interrupted after part of the write set became
    durable — neither committed nor cleanly aborted."""

    def __init__(self, installed: Sequence[int], keys: Sequence[int]):
        super().__init__(
            f"publish wedged: {list(installed)} of {list(keys)} durable")
        self.installed = tuple(installed)
        self.keys = tuple(keys)


class TxnClient:
    """Common run/retry loop; variants implement :meth:`_attempt`."""

    VARIANT = "base"

    def __init__(self, store: DDSSClient, max_attempts: int = 8):
        if max_attempts < 1:
            raise TxnError("max_attempts must be >= 1")
        self.store = store
        self.node = store.node
        self.env = store.env
        self.max_attempts = max_attempts
        # outcome counters for benches and tests
        self.commits = 0
        self.aborts = 0   # transactions that exhausted their retries
        self.retries = 0  # aborted attempts that were retried
        self.wedges = 0

    # -- public API -----------------------------------------------------
    def run(self, txn: Txn) -> Event:
        """Execute ``txn``; the event's value is a :class:`TxnResult`."""
        return self.env.process(
            self._run(txn),
            name=f"txn-{self.VARIANT}@{self.node.name}")

    def init(self, key: int, data: bytes) -> Event:
        """Initialize a unit through the transactional path, so its
        first version carries a matching ``txn.install`` event."""
        return self.run(Txn(reads=(key,),
                            compute=lambda _vals: {key: bytes(data)},
                            label="init"))

    # -- run loop -------------------------------------------------------
    def _run(self, txn: Txn):
        keys = txn.keys()
        if not keys:
            raise TxnError("transaction has an empty read set")
        tid = (self.node.id << 20) | self.env.next_id("txn")
        self._emit("txn.begin", tid=tid, variant=self.VARIANT,
                   keys=list(keys), label=txn.label)
        delay, mult, cap = _RETRY_BACKOFF
        for attempt in range(1, self.max_attempts + 1):
            try:
                writes = yield from self._attempt(txn, tid, attempt, keys)
            except _Wedged as exc:
                self.wedges += 1
                self._emit("txn.wedged", tid=tid, attempt=attempt,
                           installed=list(exc.installed),
                           keys=list(exc.keys))
                return TxnResult(tid=tid, label=txn.label, committed=False,
                                 attempts=attempt, wedged=True,
                                 reason=str(exc))
            except _ABORTABLE as exc:
                reason = f"{type(exc).__name__}: {exc}"
                self._emit("txn.abort", tid=tid, attempt=attempt,
                           reason=reason)
                self._count("txn.attempt_aborts")
                if attempt == self.max_attempts:
                    self.aborts += 1
                    self._count("txn.aborts")
                    return TxnResult(tid=tid, label=txn.label,
                                     committed=False, attempts=attempt,
                                     reason=reason)
                self.retries += 1
                yield self.env.timeout(delay)
                delay = min(delay * mult, cap)
                continue
            self.commits += 1
            self._count("txn.commits")
            self._emit("txn.commit", tid=tid, attempt=attempt,
                       keys=sorted(writes), attempts=attempt)
            return TxnResult(tid=tid, label=txn.label, committed=True,
                             attempts=attempt, writes=tuple(sorted(writes)))
        raise AssertionError("unreachable")  # pragma: no cover

    def _attempt(self, txn: Txn, tid: int, attempt: int,
                 keys: Tuple[int, ...]):
        """One attempt; returns the write set or raises to abort."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared phases --------------------------------------------------
    def _read_phase(self, tid: int, attempt: int, keys: Sequence[int]):
        """Snapshot every key; returns ``key -> (version, bytes)``."""
        snaps: Dict[int, Tuple[int, bytes]] = {}
        for k in keys:
            version, data = yield self.store.snapshot(k)
            snaps[k] = (version, bytes(data))
            self._emit("txn.read", tid=tid, attempt=attempt, key=k,
                       version=version, nbytes=len(data),
                       data=_fingerprint(bytes(data)))
        return snaps

    def _compute(self, txn: Txn,
                 snaps: Dict[int, Tuple[int, bytes]]) -> Dict[int, bytes]:
        writes = dict(txn.compute({k: v[1] for k, v in snaps.items()}))
        outside = sorted(set(writes) - set(snaps))
        if outside:
            raise TxnError(
                f"{txn.label}: write set outside read set: {outside}")
        return writes

    def _claim_and_validate(self, tid: int, attempt: int,
                            snaps: Dict[int, Tuple[int, bytes]],
                            writes: Dict[int, bytes]):
        """CAS-claim the write set in canonical order at the snapshot
        versions, then re-check the read-only versions.  On any failure
        the claimed words are unwound before re-raising."""
        wkeys = sorted(writes)
        claimed: List[int] = []
        try:
            for k in wkeys:
                yield self.store.install_lock(k, snaps[k][0])
                claimed.append(k)
            for k in sorted(snaps):
                if k in writes:
                    continue
                word = yield self.store.peek_version(k)
                if word != snaps[k][0]:
                    raise TxnConflict(
                        f"read-set key {k}: version "
                        f"{word & ~INSTALL_BIT} != snapshot "
                        f"{snaps[k][0]}")
        except BaseException:
            self._emit("txn.validate", tid=tid, attempt=attempt, ok=False)
            yield from self._unwind(claimed, snaps)
            raise
        self._emit("txn.validate", tid=tid, attempt=attempt, ok=True)
        return wkeys

    def _unwind(self, claimed: Sequence[int],
                snaps: Dict[int, Tuple[int, bytes]]):
        for k in reversed(list(claimed)):
            try:
                yield self.store.install_abort(k, snaps[k][0])
            except (DDSSError, FaultError, RdmaError):
                # the word stays busy: readers conflict instead of
                # seeing torn state — liveness lost, safety kept
                pass

    def _publish(self, tid: int, attempt: int,
                 snaps: Dict[int, Tuple[int, bytes]],
                 writes: Dict[int, bytes], wkeys: Sequence[int]):
        """Publish every claimed key.  Each key's publish is one atomic
        ``(version, data)`` write; a failure before anything became
        durable unwinds to a clean abort, a failure after leaves the
        remaining claims in place (wedged — readers of the unpublished
        keys conflict rather than observe a torn write set)."""
        installed: List[int] = []
        for k in wkeys:
            try:
                newv = yield self.store.install_publish(
                    k, snaps[k][0], writes[k])
            except (DDSSError, FaultError, RdmaError) as exc:
                if not installed:
                    yield from self._unwind(wkeys, snaps)
                    raise TxnConflict(
                        f"publish of key {k} failed before commit "
                        f"point: {type(exc).__name__}") from exc
                raise _Wedged(installed, wkeys) from exc
            installed.append(k)
            self._emit("txn.install", tid=tid, attempt=attempt, key=k,
                       version=newv, nbytes=len(writes[k]),
                       data=_fingerprint(bytes(writes[k])
                                         + b"\x00" * (self._pad(k)
                                                      - len(writes[k]))))
        return installed

    def _pad(self, key: int) -> int:
        meta = self.store._meta_cache.get(key)
        return meta.size if meta is not None else 0

    # -- observability --------------------------------------------------
    def _emit(self, etype: str, **fields) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.node.id, **fields)

    def _count(self, name: str) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.metrics.counter(name, node=self.node.id).inc()
