"""Optimistic concurrency control over one-sided verbs.

The classic one-sided OCC shape (FaRM/DrTM lineage, applied to the
paper's DDSS unit layout): read everything without coordination, then
make the version words themselves the commit protocol.

Per attempt:

1. **Read** — snapshot every key in the read set (one RDMA read each,
   version + payload in a single atomic transfer).
2. **Validate/claim** — CAS each *write-set* version word from the
   snapshot version to ``version | INSTALL_BIT``, in canonical key
   order; then re-read each *read-only* key's version word and require
   it unchanged.  Any mismatch aborts: claimed words are CAS-restored
   and the attempt retries after backoff.
3. **Install** — one RDMA write per write-set key publishing
   ``(version + 1, new data)`` atomically, which also clears the busy
   bit.  The first publish is the commit point.

No locks, no server CPU on the data path — aborts are the cost of
contention, which the ``txn`` lab sweep measures against 2PL.
"""

from __future__ import annotations

from repro.txn.base import Txn, TxnClient

__all__ = ["OCCTxnClient"]


class OCCTxnClient(TxnClient):
    """Optimistic variant: snapshot, CAS-validate, install."""

    VARIANT = "occ"

    def _attempt(self, txn: Txn, tid: int, attempt: int, keys):
        snaps = yield from self._read_phase(tid, attempt, keys)
        writes = self._compute(txn, snaps)
        wkeys = yield from self._claim_and_validate(
            tid, attempt, snaps, writes)
        yield from self._publish(tid, attempt, snaps, writes, wkeys)
        return writes
