"""``repro.lab`` — parallel experiment orchestrator with a resumable
result store.

The paper's evaluation is a matrix of independent simulations
(transport × coherence model × caching scheme × lock protocol × load);
this package makes that matrix tractable:

* :class:`Sweep` / :class:`RunSpec` — declarative grid over a scenario
  callable, with content-hashed run ids (:mod:`repro.lab.spec`);
* :class:`Runner` — process-pool fan-out with seeded shard scheduling,
  per-run timeouts, crash retry and Ctrl-C draining
  (:mod:`repro.lab.runner`);
* :class:`ResultStore` — append-only JSONL records that make killed
  sweeps resumable (:mod:`repro.lab.store`);
* :func:`merge_tables` — fold records back into
  :class:`~repro.bench.harness.BenchTable`\\ s (:mod:`repro.lab.merge`);
* packaged sweeps + scenario callables (:mod:`repro.lab.scenarios`).

CLI::

    python -m repro lab ls
    python -m repro lab run smoke8 --workers 4
    python -m repro lab resume smoke8
    python -m repro lab show smoke8
    python -m repro lab bench --workers 4
"""

from .merge import merge_tables, merged_records
from .runner import RetryPolicy, Runner, execute_run
from .scenarios import SWEEPS, packaged_sweep
from .spec import RunSpec, Sweep, canonical_json, resolve_dotted
from .store import DEFAULT_ROOT, ResultStore, record_for, store_for

__all__ = [
    "DEFAULT_ROOT",
    "RetryPolicy",
    "RunSpec",
    "Runner",
    "ResultStore",
    "SWEEPS",
    "Sweep",
    "canonical_json",
    "execute_run",
    "merge_tables",
    "merged_records",
    "packaged_sweep",
    "record_for",
    "resolve_dotted",
    "store_for",
]
