"""The lab acceptance benchmark: serial vs parallel, byte-identity.

Runs the packaged 8-run ``bench8`` sweep twice into throwaway stores —
once with ``workers=0`` (the in-process reference path) and once with
``workers=N`` — then certifies that every per-run record is
byte-identical between the two modes and reports the wall-clock
speedup.  ``repro lab bench`` writes the result to ``BENCH_lab.json``
(compare ``BENCH_engine.json``); on a multi-core runner the speedup
should approach the worker count, on a single core it records the
pool overhead instead — ``cpu_count`` is in the report so readers can
tell which they are looking at.
"""

from __future__ import annotations

import os
import platform
import tempfile
from typing import Dict, Optional

from .merge import merge_tables
from .runner import Runner
from .scenarios import packaged_sweep
from .store import ResultStore

__all__ = ["run_lab_bench"]

DEFAULT_RESULT = "BENCH_lab.json"


def _run_mode(sweep_name: str, workers: int, root: str) -> Dict[str, object]:
    sweep = packaged_sweep(sweep_name)
    store = ResultStore(os.path.join(root, f"workers{workers}"))
    runner = Runner(sweep, store, workers=workers)
    report = runner.run()
    tables = merge_tables(sweep, store)
    return {
        "report": report,
        "lines": store.record_lines(),
        "tables": [t.to_dict() for t in tables],
    }


def run_lab_bench(workers: int = 4, sweep_name: str = "bench8",
                  keep_dir: Optional[str] = None) -> Dict[str, object]:
    """Serial-vs-parallel comparison; returns the JSON-ready report."""
    with tempfile.TemporaryDirectory(prefix="repro-lab-bench-") as tmp:
        root = keep_dir or tmp
        serial = _run_mode(sweep_name, 0, root)
        parallel = _run_mode(sweep_name, workers, root)
    s_lines, p_lines = serial["lines"], parallel["lines"]
    identical = s_lines == p_lines
    mismatched = sorted(set(s_lines) ^ set(p_lines)) + \
        [rid for rid in s_lines
         if rid in p_lines and s_lines[rid] != p_lines[rid]]
    s_wall = serial["report"]["wall_s"]
    p_wall = parallel["report"]["wall_s"]
    cpus = os.cpu_count()
    if cpus is not None and cpus < 2:
        # A 1-core container cannot demonstrate parallel speedup; a
        # recorded 1.0 reads as "no benefit" when it really means "not
        # measurable here".  Skip the number, say why.
        speedup = None
        skipped_reason = (f"cpu_count={cpus} < 2: parallel speedup is not "
                          f"measurable on a single-core runner")
    else:
        speedup = round(s_wall / p_wall, 2) if p_wall else None
        skipped_reason = None
    return {
        "schema": 1,
        "suite": "lab",
        "sweep": sweep_name,
        "python": platform.python_version(),
        "cpu_count": cpus,
        "workers": workers,
        "runs": serial["report"]["total"],
        "results": {
            "serial_wall_s": s_wall,
            "parallel_wall_s": p_wall,
            "speedup": speedup,
            "speedup_skipped_reason": skipped_reason,
            "records_identical": identical,
            "mismatched_run_ids": mismatched,
            "tables_identical": serial["tables"] == parallel["tables"],
            "serial_failed": serial["report"]["failed"],
            "parallel_failed": parallel["report"]["failed"],
        },
    }
