"""Declarative experiment specs: what to run, over which grid, how often.

A :class:`Sweep` names a scenario callable by dotted path and describes a
parameter grid, a list of root seeds and a repeat count.  ``expand()``
flattens that into :class:`RunSpec`\\ s — one per (grid point, seed,
repeat) — in a deterministic order that is independent of how the sweep
will be scheduled.

Every run has a **content-hashed id**: the SHA-256 of the canonical JSON
of ``{scenario, params, seed, repeat}``.  The id therefore identifies
*what the run computes*, never *where in the sweep it sits* — adding a
grid point or another seed leaves every existing run id (and its stored
result) valid, which is what makes the result store resumable.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from ..errors import ConfigError
from ..sim.rng import spawn_child

__all__ = ["RunSpec", "Sweep", "canonical_json", "resolve_dotted"]


def canonical_json(obj: Any) -> str:
    """Stable, whitespace-free JSON — the byte form used for hashing
    and for result-store records (so serial and parallel runs serialize
    identically)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def resolve_dotted(path: str) -> Callable:
    """Import ``pkg.mod:attr`` (or ``pkg.mod.attr``) and return it."""
    if ":" in path:
        mod_name, _, attr = path.partition(":")
    else:
        mod_name, _, attr = path.rpartition(".")
    if not mod_name or not attr:
        raise ConfigError(f"not a dotted callable path: {path!r}")
    try:
        mod = importlib.import_module(mod_name)
    except ImportError as exc:
        raise ConfigError(f"cannot import {mod_name!r}: {exc}") from exc
    try:
        fn = getattr(mod, attr)
    except AttributeError as exc:
        raise ConfigError(f"{mod_name!r} has no attribute {attr!r}") from exc
    if not callable(fn):
        raise ConfigError(f"{path!r} is not callable")
    return fn


@dataclass(frozen=True)
class RunSpec:
    """One unit of work: a scenario invocation with fixed parameters."""

    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    repeat: int = 0

    @property
    def run_id(self) -> str:
        digest = hashlib.sha256(canonical_json({
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "repeat": self.repeat,
        }).encode("utf-8")).hexdigest()
        return digest[:16]

    @property
    def effective_seed(self) -> int:
        """Seed handed to the scenario callable.

        Repeat 0 sees the sweep's root seed unchanged (so a one-repeat
        sweep behaves exactly like calling the scenario by hand);
        further repeats get SplitMix-derived child streams instead of
        ``seed + i`` arithmetic.
        """
        if self.repeat == 0:
            return self.seed
        return spawn_child(self.seed, self.repeat)

    def resolve(self) -> Callable:
        return resolve_dotted(self.scenario)

    def to_dict(self) -> Dict[str, Any]:
        return {"scenario": self.scenario, "params": dict(self.params),
                "seed": self.seed, "repeat": self.repeat}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        return cls(scenario=data["scenario"],
                   params=dict(data.get("params", {})),
                   seed=int(data.get("seed", 0)),
                   repeat=int(data.get("repeat", 0)))


@dataclass
class Sweep:
    """A named grid of runs over one scenario callable.

    ``grid`` maps parameter names to value lists (full cross product);
    ``base`` holds constant parameters merged into every run.  ``fold``
    optionally names a ``records -> List[BenchTable]`` callable (dotted
    path) used by the merge step; without one a generic one-row-per-run
    table is built.
    """

    name: str
    scenario: str
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    repeats: int = 1
    fold: str = ""

    def __post_init__(self):
        if not self.name:
            raise ConfigError("sweep needs a name")
        if self.repeats < 1:
            raise ConfigError("repeats must be >= 1")
        if not self.seeds:
            raise ConfigError("sweep needs at least one seed")
        overlap = set(self.base) & set(self.grid)
        if overlap:
            raise ConfigError(
                f"params both swept and fixed: {sorted(overlap)}")

    def expand(self) -> List[RunSpec]:
        """All runs, ordered grid-major → seed → repeat (deterministic
        and schedule-independent)."""
        names = sorted(self.grid)
        combos = itertools.product(*(self.grid[n] for n in names)) \
            if names else [()]
        specs = []
        for combo in combos:
            params = dict(self.base)
            params.update(zip(names, combo))
            for seed in self.seeds:
                for repeat in range(self.repeats):
                    specs.append(RunSpec(scenario=self.scenario,
                                         params=params, seed=int(seed),
                                         repeat=repeat))
        return specs

    def spec_hash(self) -> str:
        """Content hash of the whole sweep (scheduling seed + drift
        guard for resume)."""
        return hashlib.sha256(canonical_json(
            self.to_dict()).encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "grid": {k: list(v) for k, v in sorted(self.grid.items())},
            "base": dict(self.base),
            "seeds": [int(s) for s in self.seeds],
            "repeats": self.repeats,
            "fold": self.fold,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Sweep":
        return cls(name=data["name"], scenario=data["scenario"],
                   grid={k: list(v)
                         for k, v in data.get("grid", {}).items()},
                   base=dict(data.get("base", {})),
                   seeds=tuple(data.get("seeds", (0,))),
                   repeats=int(data.get("repeats", 1)),
                   fold=data.get("fold", ""))
