"""Fold per-run records into paper-style tables.

The merge step is the bridge from the result store back into the
existing bench harness: resolve the sweep's ``fold`` callable (or the
generic per-run fold), build :class:`BenchTable`\\ s, and optionally
``show()``/``replay()`` + dump them as JSON.  Because worker processes
each have their own ``RENDERED`` module-global, tables built *inside*
runs travel as ``show()`` dicts in the run result and are re-registered
here via :func:`repro.bench.harness.replay`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..bench.harness import BenchTable, dump_tables, replay
from .spec import Sweep, resolve_dotted
from .store import ResultStore

__all__ = ["merge_tables", "merged_records"]


def merged_records(store: ResultStore) -> List[Dict[str, Any]]:
    """Store records in the deterministic merge order (by run id)."""
    return sorted(store.records(), key=lambda r: r["run_id"])


def merge_tables(sweep: Sweep, store: ResultStore,
                 show: bool = False,
                 dump_dir: Optional[str] = None) -> List[BenchTable]:
    """Fold a store's records into tables; optionally render + dump.

    Tables come from two places, in order: dicts each run shipped under
    ``result["tables"]`` (worker-side ``show()`` output, replayed here),
    then the sweep-level fold over all records.
    """
    records = merged_records(store)
    shipped = [t for r in records
               if isinstance(r["result"], dict)
               for t in r["result"].get("tables", [])]
    tables: List[BenchTable] = []
    if shipped:
        if show:
            tables.extend(replay(shipped))
        else:
            tables.extend(BenchTable.from_dict(t) for t in shipped)
    fold = resolve_dotted(sweep.fold) if sweep.fold else None
    if fold is not None:
        folded = fold(records)
    else:
        from .scenarios import fold_by_param
        folded = fold_by_param(records, title=f"lab sweep: {sweep.name}")
    for table in folded:
        if show:
            table.show()
        tables.append(table)
    if dump_dir is not None:
        dump_tables(tables, dump_dir)
    return tables
