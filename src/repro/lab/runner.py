"""Parallel experiment runner: fan runs out, retry crashes, resume.

The :class:`Runner` expands a :class:`~repro.lab.spec.Sweep`, skips runs
the :class:`~repro.lab.store.ResultStore` already holds, and executes
the rest either in-process (``workers=0`` — the byte-identical reference
path) or on a :class:`~concurrent.futures.ProcessPoolExecutor`.

Execution discipline:

* **Seeded shard scheduling** — the pending runs are shuffled by a
  PRNG seeded from the sweep's content hash, so the dispatch order is
  deterministic, identical for serial and parallel modes, and spreads
  expensive grid neighbours across workers instead of clumping them.
* **Per-run timeout** — enforced *inside* the worker via ``SIGALRM``
  (where the platform has it), so a wedged simulation turns into an
  ordinary retryable failure instead of a stuck pool slot.
* **Bounded retry with backoff** — scenario exceptions, timeouts and
  worker crashes all consume one attempt from a
  :class:`RetryPolicy` budget (the same ``base × factor^k, capped``
  shape as :mod:`repro.faults`' RPC retry).  A worker crash breaks the
  whole pool (``BrokenProcessPool``); the runner charges an attempt to
  the runs that were in flight, rebuilds the pool and carries on.
* **Graceful Ctrl-C** — the first ``KeyboardInterrupt`` stops new
  submissions, drains the in-flight runs and flushes their records, so
  ``repro lab resume`` picks up exactly where the sweep stopped.

Progress is surfaced twice: an optional single-line terminal ticker and
a :class:`~repro.obs.metrics.MetricsRegistry` (counters per outcome,
log-bucketed wall-time histogram) embedded in the final report.
"""

from __future__ import annotations

import os
import random
import signal
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from ..obs.metrics import MetricsRegistry
from .spec import RunSpec, Sweep, canonical_json
from .store import ResultStore, record_for

__all__ = ["RetryPolicy", "Runner", "RunFailure", "execute_run"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (RPC-retry shaped)."""

    retries: int = 2          #: extra attempts after the first failure
    base_s: float = 0.05      #: first backoff sleep
    factor: float = 2.0       #: growth per consecutive failure
    cap_s: float = 1.0        #: backoff ceiling

    def __post_init__(self):
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.factor < 1.0:
            raise ConfigError("backoff factor must be >= 1.0")

    def delay(self, attempt: int) -> float:
        """Backoff before re-running a spec that failed ``attempt``
        times (attempt >= 1)."""
        return min(self.base_s * self.factor ** (attempt - 1), self.cap_s)


@dataclass
class RunFailure:
    run_id: str
    params: Dict[str, Any]
    seed: int
    repeat: int
    attempts: int
    error: str


class _RunTimeout(Exception):
    pass


def _alarm_handler(signum, frame):  # pragma: no cover - signal context
    raise _RunTimeout()


def execute_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one run; also the pool-worker entry point (picklable).

    ``payload`` is ``{"spec": RunSpec.to_dict(), "timeout_s": float|None}``.
    Returns ``{"record": <deterministic record>, "wall_s": float,
    "pid": int}``.  Raises whatever the scenario raises (the parent
    turns that into a retry); a timeout raises :class:`TimeoutError`.
    """
    spec = RunSpec.from_dict(payload["spec"])
    timeout_s = payload.get("timeout_s")
    fn = spec.resolve()
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    old_handler = None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    t0 = time.perf_counter()
    try:
        result = fn(seed=spec.effective_seed, **spec.params)
    except _RunTimeout:
        raise TimeoutError(
            f"run {spec.run_id} exceeded {timeout_s}s") from None
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old_handler)
    wall = time.perf_counter() - t0
    record = record_for(spec, result)
    # fail *here* (inside the attempt) if the scenario returned
    # something JSON can't carry — the parent sees an ordinary retryable
    # run failure instead of a store crash
    canonical_json(record)
    return {"record": record, "wall_s": round(wall, 4),
            "pid": os.getpid()}


class Runner:
    """Drive one sweep to completion against one result store."""

    def __init__(self, sweep: Sweep, store: Optional[ResultStore] = None,
                 workers: int = 0, timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 progress: bool = False,
                 metrics: Optional[MetricsRegistry] = None):
        if workers < 0:
            raise ConfigError("workers must be >= 0")
        self.sweep = sweep
        self.store = store if store is not None else ResultStore(None)
        self.workers = workers
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.progress = progress
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(env=None)
        self.failures: List[RunFailure] = []
        self.interrupted = False
        self._done = 0
        self._total = 0
        self._skipped = 0

    # -- bookkeeping ----------------------------------------------------
    def _payload(self, spec: RunSpec) -> Dict[str, Any]:
        return {"spec": spec.to_dict(), "timeout_s": self.timeout_s}

    def _tick(self, state: str = "") -> None:
        if not self.progress:
            return
        line = (f"\r[lab {self.sweep.name}] "
                f"{self._done + self._skipped}/{self._total} "
                f"(skipped {self._skipped}, failed {len(self.failures)})")
        if state:
            line += f" {state}"
        sys.stderr.write(line.ljust(72))
        sys.stderr.flush()

    def _record_success(self, spec: RunSpec, out: Dict[str, Any],
                        attempts: int) -> None:
        self.store.append(out["record"])
        self.store.append_journal({
            "run_id": spec.run_id, "attempts": attempts,
            "wall_s": out["wall_s"], "pid": out["pid"]})
        self.metrics.counter("lab.runs.completed").inc()
        self.metrics.histogram("lab.run_wall_us").observe(
            out["wall_s"] * 1e6)
        self._done += 1
        self._tick()

    def _record_failure(self, spec: RunSpec, attempts: int,
                        error: str) -> None:
        self.failures.append(RunFailure(
            run_id=spec.run_id, params=dict(spec.params), seed=spec.seed,
            repeat=spec.repeat, attempts=attempts, error=error))
        self.store.append_journal({
            "run_id": spec.run_id, "attempts": attempts, "error": error})
        self.metrics.counter("lab.runs.failed").inc()
        self._tick()

    def _charge(self, spec: RunSpec, attempts: int, error: str,
                pending: deque) -> None:
        """One attempt failed: requeue within budget or mark failed."""
        if attempts <= self.retry.retries:
            self.metrics.counter("lab.runs.retried").inc()
            pending.append((spec, attempts))
        else:
            self._record_failure(spec, attempts, error)

    # -- public API -----------------------------------------------------
    def pending_specs(self) -> List[RunSpec]:
        """Expanded runs minus completed ones, in seeded-shuffle
        dispatch order."""
        done = self.store.completed_ids()
        specs = [s for s in self.sweep.expand() if s.run_id not in done]
        order = random.Random(int(self.sweep.spec_hash(), 16))
        order.shuffle(specs)
        return specs

    def run(self) -> Dict[str, Any]:
        """Execute every pending run; returns the summary report."""
        all_specs = self.sweep.expand()
        seen = set()
        for s in all_specs:
            if s.run_id in seen:
                raise ConfigError(
                    f"duplicate run in sweep {self.sweep.name!r}: "
                    f"{s.to_dict()}")
            seen.add(s.run_id)
        self.store.write_sweep(self.sweep)
        pending_specs = self.pending_specs()
        self._total = len(all_specs)
        self._skipped = self._total - len(pending_specs)
        if self._skipped:
            self.metrics.counter("lab.runs.skipped").inc(self._skipped)
        t0 = time.perf_counter()
        self._tick()
        try:
            if self.workers == 0:
                self._run_serial(pending_specs)
            else:
                self._run_pool(pending_specs)
        except KeyboardInterrupt:
            self.interrupted = True
        if self.progress:
            self._tick("interrupted" if self.interrupted else "done")
            sys.stderr.write("\n")
        return self.report(wall_s=time.perf_counter() - t0)

    def report(self, wall_s: float = 0.0) -> Dict[str, Any]:
        return {
            "sweep": self.sweep.name,
            "spec_hash": self.sweep.spec_hash(),
            "total": self._total,
            "completed": self._done,
            "skipped": self._skipped,
            "failed": len(self.failures),
            "interrupted": self.interrupted,
            "workers": self.workers,
            "wall_s": round(wall_s, 4),
            "failures": [vars(f) for f in self.failures],
            "metrics": self.metrics.to_dict(),
        }

    # -- serial (reference) path ---------------------------------------
    def _run_serial(self, specs: List[RunSpec]) -> None:
        pending = deque((s, 0) for s in specs)
        while pending:
            spec, attempts = pending.popleft()
            try:
                out = execute_run(self._payload(spec))
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                # BaseException: a scenario calling sys.exit() must not
                # kill the whole sweep
                attempts += 1
                if attempts <= self.retry.retries:
                    time.sleep(self.retry.delay(attempts))
                self._charge(spec, attempts, repr(exc), pending)
                continue
            self._record_success(spec, out, attempts + 1)

    # -- process-pool path ---------------------------------------------
    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _run_pool(self, specs: List[RunSpec]) -> None:
        pending = deque((s, 0) for s in specs)
        pool = self._make_pool()
        inflight: Dict[Any, tuple] = {}
        draining = False
        try:
            while pending or inflight:
                while (not draining and pending
                       and len(inflight) < self.workers):
                    spec, attempts = pending.popleft()
                    try:
                        fut = pool.submit(execute_run,
                                          self._payload(spec))
                    except BrokenProcessPool:
                        pending.appendleft((spec, attempts))
                        pool = self._rebuild(pool, inflight, pending)
                        continue
                    inflight[fut] = (spec, attempts)
                    self._tick(f"{len(inflight)} running")
                if not inflight:
                    if draining:
                        break
                    continue
                try:
                    done, _ = wait(list(inflight),
                                   return_when=FIRST_COMPLETED)
                except KeyboardInterrupt:
                    if draining:
                        raise
                    draining = True
                    self._tick("draining (Ctrl-C again to abort)")
                    continue
                broken = False
                for fut in done:
                    spec, attempts = inflight.pop(fut)
                    try:
                        out = fut.result()
                    except BrokenProcessPool:
                        self._charge(spec, attempts + 1,
                                     "worker crashed (pool broken)",
                                     pending)
                        broken = True
                        continue
                    except KeyboardInterrupt:
                        raise
                    except BaseException as exc:
                        self._charge(spec, attempts + 1, repr(exc),
                                     pending)
                        continue
                    self._record_success(spec, out, attempts + 1)
                if broken:
                    pool = self._rebuild(pool, inflight, pending)
                if draining and not inflight:
                    break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if draining:
            raise KeyboardInterrupt

    def _rebuild(self, pool: ProcessPoolExecutor,
                 inflight: Dict[Any, tuple],
                 pending: deque) -> ProcessPoolExecutor:
        """A worker died: charge in-flight runs, start a fresh pool."""
        pool.shutdown(wait=False, cancel_futures=True)
        for fut, (spec, attempts) in list(inflight.items()):
            self._charge(spec, attempts + 1,
                         "worker crashed (pool broken)", pending)
        inflight.clear()
        self.metrics.counter("lab.pool.rebuilds").inc()
        # the crash retry backoff: one sleep per rebuild, capped
        time.sleep(self.retry.delay(
            max(1, self.metrics.counter("lab.pool.rebuilds").value)))
        return self._make_pool()
