"""Resumable on-disk result store (JSON lines, append-only).

Layout under one sweep's directory (default
``benchmarks/results/lab/<sweep-name>/``)::

    sweep.json       the Sweep that produced the records (resume + drift guard)
    records.jsonl    one canonical-JSON line per *completed* run
    journal.jsonl    timing/attempt side-channel (nondeterministic, never
                     part of any byte-identity guarantee)

``records.jsonl`` lines contain only deterministic fields (run id, spec,
scenario result), serialized with sorted keys and no whitespace — the
same run therefore produces the same bytes whether it executed in-process
(``--workers 0``) or inside a pool worker.  Wall-clock, attempt counts
and worker pids go to ``journal.jsonl``.

Appends are line-atomic-in-practice (single ``write`` + flush); a run
killed mid-write leaves at most one truncated final line, which the
reader skips — that is what makes ``repro lab resume`` safe after a
hard kill.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Set

from ..errors import ConfigError
from .spec import Sweep, canonical_json

__all__ = ["DEFAULT_ROOT", "ResultStore", "record_for", "store_for"]

#: default root for sweep stores, relative to the working directory
DEFAULT_ROOT = os.path.join("benchmarks", "results", "lab")


def record_for(spec, result: Any) -> Dict[str, Any]:
    """The deterministic record written for one completed run."""
    return {
        "run_id": spec.run_id,
        "scenario": spec.scenario,
        "params": dict(spec.params),
        "seed": spec.seed,
        "repeat": spec.repeat,
        "result": result,
    }


class ResultStore:
    """Append-only store for one sweep; ``path=None`` keeps everything
    in memory (used by ephemeral dispatches like the engine suite)."""

    RECORDS = "records.jsonl"
    JOURNAL = "journal.jsonl"
    SWEEP = "sweep.json"

    def __init__(self, path: Optional[str]):
        self.path = path
        self._memory: List[Dict[str, Any]] = []
        if path is not None:
            os.makedirs(path, exist_ok=True)

    # -- helpers --------------------------------------------------------
    def _file(self, name: str) -> str:
        assert self.path is not None
        return os.path.join(self.path, name)

    @staticmethod
    def _read_jsonl(path: str) -> List[Dict[str, Any]]:
        if not os.path.exists(path):
            return []
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        out = []
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                out.append(json.loads(stripped))
            except ValueError as exc:
                if all(not rest.strip() for rest in lines[lineno:]):
                    # truncated tail from a mid-write kill: forgive; the
                    # run will simply re-execute on resume
                    break
                # unparseable line *followed by* more records is not a
                # torn tail — it is corruption, and skipping it would
                # silently drop a completed run on resume
                raise ConfigError(
                    f"corrupt record at {path}:{lineno}: {exc}")
        return out

    # -- sweep metadata -------------------------------------------------
    def write_sweep(self, sweep: Sweep) -> None:
        if self.path is None:
            return
        doc = {"sweep": sweep.to_dict(), "spec_hash": sweep.spec_hash()}
        with open(self._file(self.SWEEP), "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def load_sweep(self) -> Sweep:
        if self.path is None:
            raise ConfigError("in-memory store holds no sweep.json")
        path = self._file(self.SWEEP)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"no resumable sweep at {path}: {exc}")
        except ValueError as exc:
            raise ConfigError(f"corrupt sweep.json at {path}: {exc}")
        return Sweep.from_dict(doc["sweep"])

    def has_sweep(self) -> bool:
        return (self.path is not None
                and os.path.exists(self._file(self.SWEEP)))

    # -- records --------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        if self.path is None:
            self._memory.append(record)
            return
        with open(self._file(self.RECORDS), "a", encoding="utf-8") as fh:
            fh.write(canonical_json(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_journal(self, entry: Dict[str, Any]) -> None:
        if self.path is None:
            return
        with open(self._file(self.JOURNAL), "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def records(self) -> List[Dict[str, Any]]:
        if self.path is None:
            return list(self._memory)
        recs = self._read_jsonl(self._file(self.RECORDS))
        # last-write-wins dedup (a crash between append and the runner's
        # bookkeeping could double-submit one run)
        by_id: Dict[str, Dict[str, Any]] = {}
        for r in recs:
            rid = r.get("run_id")
            if isinstance(rid, str):
                by_id[rid] = r
        return list(by_id.values())

    def completed_ids(self) -> Set[str]:
        return {r["run_id"] for r in self.records()}

    def record_lines(self) -> Dict[str, str]:
        """run_id -> canonical serialized bytes (determinism checks)."""
        return {r["run_id"]: canonical_json(r) for r in self.records()}

    def journal(self) -> List[Dict[str, Any]]:
        if self.path is None:
            return []
        return self._read_jsonl(self._file(self.JOURNAL))


def store_for(name: str, root: Optional[str] = None) -> ResultStore:
    """The on-disk store for a sweep name under ``root`` (or the
    default ``benchmarks/results/lab/``)."""
    return ResultStore(os.path.join(root or DEFAULT_ROOT, name))
