"""Packaged lab scenarios, sweeps and table folds.

A **scenario** is any importable callable ``fn(seed=..., **params)``
returning a JSON-serializable dict; the runner invokes it by dotted name
inside worker processes, so everything here is module-level.  The
single-point scenarios below are the per-grid-point bodies of the
ablation sweeps that ``benchmarks/test_ablations.py`` used to run as
monolithic loops, plus wrappers around the ``repro.obs`` demo scenarios
(chunky, fully deterministic — the parallel-speedup benchmark material)
and the wall-clock engine benchmarks.

A **fold** is a ``records -> List[BenchTable]`` callable named by the
sweep's ``fold`` field; the merge step resolves it by dotted path so
``repro lab show`` can rebuild tables from a store alone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..bench.harness import BenchTable
from .spec import Sweep

__all__ = ["SWEEPS", "packaged_sweep",
           "hybcc_threshold", "monitor_period", "lock_backoff",
           "lock_cascade", "obs_export", "dc_tps", "engine_bench",
           "smoke", "txn_point", "topo_point", "locks_point",
           "fold_by_param", "fold_locks",
           "fold_hybcc", "fold_period", "fold_backoff", "fold_dc",
           "fold_obs", "fold_txn", "fold_topo"]


# ---------------------------------------------------------------------------
# single-point scenarios (ablation grid bodies)
# ---------------------------------------------------------------------------

def hybcc_threshold(threshold: int, seed: int = 1) -> Dict[str, Any]:
    """TPS of one HYBCC datacenter run at a given small/large threshold."""
    from ..cache import HybridCache
    from ..cache import schemes as schemes_mod
    from ..datacenter import DataCenter

    class Tuned(HybridCache):
        def __init__(self, proxies, fileset, capacity, extra_nodes=(),
                     threshold=threshold):
            super().__init__(proxies, fileset, capacity,
                             extra_nodes=extra_nodes, threshold=threshold)

    original = schemes_mod.SCHEMES["HYBCC"]
    schemes_mod.SCHEMES["HYBCC"] = Tuned
    try:
        dc = DataCenter(n_proxies=2, n_app=2, scheme="HYBCC",
                        n_docs=1_200, doc_bytes=16_384,
                        cache_bytes=8 * 1024 * 1024,
                        n_sessions=48, seed=seed)
        tps = dc.run_tps(warmup_us=80_000, measure_us=120_000)
    finally:
        schemes_mod.SCHEMES["HYBCC"] = original
    return {"tps": round(tps)}


def monitor_period(period_us: float, seed: int = 0) -> Dict[str, Any]:
    """RDMA-async monitoring accuracy at one poll period."""
    from ..monitor.experiments import accuracy_trace

    r = accuracy_trace("rdma-async", duration_us=200_000.0,
                       seed=seed, period_us=period_us)
    return {"mean_abs_dev": round(r.mean_abs_deviation, 2),
            "max_dev": r.max_deviation}


def lock_backoff(backoff_cap_us: float, seed: int = 0) -> Dict[str, Any]:
    """DDSS unit-lock contention at one spin-backoff cap."""
    import repro.ddss.client as client_mod
    from ..ddss import DDSS, Coherence
    from ..net import Cluster

    original = client_mod._BACKOFF
    client_mod._BACKOFF = (2.0, 2.0, backoff_cap_us)
    try:
        cluster = Cluster(n_nodes=5, seed=seed)
        ddss = DDSS(cluster)
        key_holder = {}

        def setup(env):
            c = ddss.client(cluster.nodes[0])
            key_holder["key"] = yield c.allocate(
                16, coherence=Coherence.NULL, placement=0)

        p = cluster.env.process(setup(cluster.env))
        cluster.env.run_until_event(p)

        def contender(env, node):
            c = ddss.client(node)
            for _ in range(5):
                yield c.acquire(key_holder["key"])
                yield env.timeout(30.0)
                yield c.release(key_holder["key"])

        procs = [cluster.env.process(contender(cluster.env, n))
                 for n in cluster.nodes[1:]]
        done = cluster.env.all_of(procs)
        cluster.env.run_until_event(done, limit=1e9)
        makespan = cluster.env.now
        atomics = sum(n.nic.atomics for n in cluster.nodes)
    finally:
        client_mod._BACKOFF = original
    return {"makespan_us": round(makespan), "atomics": atomics}


def lock_cascade(manager: str, waiters: int, mode: str = "exclusive",
                 seed: int = 0) -> Dict[str, Any]:
    """One (manager, waiter-count) point of the Fig 5 cascade grid."""
    from ..dlm import (DQNLManager, LockMode, NCoSEDManager, SRSLManager,
                      cascade_latency)

    managers = {"SRSL": SRSLManager, "DQNL": DQNLManager,
                "N-CoSED": NCoSEDManager}
    lock_mode = (LockMode.SHARED if mode == "shared"
                 else LockMode.EXCLUSIVE)
    r = cascade_latency(managers[manager], waiters, lock_mode)
    return {"cascade_us": round(r["cascade_us"], 1)}


# ---------------------------------------------------------------------------
# chunky deterministic scenarios (speedup + determinism material)
# ---------------------------------------------------------------------------

def obs_export(scenario: str = "ddss", seed: int = 0,
               sim_us: float = 0.0) -> Dict[str, Any]:
    """Run a packaged ``repro.obs`` scenario, return its deterministic
    summary (the whole export is seed-determined, so serial and pool
    execution must agree byte for byte)."""
    from ..obs.scenarios import run_scenario

    obs = run_scenario(scenario, seed=seed, sanitize=True, strict=False)
    summary = obs.to_dict()
    return {
        "scenario": scenario,
        "sim_now_us": summary["sim_now_us"],
        "events": summary["events"]["emitted"],
        "violations": len(obs.violations()),
        "counters": summary["metrics"]["counters"],
    }


def dc_tps(scheme: str, doc_bytes: int, seed: int = 0) -> Dict[str, Any]:
    """One cooperative-caching datacenter TPS measurement (~1.5 s of
    host time per run — the chunky, fully deterministic workload the
    parallel-speedup benchmark is made of)."""
    from ..datacenter import DataCenter

    dc = DataCenter(n_proxies=2, n_app=2, scheme=scheme, n_docs=600,
                    doc_bytes=doc_bytes, cache_bytes=4 * 1024 * 1024,
                    n_sessions=24, seed=seed)
    tps = dc.run_tps(warmup_us=50_000, measure_us=150_000)
    return {"tps": round(tps, 3)}


def txn_point(variant: str = "occ", n_keys: int = 8,
              seed: int = 0) -> Dict[str, Any]:
    """One (variant × contention) cell of the OCC-vs-2PL txn sweep."""
    from ..txn.scenarios import txn_bench

    stats = txn_bench(variant=variant, n_keys=n_keys, seed=seed)
    return {
        "commits": stats["commits"],
        "aborts": stats["aborts"],
        "attempt_aborts": stats["attempt_aborts"],
        "wedges": stats["wedges"],
        "abort_rate": round(stats["abort_rate"], 4),
        "commit_per_s": round(stats["commit_per_s"], 1),
        "conserved": stats["conserved"],
    }


def topo_point(racks: int = 2, oversub: float = 1.0,
               seed: int = 0) -> Dict[str, Any]:
    """One (racks × oversub) cell of the 16-node topology lab sweep."""
    from ..topo.scenarios import topo_lab

    return topo_lab(racks=racks, oversub=oversub, seed=seed)


def locks_point(scheme: str = "ncosed", n_clients: int = 64,
                alpha: float = 1.2, chaos: str = "none",
                seed: int = 0) -> Dict[str, Any]:
    """One (scheme × contention × chaos) cell of the lock tournament."""
    from ..dlm.tournament import lock_tournament

    stats = lock_tournament(scheme, n_clients=n_clients, alpha=alpha,
                            chaos=chaos, seed=seed)
    return {
        "grants": stats["grants"],
        "failures": stats["failures"],
        "ops_per_s": round(float(stats["ops_per_s"]), 1),
        "p99_wait_us": round(float(stats["p99_wait_us"]), 3),
        "jain": round(float(stats["jain"]), 4),
        "max_chain": stats["max_chain"],
        "violations": stats["violations"],
    }


def smoke(x: int = 1, seed: int = 0) -> Dict[str, Any]:
    """Tiny deterministic scenario for tests and CI smoke sweeps."""
    from ..sim import Environment, RngStreams

    env = Environment()
    rng = RngStreams(seed).get("lab-smoke")

    def proc(env):
        total = 0.0
        for _ in range(10 * x):
            d = float(rng.exponential(5.0))
            yield env.timeout(d)
            total += d
        return total

    p = env.process(proc(env))
    env.run()
    return {"sim_us": round(env.now, 6), "total": round(p.value, 6)}


# ---------------------------------------------------------------------------
# engine wall-clock benchmarks (nondeterministic results by nature)
# ---------------------------------------------------------------------------

def engine_bench(bench: str, scale: int = 1,
                 seed: int = 0) -> Dict[str, Any]:
    """One benchmark of the ``repro.bench.engine`` suite by name."""
    from ..bench import engine

    if bench == "events":
        return engine._bench_events(100_000 * scale)
    if bench == "agenda":
        return engine._bench_agenda(150_000 * scale)
    if bench == "small_verbs":
        return engine._bench_small_verbs(5_000 * scale)
    if bench == "lock_ops":
        return engine._bench_lock_ops(2_000 * scale)
    if bench == "scenario_ddss":
        return engine._bench_scenario()
    raise ValueError(f"unknown engine bench: {bench!r}")


# ---------------------------------------------------------------------------
# folds: records -> paper-style tables
# ---------------------------------------------------------------------------

def _sorted_records(records: List[Dict[str, Any]],
                    *keys: str) -> List[Dict[str, Any]]:
    return sorted(records,
                  key=lambda r: tuple(r["params"].get(k) for k in keys)
                  + (r["seed"], r["repeat"]))


def fold_by_param(records: List[Dict[str, Any]],
                  title: str = "lab sweep") -> List[BenchTable]:
    """Generic fold: one row per run, param columns then result columns."""
    if not records:
        return [BenchTable(title, ["(empty)"])]
    params = sorted({k for r in records for k in r["params"]})
    res_keys = sorted({k for r in records
                       for k, v in r["result"].items()
                       if isinstance(v, (int, float, str))})
    table = BenchTable(title, params + ["seed", "rep"] + res_keys)
    for r in _sorted_records(records, *params):
        row = [r["params"].get(k, "") for k in params]
        row += [r["seed"], r["repeat"]]
        row += [r["result"].get(k, "") for k in res_keys]
        table.add(*row)
    return [table]


def fold_hybcc(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable(
        "HYBCC threshold ablation (16KB docs, 2 proxies)",
        ["threshold", "tps"],
        paper_ref="design choice: duplication/capacity crossover")
    for r in _sorted_records(records, "threshold"):
        table.add(r["params"]["threshold"], r["result"]["tps"])
    return [table]


def fold_period(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable(
        "RDMA-async poll-period ablation",
        ["period_us", "mean_abs_dev"],
        paper_ref="design choice: millisecond-granularity polling")
    for r in _sorted_records(records, "period_us"):
        table.add(int(r["params"]["period_us"]),
                  r["result"]["mean_abs_dev"])
    return [table]


def fold_backoff(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable(
        "DDSS spin-lock backoff ablation (4 contenders)",
        ["backoff_cap_us", "makespan_us", "atomics"],
        paper_ref="design choice: exponential backoff on CAS failure")
    for r in _sorted_records(records, "backoff_cap_us"):
        table.add(int(r["params"]["backoff_cap_us"]),
                  r["result"]["makespan_us"], r["result"]["atomics"])
    return [table]


def fold_dc(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable("coop-cache TPS sweep (2 proxies)",
                       ["scheme", "doc_bytes", "seed", "tps"])
    for r in _sorted_records(records, "scheme", "doc_bytes"):
        table.add(r["params"]["scheme"], r["params"]["doc_bytes"],
                  r["seed"], r["result"]["tps"])
    return [table]


def fold_txn(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable(
        "OCC vs 2PL commit throughput across contention",
        ["variant", "n_keys", "seed", "commits", "attempt_aborts",
         "abort_rate", "commit_per_s", "conserved"],
        paper_ref="§4.1 + §4.2 composed: DDSS versioned units + "
                  "N-CoSED locks as transaction substrates")
    for r in _sorted_records(records, "variant", "n_keys"):
        table.add(r["params"]["variant"], r["params"]["n_keys"],
                  r["seed"], r["result"]["commits"],
                  r["result"]["attempt_aborts"],
                  r["result"]["abort_rate"],
                  r["result"]["commit_per_s"],
                  r["result"]["conserved"])
    return [table]


def fold_topo(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable(
        "rack/spine topology: completion time vs oversubscription",
        ["racks", "oversub", "seed", "sim_now_us", "xrack_transfers",
         "xrack_bytes"],
        paper_ref="§2 data-center fabric: oversubscribed ToR uplinks "
                  "stretch cross-rack transfers")
    for r in _sorted_records(records, "racks", "oversub"):
        table.add(r["params"]["racks"], r["params"]["oversub"],
                  r["seed"], r["result"]["sim_now_us"],
                  r["result"]["xrack_transfers"],
                  r["result"]["xrack_bytes"])
    return [table]


def fold_locks(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable(
        "lock-design arena: grant throughput vs contention",
        ["scheme", "n_clients", "chaos", "seed", "grants", "failures",
         "ops_per_s", "p99_wait_us", "jain", "violations"],
        paper_ref="§4.2 Fig. 5 extended: N-CoSED/DQNL/SRSL vs the "
                  "ALock cohort lock and RDMA-MCS under Zipf contention")
    for r in _sorted_records(records, "scheme", "n_clients", "chaos"):
        table.add(r["params"]["scheme"], r["params"]["n_clients"],
                  r["params"].get("chaos", "none"), r["seed"],
                  r["result"]["grants"], r["result"]["failures"],
                  r["result"]["ops_per_s"], r["result"]["p99_wait_us"],
                  r["result"]["jain"], r["result"]["violations"])
    return [table]


def fold_obs(records: List[Dict[str, Any]]) -> List[BenchTable]:
    table = BenchTable("obs scenario sweep",
                       ["scenario", "seed", "sim_now_us", "events",
                        "violations"])
    for r in _sorted_records(records, "scenario"):
        table.add(r["params"]["scenario"], r["seed"],
                  r["result"]["sim_now_us"], r["result"]["events"],
                  r["result"]["violations"])
    return [table]


# ---------------------------------------------------------------------------
# packaged sweeps
# ---------------------------------------------------------------------------

_HERE = "repro.lab.scenarios"


def _ablation_hybcc() -> Sweep:
    return Sweep(name="ablation-hybcc",
                 scenario=f"{_HERE}:hybcc_threshold",
                 grid={"threshold": [4_096, 8_192, 16_384, 32_768]},
                 seeds=(1,), fold=f"{_HERE}:fold_hybcc")


def _ablation_period() -> Sweep:
    return Sweep(name="ablation-period",
                 scenario=f"{_HERE}:monitor_period",
                 grid={"period_us": [500.0, 1_000.0, 5_000.0, 20_000.0]},
                 seeds=(0,), fold=f"{_HERE}:fold_period")


def _ablation_backoff() -> Sweep:
    return Sweep(name="ablation-backoff",
                 scenario=f"{_HERE}:lock_backoff",
                 grid={"backoff_cap_us": [5.0, 50.0, 400.0]},
                 seeds=(0,), fold=f"{_HERE}:fold_backoff")


def _bench8() -> Sweep:
    """8 chunky deterministic runs — the parallel-speedup benchmark."""
    return Sweep(name="bench8", scenario=f"{_HERE}:dc_tps",
                 grid={"scheme": ["AC", "CCWR"],
                       "doc_bytes": [8_192, 16_384]},
                 seeds=(0, 1), fold=f"{_HERE}:fold_dc")


def _obs4() -> Sweep:
    """Every packaged obs scenario at one seed (sanitizers on)."""
    return Sweep(name="obs4", scenario=f"{_HERE}:obs_export",
                 grid={"scenario": ["chaos", "ddss", "flow", "locks"]},
                 seeds=(0,), fold=f"{_HERE}:fold_obs")


def _txn() -> Sweep:
    """OCC vs 2PL across three contention levels (hot -> cold keys)."""
    return Sweep(name="txn", scenario=f"{_HERE}:txn_point",
                 grid={"variant": ["occ", "2pl"],
                       "n_keys": [2, 8, 32]},
                 seeds=(0,), fold=f"{_HERE}:fold_txn")


def _topo16() -> Sweep:
    """Bounded 16-node topology grid: rack count × oversubscription."""
    return Sweep(name="topo16", scenario=f"{_HERE}:topo_point",
                 grid={"racks": [2, 4], "oversub": [1.0, 4.0]},
                 seeds=(0,), fold=f"{_HERE}:fold_topo")


def _locks() -> Sweep:
    """Bounded lock-arena grid: all five designs × two contention
    levels (the full crossover lives in ``repro locks bench``)."""
    return Sweep(name="locks", scenario=f"{_HERE}:locks_point",
                 grid={"scheme": ["srsl", "dqnl", "ncosed", "mcs",
                                  "alock"],
                       "n_clients": [64, 256]},
                 seeds=(0,), fold=f"{_HERE}:fold_locks")


def _smoke8() -> Sweep:
    """8 fast runs — CI wiring checks, not performance."""
    return Sweep(name="smoke8", scenario=f"{_HERE}:smoke",
                 grid={"x": [1, 2]}, seeds=(0, 1), repeats=2)


def _engine(quick: bool = False) -> Sweep:
    return Sweep(name="engine", scenario=f"{_HERE}:engine_bench",
                 grid={"bench": ["events", "small_verbs", "lock_ops",
                                 "scenario_ddss"]},
                 base={"scale": 1 if quick else 4})


SWEEPS: Dict[str, Callable[[], Sweep]] = {
    "ablation-hybcc": _ablation_hybcc,
    "ablation-period": _ablation_period,
    "ablation-backoff": _ablation_backoff,
    "bench8": _bench8,
    "obs4": _obs4,
    "smoke8": _smoke8,
    "engine": _engine,
    "txn": _txn,
    "topo16": _topo16,
    "locks": _locks,
}


def packaged_sweep(name: str) -> Sweep:
    from ..errors import ConfigError

    factory = SWEEPS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown sweep {name!r}; available: "
            f"{', '.join(sorted(SWEEPS))}")
    return factory()
