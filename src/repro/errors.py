"""Exception hierarchy for the reproduction library."""

from __future__ import annotations

import builtins
import warnings

__all__ = [
    "ReproError",
    "RdmaError",
    "ProtectionError",
    "BoundsError",
    "TransportError",
    "PeerResetError",
    "ConnectionResetError_",
    "TimeoutError",
    "FaultError",
    "NodeDownError",
    "PartitionError",
    "DDSSError",
    "AllocationError",
    "CoherenceError",
    "StaleHomeError",
    "TxnError",
    "TxnConflict",
    "LockError",
    "CacheError",
    "MonitorError",
    "ConfigError",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class RdmaError(ReproError):
    """Base class for RDMA verb failures."""


class ProtectionError(RdmaError):
    """Remote access with a wrong or revoked rkey."""


class BoundsError(RdmaError):
    """Remote access outside a registered memory region."""


class TransportError(ReproError):
    """Socket/SDP transport failure."""


class PeerResetError(TransportError):
    """Peer endpoint was closed while data was in flight."""


class TimeoutError(ReproError, builtins.TimeoutError):
    """An operation exceeded its deadline (retry budget exhausted).

    Also subclasses the builtin ``TimeoutError`` so generic handlers
    written against the standard library catch it.
    """


class FaultError(ReproError):
    """An injected fault surfaced to the application."""


class NodeDownError(FaultError):
    """Communication with a crashed (or unreachable) node."""


class PartitionError(NodeDownError):
    """Transfer crossed an injected network partition.

    Subclasses :class:`NodeDownError`: from the initiator's NIC a cut
    link is indistinguishable from a dead peer (the RC retry budget is
    exhausted either way), so every handler written for crashes also
    tolerates partitions.
    """


class DDSSError(ReproError):
    """Distributed data sharing substrate failure."""


class AllocationError(DDSSError):
    """No space left in any shared-state segment."""


class CoherenceError(DDSSError):
    """Coherence-model contract violation."""


class StaleHomeError(DDSSError):
    """A one-sided op hit a tombstoned unit location (rebalanced away).

    The unit was migrated to a new home after the client cached its
    metadata; the client must invalidate the cache, re-resolve the key
    through the directory, and retry at the new location.
    """


class TxnError(ReproError):
    """Multi-key transaction failure."""


class TxnConflict(TxnError):
    """Optimistic validation failed: a read or write set member changed
    (or is mid-install) since the snapshot.  Abort and retry."""


class LockError(ReproError):
    """Distributed lock manager protocol failure."""


class CacheError(ReproError):
    """Cooperative cache failure."""


class MonitorError(ReproError):
    """Resource-monitoring failure."""


class ConfigError(ReproError):
    """Invalid configuration of a simulated component."""


class SanitizerError(ReproError):
    """A protocol sanitizer observed an invariant violation online.

    Raised at the emission instant (strict mode) so the offending event
    is at the top of the traceback; in collecting mode the violation is
    only recorded on the sanitizer (see :mod:`repro.obs.sanitizers`).
    """


def __getattr__(name: str):
    # Deprecated alias kept for one release; the trailing-underscore name
    # was easy to mistype and awkwardly shadow-avoided the builtin.
    if name == "ConnectionResetError_":
        warnings.warn(
            "ConnectionResetError_ is deprecated; use PeerResetError",
            DeprecationWarning, stacklevel=2)
        return PeerResetError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
