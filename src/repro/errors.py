"""Exception hierarchy for the reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RdmaError",
    "ProtectionError",
    "BoundsError",
    "TransportError",
    "ConnectionResetError_",
    "DDSSError",
    "AllocationError",
    "CoherenceError",
    "LockError",
    "CacheError",
    "MonitorError",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class RdmaError(ReproError):
    """Base class for RDMA verb failures."""


class ProtectionError(RdmaError):
    """Remote access with a wrong or revoked rkey."""


class BoundsError(RdmaError):
    """Remote access outside a registered memory region."""


class TransportError(ReproError):
    """Socket/SDP transport failure."""


class ConnectionResetError_(TransportError):
    """Peer endpoint was closed while data was in flight."""


class DDSSError(ReproError):
    """Distributed data sharing substrate failure."""


class AllocationError(DDSSError):
    """No space left in any shared-state segment."""


class CoherenceError(DDSSError):
    """Coherence-model contract violation."""


class LockError(ReproError):
    """Distributed lock manager protocol failure."""


class CacheError(ReproError):
    """Cooperative cache failure."""


class MonitorError(ReproError):
    """Resource-monitoring failure."""


class ConfigError(ReproError):
    """Invalid configuration of a simulated component."""
