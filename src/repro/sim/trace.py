"""Lightweight measurement helpers: time series and tallies.

Used by benches and services to record latencies, throughput windows and
time-weighted quantities without pulling in external dependencies.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["Tally", "TimeSeries", "TimeWeighted", "percentile", "rank_of"]


def rank_of(q: float, n: int) -> int:
    """Nearest-rank index for percentile ``q`` over ``n`` observations.

    The single rank rule shared by :func:`percentile` (exact, sorted
    samples) and :meth:`repro.obs.metrics.LatencyHistogram.percentile`
    (log-bucketed counts), so benches and the observability layer report
    identical quantiles for identical data.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    if n <= 0:
        raise ValueError("percentile of empty sequence")
    return max(0, min(n - 1, math.ceil(q / 100 * n) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence.

    NaN inputs are rejected: NaN is unordered, so ``sorted`` would place
    it arbitrarily and silently corrupt every quantile after it.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if any(math.isnan(v) for v in values):
        raise ValueError("percentile of sequence containing NaN")
    ordered = sorted(values)
    return ordered[rank_of(q, len(ordered))]


class Tally:
    """Streaming count/mean/min/max/variance of scalar observations."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        if math.isnan(x):
            # A NaN observation would poison mean/variance forever and
            # make min/max comparisons silently false; refuse it here,
            # at the boundary, where the caller can still see why.
            raise ValueError(f"NaN observation in tally {self.name!r}")
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: "Tally") -> "Tally":
        """Fold ``other``'s observations into this tally (in place).

        Uses the parallel variance combination (Chan et al.), so merging
        per-shard tallies yields the same count/mean/variance as one
        tally over the union.  Merging an empty tally — either side — is
        a no-op on the statistics; ``self`` is returned for chaining.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Tally {self.name} n={self.count} mean={self.mean:.3f} "
                f"min={self.min:.3f} max={self.max:.3f}>")


class TimeSeries:
    """(time, value) samples with simple aggregation helpers."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    def window_rate(self, t0: float, t1: float) -> float:
        """Events per microsecond within [t0, t1)."""
        if t1 <= t0:
            raise ValueError("empty window")
        n = sum(1 for t in self.times if t0 <= t < t1)
        return n / (t1 - t0)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise ValueError("empty time series")
        return self.times[-1], self.values[-1]


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity."""

    def __init__(self, t0: float = 0.0, v0: float = 0.0):
        self._t = t0
        self._v = v0
        self._integral = 0.0
        self._start = t0

    def set(self, t: float, v: float) -> None:
        if t < self._t:
            raise ValueError("time went backwards")
        self._integral += self._v * (t - self._t)
        self._t = t
        self._v = v

    def mean(self, t: Optional[float] = None) -> float:
        t = self._t if t is None else t
        horizon = t - self._start
        if horizon <= 0:
            return self._v
        return (self._integral + self._v * (t - self._t)) / horizon
