"""Discrete-event simulation kernel.

This package provides the simulation substrate on which the whole
reproduction runs: a deterministic event loop (:class:`Environment`),
generator-based processes, timeout/condition events, FIFO stores,
counting resources, and a processor-sharing CPU model.

The design follows the classic event/process paradigm (cf. SimPy) but is
implemented from scratch so the repository is self-contained.  Time is a
float in **microseconds** everywhere.

Quickstart::

    from repro.sim import Environment

    env = Environment()

    def hello(env):
        yield env.timeout(5.0)
        return env.now

    proc = env.process(hello(env))
    env.run()
    assert proc.value == 5.0
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    heap_agenda_requested,
    slow_kernel_requested,
)
from repro.sim.cpu import CPU, CPUJob
from repro.sim.resources import Gate, Resource, Store
from repro.sim.rng import RngStreams, spawn_child

__all__ = [
    "AllOf",
    "AnyOf",
    "CPU",
    "CPUJob",
    "Environment",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Store",
    "Timeout",
    "heap_agenda_requested",
    "slow_kernel_requested",
    "spawn_child",
]
