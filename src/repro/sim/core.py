"""Event loop, events and generator-based processes.

The kernel is deliberately small and deterministic:

* :class:`Environment` owns the clock and the agenda.
* :class:`Event` is a one-shot occurrence that carries a value (or an
  exception) and a list of callbacks.
* :class:`Process` wraps a generator.  Each ``yield`` must produce an
  :class:`Event`; the process resumes when that event fires.  The process
  itself is an event that fires when the generator returns, so processes
  compose (``yield env.process(...)`` joins a child).

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
seeded simulation always replays identically.  Every agenda flavour
below realises the identical ``(when, seq)`` total order — they differ
only in how fast they realise it.

Three agenda flavours (see DESIGN.md §14):

* **ladder** (default) — a *lazy* calendar/ladder queue.  While the
  agenda is small it stays on the binary heap ("direct mode"): C
  ``heapq`` on a handful of entries is unbeatable from Python, so small
  agendas pay zero ladder overhead.  Once the heap outgrows
  ``_HEAPMAX`` entries a window is installed: a slab is pulled off the
  heap and dealt into an array of buckets sized for ~8 entries each;
  enqueue appends to a bucket in O(1), dequeue walks a sorted *current
  run* by index (pointer motion, no list surgery), and entries beyond
  the window stay on the heap as the overflow tier.  Each rebase
  re-tunes the bucket width to the slab's span, which keeps buckets
  dense for both µs-scale verb traffic and sparse second-scale timers.
  Entries landing inside the already-sorted current run are placed by
  ``bisect.insort`` — correct because any new entry carries ``when >
  now`` and a fresh (maximal) seq, so it can only sort after everything
  already popped.
* **heap** (``REPRO_HEAP_AGENDA=1``) — the previous kernel: a binary
  heap plus the same-instant deque.  Kept as a byte-identical fallback
  and as the comparison subject of the agenda microbenchmark.
* **slow** (``REPRO_SLOW_KERNEL=1``) — the naive heap-only paths, no
  same-instant deque, and the net layer skips its analytic shortcuts
  (``Environment.fastpath`` off).

Fast path: entries scheduled *at the current time* (triggered events,
process inits, zero-delay timeouts) go to a FIFO deque instead of the
agenda.  Every schedule — agenda or deque — still consumes one number
from the shared sequence counter, and the merge in :meth:`Environment.step`
pops whichever of (deque head, agenda head) has the globally smallest
``(when, seq)``, so the total firing order is exactly the heap-only
order (see DESIGN.md §9 for the argument).  The unbounded
:meth:`Environment.run` loop additionally dispatches consecutive
same-instant agenda entries as one batch: one head inspection plus a
tight loop instead of a full merge per entry.
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Environment",
    "slow_kernel_requested",
    "heap_agenda_requested",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yield of non-event...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a reconfiguration decision preempting a worker).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()
# Sentinel for agenda entries whose event value was set at trigger time.
_ALREADY = object()
# Sentinel marking an agenda entry that carries a bare callable instead
# of an Event: no allocation, no callback list, just ``fn()`` at fire
# time.  Used by the net-layer fast paths for their internal stages.
_CALL = object()

_INF = float("inf")

#: ladder geometry.  Bucket width is *derived* per rebase from the
#: dense head's span (the first ``_REBASE_CAP`` overflow entries spread
#: over ``_HEADNB`` buckets, ~16 entries each) — dense narrow bands get
#: nanosecond buckets, sparse slabs get wide ones, so there is no fixed
#: width to mis-tune; ``_WIDTH0`` only seeds the degenerate all-ties
#: window.  The window itself spans ``_NBUCKETS`` buckets — 16× the
#: head span of runway — so a running workload's new pushes keep
#: landing in buckets instead of round-tripping through the overflow
#: heap.  One spare bucket absorbs float-rounding at the top edge.
_NBUCKETS = 4096
_HEADNB = 256
_WIDTH0 = 2.0
#: target slab size of a rebase: the window is sized to twice the span
#: of the first this-many overflow entries, so a single far-future
#: straggler cannot stretch the bucket width (entries past the limit
#: stay in the overflow tier).
_REBASE_CAP = 4096
#: agendas at or below this size stay on the binary heap ("direct
#: mode"): C ``heapq`` on a handful of entries is a two-level sift that
#: no bucket scheme can undercut from Python.  Only past this size does
#: the O(log n) sift lose to O(1) bucket appends, so only then is a
#: calendar window installed.
_HEAPMAX = 1024


def slow_kernel_requested() -> bool:
    """True when ``REPRO_SLOW_KERNEL`` asks for the naive heap-only paths.

    Read once per :class:`Environment` at construction so a test can
    toggle the variable between simulations within one process.
    """
    return os.environ.get("REPRO_SLOW_KERNEL", "") not in ("", "0")


def heap_agenda_requested() -> bool:
    """True when ``REPRO_HEAP_AGENDA`` asks for the binary-heap agenda.

    The heap kernel keeps the same-instant deque and every net-layer
    fast path — it differs from the default only in the agenda data
    structure, so it serves as the reference the ladder is diffed
    against (three-way kernel equivalence in ``repro check``).  Read
    once per :class:`Environment` at construction, like
    :func:`slow_kernel_requested`.
    """
    return os.environ.get("REPRO_HEAP_AGENDA", "") not in ("", "0")


class Event:
    """A one-shot occurrence.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks then run from the event loop at the current simulation
    time.  Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok = True

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._queue_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.env._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at once so late subscribers don't hang.
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        env._schedule_at(env._now + delay, self, value=value)


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_gen", "_target", "name")

    def __init__(self, env: "Environment",
                 gen: Generator[Event, Any, Any],
                 name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process requires a generator, got {type(gen).__name__}")
        super().__init__(env)
        self._gen = gen
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current time via an initialisation event.
        init = Event(env)
        init._value = None
        init.callbacks.append(self._resume)
        env._queue_event(init)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("process cannot interrupt itself")
        # Detach from whatever it is waiting for; deliver the interrupt.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier.add_callback(self._resume_throw)
        self.env._queue_event(carrier)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Hot path: one resume per yield of every process.  Property
        # accessors (is_alive / triggered) are inlined to plain slot
        # reads; the interrupt carrier arrives with ``_ok`` False so a
        # single branch covers both send and throw.
        if self._value is not _PENDING:
            return
        self._target = None
        try:
            if event._ok:
                nxt = self._gen.send(event._value)
            else:
                nxt = self._gen.throw(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self.env._queue_event(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.env._queue_event(self)
            if all(getattr(cb, "_obs_passive", False)
                   for cb in self.callbacks):
                # Nobody is watching this process (observability
                # completion probes don't count as watchers): surface
                # the crash instead of swallowing it.
                raise
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {nxt!r}")
        if nxt.env is not self.env:
            raise SimulationError("yielded event belongs to another Environment")
        self._target = nxt
        cbs = nxt.callbacks
        if cbs is None:
            # Yielded an already-processed event: resume immediately,
            # same as Event.add_callback would.
            self._resume(nxt)
        else:
            cbs.append(self._resume)

    _resume_throw = _resume  # interrupt carriers always have _ok False


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
        else:
            for ev in self.events:
                ev.add_callback(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered}

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its children fires (value: dict of done)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all children have fired (value: dict event -> value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation clock and agenda."""

    #: Observability handle (:class:`repro.obs.Observability`), installed
    #: by ``Observability.install()``.  ``None`` means tracing/metrics are
    #: off: every emission site guards on this attribute, the same inert
    #: pattern :class:`repro.faults.FaultInjector` uses on the fabric, so
    #: a disabled run pays one attribute load per hook and nothing else.
    obs = None

    def __init__(self, initial_time: float = 0.0):
        now = float(initial_time)
        self._now = now
        #: slow/heap agenda — and, in ladder mode, the overflow tier
        #: holding entries beyond the active window.  The tier invariant
        #: (every overflow ``when`` >= ``_llimit`` > every windowed
        #: ``when``, up to seq on equality) makes the global head either
        #: the run head or, with an empty window, the overflow min.
        self._heap: list = []
        #: FIFO of ``(seq, event, value)`` entries scheduled at the
        #: current time; merged with the agenda by seq in :meth:`step`.
        self._imm: deque = deque()
        self._seq = 0
        self._id_streams: dict = {}
        #: False under ``REPRO_SLOW_KERNEL=1``: immediate entries take
        #: the heap and the net layer skips its analytic shortcuts.
        self.fastpath = not slow_kernel_requested()
        #: True when the calendar/ladder agenda is active (the default);
        #: ``REPRO_HEAP_AGENDA=1`` or the slow kernel fall back to the
        #: binary heap.
        self._ladder = self.fastpath and not heap_agenda_requested()
        # -- ladder state --------------------------------------------------
        #: sorted entries of the bucket being drained; ``_lpos`` is the
        #: index of the next entry to fire (popping is pointer motion,
        #: not list surgery).
        self._lrun: list = []
        self._lpos = 0
        #: index of the bucket ``_lrun`` came from; -1 right after a
        #: rebase (no bucket drained yet).
        self._lcur = -1
        #: min-heap of non-empty bucket indices beyond ``_lcur`` — the
        #: advance step jumps straight to the next occupied bucket
        #: instead of walking empty ones.
        self._locc: list = []
        #: windowed entries not yet fired (run remainder + buckets).
        self._lcount = 0
        self._lbase = now
        self._linv = 1.0 / _WIDTH0
        #: window end — pushes at or beyond it take the heap.  ``-inf``
        #: means *no window* ("direct mode"): every push is a plain
        #: ``heappush``, exactly the heap kernel.  The heap and slow
        #: kernels keep ``-inf`` forever; the ladder kernel installs a
        #: real window only when the heap outgrows ``_HEAPMAX``, and
        #: falls back to ``-inf`` when the window drains onto a small
        #: heap — so small agendas pay zero ladder overhead.
        self._llimit = -_INF
        #: bucket array, allocated lazily at the first rebase.
        self._lbuckets: Optional[list] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    # -- identifiers ----------------------------------------------------
    def next_id(self, stream: str = "default") -> int:
        """Monotonically increasing id from a named per-environment stream.

        Scoped to this Environment so that two simulations in one process
        never share counters (message ids, request ids) — a requirement
        for reproducibility.
        """
        n = self._id_streams.get(stream, 0) + 1
        self._id_streams[stream] = n
        return n

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Flattened Timeout construction: one call, no __init__ chain —
        # this is the single hottest allocation site in the kernel
        # benchmarks.  Semantically identical to ``Timeout(self, delay,
        # value)``.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        ev = Timeout.__new__(Timeout)
        ev.env = self
        ev.callbacks = []
        ev._value = _PENDING
        ev._ok = True
        ev.delay = delay
        now = self._now
        when = now + delay
        seq = self._seq = self._seq + 1
        if when == now and self.fastpath:
            self._imm.append((seq, ev, value))
        elif when >= self._llimit:
            # Direct mode (``_llimit == -inf``) or beyond the window.
            heappush(self._heap, (when, seq, ev, value))
        else:
            i = int((when - self._lbase) * self._linv)
            if i > self._lcur:
                b = self._lbuckets[i]
                if not b:
                    heappush(self._locc, i)
                b.append((when, seq, ev, value))
            else:
                insort(self._lrun, (when, seq, ev, value), self._lpos)
            self._lcount += 1
        return ev

    def process(self, gen: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule_at(self, when: float, event: Event,
                     value: Any = _ALREADY) -> None:
        seq = self._seq = self._seq + 1
        if when == self._now and self.fastpath:
            self._imm.append((seq, event, value))
        elif when >= self._llimit:
            # Direct mode (``_llimit == -inf``, which covers the heap
            # and slow kernels too) or beyond the active window: plain
            # binary-heap push.
            heappush(self._heap, (when, seq, event, value))
        else:
            # Windowed ladder enqueue.  The bucket index is a monotone
            # map of ``when`` (shared base/inverse-width), so an entry
            # for a later bucket can never sort before one in an
            # earlier bucket; entries for the current (or an already
            # drained) bucket join the sorted run via insort — always
            # *after* ``_lpos`` because their ``when`` exceeds ``now``
            # and their seq is fresh, i.e. greater than everything
            # already fired.
            i = int((when - self._lbase) * self._linv)
            if i > self._lcur:
                b = self._lbuckets[i]
                if not b:
                    heappush(self._locc, i)
                b.append((when, seq, event, value))
            else:
                insort(self._lrun, (when, seq, event, value), self._lpos)
            self._lcount += 1

    def _queue_event(self, event: Event) -> None:
        """Schedule a triggered event's callbacks at the current time."""
        seq = self._seq = self._seq + 1
        if self.fastpath:
            self._imm.append((seq, event, _ALREADY))
        else:
            heappush(self._heap, (self._now, seq, event, _ALREADY))

    def _schedule_call(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callable — the allocation-free agenda entry.

        Only for internal stages whose sole consumer is ``fn`` itself
        (nobody can add callbacks or yield on it).  The net-layer fast
        paths use this for link release / wire arrival / service stages.
        """
        seq = self._seq = self._seq + 1
        if when == self._now and self.fastpath:
            self._imm.append((seq, fn, _CALL))
        elif when >= self._llimit:
            heappush(self._heap, (when, seq, fn, _CALL))
        else:
            i = int((when - self._lbase) * self._linv)
            if i > self._lcur:
                b = self._lbuckets[i]
                if not b:
                    heappush(self._locc, i)
                b.append((when, seq, fn, _CALL))
            else:
                insort(self._lrun, (when, seq, fn, _CALL), self._lpos)
            self._lcount += 1

    # -- ladder internals ----------------------------------------------
    def _ladvance(self) -> bool:
        """Make ``_lrun[_lpos]`` the smallest not-yet-fired agenda entry.

        Called only with the current run exhausted.  Installs the next
        non-empty bucket as the run (sorting it once — entries were
        appended unsorted in O(1)); with the whole window drained it
        either *rebases* — sorts the overflow, re-tunes the window to
        the dense head's span and pulls everything below the new limit,
        sizing buckets for ~8 entries each so the advance step
        amortises — or, when the heap holds at
        most ``_HEAPMAX`` entries, drops back to direct mode (the heap
        *is* the agenda; C heapq wins at that size).  Returns False when
        there is no windowed head — callers then pop ``_heap`` directly.
        """
        if self._lcount:
            # The occupied-bucket heap jumps straight to the next
            # non-empty bucket (a run exhausted with entries left in the
            # window guarantees it is non-empty).
            i = heappop(self._locc)
            buckets = self._lbuckets
            self._lcur = i
            run = buckets[i]
            buckets[i] = []
            if len(run) > 1:
                run.sort()
            self._lrun = run
            self._lpos = 0
            return True
        over = self._heap
        if len(over) <= _HEAPMAX:
            # Direct mode: leave (or put) the agenda on the bare heap.
            self._llimit = -_INF
            self._lrun = []
            self._lpos = 0
            return False
        # Rebase.  Sort the overflow outright — repeated rebases leave
        # it near-sorted, which timsort detects, so this is close to
        # O(n) in steady state and cheaper than n heappops — then
        # derive the bucket width from the *dense head* (the first
        # ``_REBASE_CAP`` entries spread over ``_HEADNB`` buckets) and
        # split at the window limit, ``_NBUCKETS`` bucket-widths out.
        # Sizing width from the head rather than the full span keeps
        # one far-future straggler from stretching bucket width until
        # every entry lands in one bucket; the 16x-head-span coverage
        # keeps a running workload's new pushes landing in buckets
        # instead of round-tripping through the overflow heap (a
        # narrower, head-clamped window thrashed: heap cost *plus*
        # rebase cost per entry).
        over.sort()
        base = over[0][0]
        if len(over) <= _REBASE_CAP:
            last = over[-1][0]
        else:
            last = over[_REBASE_CAP - 1][0]
        span = last - base
        if span <= 0.0:
            # Whole head tied at one instant — any positive width works
            # (the slab is one bucket, fired as one batch).
            inv = 1.0 / _WIDTH0
        else:
            inv = _HEADNB / span
        limit = base + _NBUCKETS / inv
        # Mutate the heap list in place — ``run``/``step`` hold local
        # aliases to it across rebases.
        if over[-1][0] < limit:
            pulled = over[:]
            del over[:]
        else:
            # Tier invariant: overflow keeps exactly the entries at or
            # past the limit.  ``(limit,)`` compares below any real
            # ``(limit, seq, ...)`` entry, so ties at the boundary stay
            # in overflow together.  A sorted list is a valid min-heap,
            # so the tail needs no re-heapify.
            idx = bisect_left(over, (limit,))
            pulled = over[:idx]
            del over[:idx]
        n = len(pulled)
        self._lbase = base
        self._llimit = limit
        self._lcount = n
        self._linv = inv
        buckets = self._lbuckets
        if buckets is None:
            buckets = self._lbuckets = [[] for _ in range(_NBUCKETS + 1)]
        # ``pulled`` is in heap-pop order, so bucket indices appear in
        # non-decreasing order — the occupancy list comes out sorted,
        # which is a valid min-heap as-is.
        occ = []
        for e in pulled:
            i = int((e[0] - base) * inv)
            b = buckets[i]
            if not b:
                occ.append(i)
            b.append(e)
        self._locc = occ
        self._lcur = -1
        self._lrun = []
        self._lpos = 0
        return self._ladvance()

    def _pending(self) -> bool:
        """Any agenda entry outside the same-instant deque?"""
        if self._ladder:
            return (self._lcount > 0 or bool(self._heap)
                    or self._lpos < len(self._lrun))
        return bool(self._heap)

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Process the agenda entry with the smallest ``(when, seq)``.

        Immediate entries all sit at the current time (time cannot
        advance while the deque is non-empty), so the merge with the
        agenda only ever compares seq numbers at equal timestamps.
        """
        imm = self._imm
        ladder = self._ladder
        if imm:
            if ladder and (self._lpos < len(self._lrun) or self._ladvance()):
                head = self._lrun[self._lpos]
            else:
                heap = self._heap
                head = heap[0] if heap else None
            if head is None or head[0] > self._now or head[1] > imm[0][0]:
                _seq, event, value = imm.popleft()
                if value is _CALL:
                    event()
                    return
                if value is not _ALREADY and event._value is _PENDING:
                    event._value = value
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                return
        if ladder and (self._lpos < len(self._lrun) or self._ladvance()):
            run = self._lrun
            pos = self._lpos
            if pos > 4096 and 2 * pos > len(run):
                # Shed the fired prefix so a long-lived run (heavy
                # insort traffic into the current bucket) stays bounded.
                del run[:pos]
                self._lpos = pos = 0
            when, _seq, event, value = run[pos]
            self._lpos = pos + 1
            self._lcount -= 1
        else:
            when, _seq, event, value = heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        if value is _CALL:
            event()
            return
        if value is not _ALREADY and event._value is _PENDING:
            # Delayed trigger (Timeout): the value rides the agenda entry.
            event._value = value
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(event)

    def peek(self) -> float:
        """Time of the next agenda entry, or ``inf`` if empty."""
        if self._imm:
            return self._now
        if self._ladder and (self._lpos < len(self._lrun)
                             or self._ladvance()):
            return self._lrun[self._lpos][0]
        return self._heap[0][0] if self._heap else _INF

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the agenda is empty, ``until`` is reached, or
        ``max_events`` entries have been processed.  Returns ``now``."""
        if until is None and max_events is None:
            if self._ladder:
                return self._run_ladder()
            # Hot loop: no bound checks between steps.
            heap = self._heap
            imm = self._imm
            step = self.step
            while heap or imm:
                step()
            return self._now
        count = 0
        while self._imm or self._pending():
            if until is not None:
                nxt = self._now if self._imm else self.peek()
                if nxt > until:
                    self._now = until
                    return self._now
            if max_events is not None and count >= max_events:
                return self._now
            self.step()
            count += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_ladder(self) -> float:
        """Unbounded drain of the ladder agenda — the hot loop.

        Beyond inlining :meth:`step`, this dispatches *batches*: once
        the merge selects an agenda entry at instant ``t``, every
        consecutive run entry still at ``t`` fires in a tight loop with
        no merge, no advance and no time check per entry.  The deque
        cannot preempt the batch: immediate entries only come into
        existence at the current instant, so anything enqueued during
        the batch carries a seq greater than the batched entries, which
        were scheduled before time reached ``t`` (the explicit seq
        guard below keeps the merge contract literal anyway).
        """
        imm = self._imm
        imm_pop = imm.popleft
        heap = self._heap
        while True:
            if imm:
                # Drain immediates up to the agenda head's seq (inf when
                # the head sits in the future or the agenda is empty).
                if self._lcount:
                    if self._lpos >= len(self._lrun):
                        self._ladvance()
                    h = self._lrun[self._lpos]
                    guard = h[1] if h[0] <= self._now else _INF
                elif heap:
                    h = heap[0]
                    guard = h[1] if h[0] <= self._now else _INF
                else:
                    guard = _INF
                while imm and imm[0][0] < guard:
                    _seq, event, value = imm_pop()
                    if value is _CALL:
                        event()
                        continue
                    if value is not _ALREADY and event._value is _PENDING:
                        event._value = value
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            if self._lcount:
                # Windowed pop + same-instant batch.
                if self._lpos >= len(self._lrun):
                    self._ladvance()
                run = self._lrun
                pos = self._lpos
                if pos > 4096 and 2 * pos > len(run):
                    # Shed the fired prefix (see step()).
                    del run[:pos]
                    self._lpos = pos = 0
                when, _seq, event, value = run[pos]
                self._lpos = pos + 1
                self._lcount -= 1
                self._now = when
                while True:
                    if value is _CALL:
                        event()
                    else:
                        if value is not _ALREADY \
                                and event._value is _PENDING:
                            event._value = value
                        callbacks, event.callbacks = event.callbacks, None
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                    # Same-instant batch: the run is sorted and
                    # callbacks only insort entries with ``when >
                    # now``, so the batch is exactly the next
                    # consecutive entries at ``when``.
                    pos = self._lpos
                    if pos >= len(run):
                        break
                    nxt = run[pos]
                    if nxt[0] != when or (imm and nxt[1] > imm[0][0]):
                        break
                    self._lpos = pos + 1
                    self._lcount -= 1
                    event = nxt[2]
                    value = nxt[3]
            elif heap:
                # Direct mode: the bare heap is the agenda.  Install a
                # window once it outgrows what C heapq handles best.
                if len(heap) > _HEAPMAX:
                    self._ladvance()
                    continue
                if self._llimit != -_INF:
                    # A drained window may leave a stale finite limit;
                    # resetting it here keeps pushes on the plain-heap
                    # path (safe: no windowed entries exist, and heap
                    # entries only ever sit at or above the limit).
                    self._llimit = -_INF
                when, _seq, event, value = heappop(heap)
                self._now = when
                while True:
                    if value is _CALL:
                        event()
                    else:
                        if value is not _ALREADY \
                                and event._value is _PENDING:
                            event._value = value
                        callbacks, event.callbacks = event.callbacks, None
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                    # Same-instant batch off the heap head: one time
                    # write and no merge for N completions at ``when``.
                    if not heap:
                        break
                    nxt = heap[0]
                    if nxt[0] != when or (imm and nxt[1] > imm[0][0]):
                        break
                    heappop(heap)
                    event = nxt[2]
                    value = nxt[3]
            else:
                if imm:
                    continue  # pragma: no cover - only immediates left
                if self._llimit != -_INF:
                    # Fully drained from the window: drop back to direct
                    # mode so the next simulation phase starts on the
                    # bare heap instead of routing through stale window
                    # bookkeeping.
                    self._llimit = -_INF
                break
        return self._now

    def run_until_event(self, event: Event, limit: float = 1e12) -> Any:
        """Run until ``event`` has fired.  Raises if the agenda drains or
        the time ``limit`` passes first (deadlock detector for tests)."""
        while not event.triggered:
            if not self._imm and not self._pending():
                raise SimulationError(
                    "agenda empty before awaited event fired (deadlock?)")
            if self.peek() > limit:
                raise SimulationError(f"event did not fire before t={limit}")
            self.step()
        # Drain zero-delay follow-ups so the event's callbacks have run.
        while not event.processed and (self._imm
                                       or self.peek() <= self._now):
            self.step()
        if not event._ok:
            raise event._value
        return event._value
