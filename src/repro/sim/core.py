"""Event loop, events and generator-based processes.

The kernel is deliberately small and deterministic:

* :class:`Environment` owns the clock and a binary-heap agenda.
* :class:`Event` is a one-shot occurrence that carries a value (or an
  exception) and a list of callbacks.
* :class:`Process` wraps a generator.  Each ``yield`` must produce an
  :class:`Event`; the process resumes when that event fires.  The process
  itself is an event that fires when the generator returns, so processes
  compose (``yield env.process(...)`` joins a child).

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
seeded simulation always replays identically.

Fast path: entries scheduled *at the current time* (triggered events,
process inits, zero-delay timeouts) go to a FIFO deque instead of the
heap.  Every schedule — heap or deque — still consumes one number from
the shared sequence counter, and :meth:`Environment.step` pops whichever
of (deque head, heap head) has the globally smallest ``(when, seq)``, so
the total firing order is exactly the heap-only order (see DESIGN.md §9
for the argument).  ``REPRO_SLOW_KERNEL=1`` in the process environment
disables the deque (and the analytic fabric shortcuts that key off
``Environment.fastpath``), keeping the naive paths testable.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Environment",
    "slow_kernel_requested",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yield of non-event...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a reconfiguration decision preempting a worker).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()
# Sentinel for agenda entries whose event value was set at trigger time.
_ALREADY = object()
# Sentinel marking an agenda entry that carries a bare callable instead
# of an Event: no allocation, no callback list, just ``fn()`` at fire
# time.  Used by the net-layer fast paths for their internal stages.
_CALL = object()


def slow_kernel_requested() -> bool:
    """True when ``REPRO_SLOW_KERNEL`` asks for the naive heap-only paths.

    Read once per :class:`Environment` at construction so a test can
    toggle the variable between simulations within one process.
    """
    return os.environ.get("REPRO_SLOW_KERNEL", "") not in ("", "0")


class Event:
    """A one-shot occurrence.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks then run from the event loop at the current simulation
    time.  Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok = True

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._queue_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.env._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at once so late subscribers don't hang.
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        env._schedule_at(env._now + delay, self, value=value)


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_gen", "_target", "name")

    def __init__(self, env: "Environment",
                 gen: Generator[Event, Any, Any],
                 name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process requires a generator, got {type(gen).__name__}")
        super().__init__(env)
        self._gen = gen
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current time via an initialisation event.
        init = Event(env)
        init._value = None
        init.callbacks.append(self._resume)
        env._queue_event(init)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("process cannot interrupt itself")
        # Detach from whatever it is waiting for; deliver the interrupt.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier.add_callback(self._resume_throw)
        self.env._queue_event(carrier)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Hot path: one resume per yield of every process.  Property
        # accessors (is_alive / triggered) are inlined to plain slot
        # reads; the interrupt carrier arrives with ``_ok`` False so a
        # single branch covers both send and throw.
        if self._value is not _PENDING:
            return
        self._target = None
        try:
            if event._ok:
                nxt = self._gen.send(event._value)
            else:
                nxt = self._gen.throw(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self.env._queue_event(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.env._queue_event(self)
            if all(getattr(cb, "_obs_passive", False)
                   for cb in self.callbacks):
                # Nobody is watching this process (observability
                # completion probes don't count as watchers): surface
                # the crash instead of swallowing it.
                raise
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {nxt!r}")
        if nxt.env is not self.env:
            raise SimulationError("yielded event belongs to another Environment")
        self._target = nxt
        cbs = nxt.callbacks
        if cbs is None:
            # Yielded an already-processed event: resume immediately,
            # same as Event.add_callback would.
            self._resume(nxt)
        else:
            cbs.append(self._resume)

    _resume_throw = _resume  # interrupt carriers always have _ok False


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
        else:
            for ev in self.events:
                ev.add_callback(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered}

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its children fires (value: dict of done)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all children have fired (value: dict event -> value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation clock and agenda."""

    #: Observability handle (:class:`repro.obs.Observability`), installed
    #: by ``Observability.install()``.  ``None`` means tracing/metrics are
    #: off: every emission site guards on this attribute, the same inert
    #: pattern :class:`repro.faults.FaultInjector` uses on the fabric, so
    #: a disabled run pays one attribute load per hook and nothing else.
    obs = None

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list = []
        #: FIFO of ``(seq, event, value)`` entries scheduled at the
        #: current time; merged with the heap by seq in :meth:`step`.
        self._imm: deque = deque()
        self._seq = 0
        self._id_streams: dict = {}
        #: False under ``REPRO_SLOW_KERNEL=1``: immediate entries take
        #: the heap and the net layer skips its analytic shortcuts.
        self.fastpath = not slow_kernel_requested()

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    # -- identifiers ----------------------------------------------------
    def next_id(self, stream: str = "default") -> int:
        """Monotonically increasing id from a named per-environment stream.

        Scoped to this Environment so that two simulations in one process
        never share counters (message ids, request ids) — a requirement
        for reproducibility.
        """
        n = self._id_streams.get(stream, 0) + 1
        self._id_streams[stream] = n
        return n

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule_at(self, when: float, event: Event,
                     value: Any = _ALREADY) -> None:
        self._seq += 1
        if when == self._now and self.fastpath:
            self._imm.append((self._seq, event, value))
        else:
            heapq.heappush(self._heap, (when, self._seq, event, value))

    def _queue_event(self, event: Event) -> None:
        """Schedule a triggered event's callbacks at the current time."""
        self._seq += 1
        if self.fastpath:
            self._imm.append((self._seq, event, _ALREADY))
        else:
            heapq.heappush(self._heap,
                           (self._now, self._seq, event, _ALREADY))

    def _schedule_call(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callable — the allocation-free agenda entry.

        Only for internal stages whose sole consumer is ``fn`` itself
        (nobody can add callbacks or yield on it).  The net-layer fast
        paths use this for link release / wire arrival / service stages.
        """
        self._seq += 1
        if when == self._now and self.fastpath:
            self._imm.append((self._seq, fn, _CALL))
        else:
            heapq.heappush(self._heap, (when, self._seq, fn, _CALL))

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Process the agenda entry with the smallest ``(when, seq)``.

        Immediate entries all sit at the current time (time cannot
        advance while the deque is non-empty), so the merge with the
        heap only ever compares seq numbers at equal timestamps.
        """
        imm = self._imm
        if imm:
            heap = self._heap
            if (not heap or heap[0][0] > self._now
                    or heap[0][1] > imm[0][0]):
                _seq, event, value = imm.popleft()
                if value is _CALL:
                    event()
                    return
                if value is not _ALREADY and event._value is _PENDING:
                    event._value = value
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                return
        when, _seq, event, value = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        if value is _CALL:
            event()
            return
        if value is not _ALREADY and event._value is _PENDING:
            # Delayed trigger (Timeout): the value rides the agenda entry.
            event._value = value
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(event)

    def peek(self) -> float:
        """Time of the next agenda entry, or ``inf`` if empty."""
        if self._imm:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the agenda is empty, ``until`` is reached, or
        ``max_events`` entries have been processed.  Returns ``now``."""
        heap = self._heap
        imm = self._imm
        if until is None and max_events is None:
            # Hot loop: no bound checks between steps.
            step = self.step
            while heap or imm:
                step()
            return self._now
        count = 0
        while heap or imm:
            if until is not None and \
                    (self._now if imm else heap[0][0]) > until:
                self._now = until
                return self._now
            if max_events is not None and count >= max_events:
                return self._now
            self.step()
            count += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: float = 1e12) -> Any:
        """Run until ``event`` has fired.  Raises if the agenda drains or
        the time ``limit`` passes first (deadlock detector for tests)."""
        while not event.triggered:
            if not self._heap and not self._imm:
                raise SimulationError(
                    "agenda empty before awaited event fired (deadlock?)")
            if self.peek() > limit:
                raise SimulationError(f"event did not fire before t={limit}")
            self.step()
        # Drain zero-delay follow-ups so the event's callbacks have run.
        while (not event.processed and (self._imm or (
                self._heap and self._heap[0][0] <= self._now))):
            self.step()
        if not event._ok:
            raise event._value
        return event._value
