"""Waitable containers: FIFO stores, counting resources, gates.

These are the coordination primitives the higher layers build on:

* :class:`Store` — an unbounded (or bounded) FIFO of items; ``get()``
  returns an event that fires when an item is available.  Used for NIC
  work queues, server accept queues, message channels.
* :class:`Resource` — a counting semaphore with FIFO hand-off.  Used for
  bounded thread pools and serialized devices.
* :class:`Gate` — a level-triggered broadcast condition (open/closed).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Store", "Resource", "Gate"]


class Store:
    """FIFO of items with event-based ``get``/``put``.

    ``capacity`` bounds the number of stored items; ``put`` on a full
    store returns an event that fires only once space frees up (back-
    pressure, used by the flow-control models).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending ``get`` so it cannot steal a future item.

        Returns True if the event was still waiting.  Needed by callers
        that race a ``get`` against a timeout: an abandoned getter would
        otherwise silently consume the next put.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()


class Resource:
    """Counting semaphore with FIFO hand-off.

    Usage::

        grant = yield resource.acquire()
        try:
            ...
        finally:
            resource.release()

    Besides plain acquire/release, one slot can be *reserved until a
    deadline* (:meth:`try_reserve`).  A reservation occupies capacity
    like a holder but needs **no release agenda entry**: it simply stops
    counting once the clock passes the deadline.  Only when a waiter
    queues behind an active reservation is a single expiry entry
    scheduled, which hands the slot over at exactly the deadline — the
    same instant a real holder's ``release()`` would have run.  The
    fabric fast path uses this to model an egress link's serialization
    window without paying an agenda entry per transfer (DESIGN.md §9).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: deadline of the active reservation; -1.0 = none.  The
        #: reservation counts as occupied while ``deadline >= now`` —
        #: inclusive, because a real holder would release *at* the
        #: deadline instant and same-instant competitors must still
        #: queue behind it.
        self._reserved_until = -1.0
        self._expiry_scheduled = False

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = Event(self.env)
        reserved = self._reserved_until >= self.env._now
        if self._in_use + (1 if reserved else 0) < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
            if reserved and not self._expiry_scheduled:
                self._expiry_scheduled = True
                self.env._schedule_call(self._reserved_until,
                                        self._reservation_expired)
        return event

    def try_acquire(self) -> bool:
        if self._in_use + (1 if self._reserved_until >= self.env._now
                           else 0) < self.capacity:
            self._in_use += 1
            return True
        return False

    def try_reserve(self, until: float) -> bool:
        """Claim a free slot until ``until`` without holding it.

        Fails when the resource is full, already reserved, or has
        waiters (FIFO fairness: a reservation must not jump the queue).
        """
        if (self._reserved_until >= self.env._now
                or self._in_use >= self.capacity or self._waiters):
            return False
        self._reserved_until = until
        return True

    def _reservation_expired(self) -> None:
        self._expiry_scheduled = False
        self._reserved_until = -1.0
        if self._waiters and self._in_use < self.capacity:
            self._in_use += 1
            self._waiters.popleft().succeed()

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        if self._waiters:
            # Slot passes directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Gate:
    """Level-triggered broadcast condition.

    ``wait()`` returns an already-fired event while the gate is open and a
    pending event otherwise; ``open()`` releases all current waiters.
    Used e.g. to model lock-release broadcast and reconfiguration barriers.
    """

    def __init__(self, env: Environment, is_open: bool = False):
        self.env = env
        self._open = is_open
        self._waiters: list = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        event = Event(self.env)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def close(self) -> None:
        self._open = False
