"""Processor-sharing CPU model.

Each simulated node owns a :class:`CPU`.  Jobs demand a fixed amount of
CPU *work* (microseconds of a dedicated core); while ``n`` jobs are
active on ``c`` cores every job progresses at rate ``min(1, c / n)``.
This is the classic egalitarian processor-sharing (PS) queue and it is
what couples *host-based* protocol latency to node load: a socket-based
monitoring daemon on a node running 30 compute threads gets ~1/30th of a
core, while an RDMA read bypasses the CPU entirely.

The implementation keeps exact remaining-work accounting: whenever the
active-job set changes, all remaining works are decayed by the elapsed
virtual service and the earliest completion is rescheduled.  A generation
counter invalidates stale wake-ups instead of deleting heap entries.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["CPU", "CPUJob"]

_job_ids = itertools.count(1)


class CPUJob:
    """Handle for a job submitted to a :class:`CPU`.

    ``done`` is the completion event.  ``cancel()`` withdraws the job
    (its event then fails with :class:`SimulationError`).
    """

    __slots__ = ("jid", "name", "remaining", "done", "_cpu")

    def __init__(self, cpu: "CPU", work: float, name: str):
        self.jid = next(_job_ids)
        self.name = name
        self.remaining = float(work)
        self.done = Event(cpu.env)
        self._cpu = cpu

    def cancel(self) -> None:
        self._cpu._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CPUJob {self.name}#{self.jid} rem={self.remaining:.2f}us>"


class CPU:
    """Multi-core egalitarian processor-sharing queue."""

    def __init__(self, env: Environment, cores: int = 1, name: str = "cpu"):
        if cores <= 0:
            raise SimulationError("CPU needs at least one core")
        self.env = env
        self.cores = cores
        self.name = name
        self._jobs: Dict[int, CPUJob] = {}
        self._background = 0  # permanent compute-bound jobs (never finish)
        self._last_update = env.now
        self._generation = 0
        self._busy_integral = 0.0  # ∫ min(active, cores) dt, for utilization

    # -- public API ------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Jobs currently competing for the CPU (incl. background load)."""
        return len(self._jobs) + self._background

    @property
    def load(self) -> float:
        """Run-queue length normalised by core count (like loadavg/cores)."""
        return self.active_jobs / self.cores

    def run(self, work: float, name: str = "job") -> Event:
        """Submit ``work`` microseconds of CPU demand; returns completion
        event.  Zero work completes at the current time (one event hop)."""
        if work < 0:
            raise SimulationError(f"negative CPU work: {work}")
        job = self.submit(work, name)
        return job.done

    def submit(self, work: float, name: str = "job") -> CPUJob:
        job = CPUJob(self, work, name)
        self._advance()
        self._jobs[job.jid] = job
        self._reschedule()
        return job

    def set_background(self, n: int) -> None:
        """Pin ``n`` permanent compute-bound jobs (synthetic load)."""
        if n < 0:
            raise SimulationError("background job count must be >= 0")
        self._advance()
        self._background = n
        self._reschedule()

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of cores busy over ``[since, now]``."""
        self._advance()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return self._busy_integral / (horizon * self.cores)

    # -- internals ---------------------------------------------------------
    def _rate(self) -> float:
        """Per-job progress rate under processor sharing."""
        n = self.active_jobs
        if n == 0:
            return 0.0
        return min(1.0, self.cores / n)

    def _advance(self) -> None:
        """Decay remaining work for elapsed wall time; finish ripe jobs."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            n = self.active_jobs
            self._busy_integral += dt * min(n, self.cores)
            rate = self._rate()
            if rate > 0 and self._jobs:
                served = dt * rate
                for job in self._jobs.values():
                    job.remaining -= served
        self._last_update = now
        # Complete ripe jobs even when no time elapsed (zero-work jobs).
        finished = [j for j in self._jobs.values() if j.remaining <= 1e-9]
        for job in finished:
            del self._jobs[job.jid]
            job.done.succeed()

    def _reschedule(self) -> None:
        """Arm a wake-up at the earliest projected completion."""
        self._generation += 1
        gen = self._generation
        if not self._jobs:
            return
        rate = self._rate()
        if rate <= 0:  # pragma: no cover - impossible while jobs exist
            return
        shortest = min(job.remaining for job in self._jobs.values())
        delay = shortest / rate
        if not math.isfinite(delay):  # pragma: no cover - defensive
            raise SimulationError("non-finite CPU completion delay")
        wake = self.env.timeout(delay)
        wake.add_callback(lambda _ev: self._on_wake(gen))

    def _on_wake(self, gen: int) -> None:
        if gen != self._generation:
            return  # superseded by a later job-set change
        self._advance()
        self._reschedule()

    def _cancel(self, job: CPUJob) -> None:
        self._advance()
        if job.jid in self._jobs:
            del self._jobs[job.jid]
            job.done.fail(SimulationError(f"job {job.name} cancelled"))
            self._reschedule()
