"""Seeded, named random-number streams.

Every stochastic component draws from its own named stream so that adding
a new component (or reordering draws inside one) never perturbs the
others — the standard variance-reduction discipline for simulation
studies.  Streams are derived from a root seed with
:class:`numpy.random.SeedSequence` spawning keyed by the stream name.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngStreams", "spawn_child"]

_MASK64 = (1 << 64) - 1
#: SplitMix64 constants (Steele et al., "Fast splittable PRNGs").
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def spawn_child(seed: int, shard_index: int) -> int:
    """Derive an independent, reproducible child seed for one shard.

    A SplitMix64-style finalizer over ``(seed, shard_index)``: the child
    seeds are decorrelated from each other *and* from the parent stream,
    unlike ``seed + i`` arithmetic where neighbouring shards feed nearly
    identical state into the generator.  The same ``(seed, shard_index)``
    pair always yields the same child, independent of how many shards
    exist or the order they are spawned in — the property the lab runner
    relies on to make ``--workers 0`` and ``--workers N`` byte-identical.
    """
    z = (int(seed) + (int(shard_index) + 1) * _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class RngStreams:
    """Factory of independent named :class:`numpy.random.Generator`\\ s."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        The same ``(seed, name)`` pair always yields an identical stream,
        independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed by a stable hash of the name so creation
            # order is irrelevant.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32)
            seq = np.random.SeedSequence([self.seed, *digest.tolist()])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, mean: float) -> float:
        return float(self.get(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.get(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        return int(self.get(name).integers(low, high))
