"""Seeded, named random-number streams.

Every stochastic component draws from its own named stream so that adding
a new component (or reordering draws inside one) never perturbs the
others — the standard variance-reduction discipline for simulation
studies.  Streams are derived from a root seed with
:class:`numpy.random.SeedSequence` spawning keyed by the stream name.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of independent named :class:`numpy.random.Generator`\\ s."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        The same ``(seed, name)`` pair always yields an identical stream,
        independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed by a stable hash of the name so creation
            # order is irrelevant.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32)
            seq = np.random.SeedSequence([self.seed, *digest.tolist()])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, mean: float) -> float:
        return float(self.get(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.get(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        return int(self.get(name).integers(low, high))
