"""Kernel statistics structure exposed in registered memory.

Layout (32 bytes, big-endian)::

    u32  n_threads          running application threads
    u32  load_x1000         run-queue length / cores * 1000
    u32  mem_used_mb
    u32  n_connections
    u64  updates            bump count (freshness diagnostics)
    u64  reserved

The kernel updates these words as part of its own bookkeeping, so the
refresh costs no application-visible CPU — which is why an RDMA read of
this region gives an accurate picture even on a saturated node (the
paper's key observation).
"""

from __future__ import annotations

from repro.errors import MonitorError
from repro.net.node import Node

__all__ = ["KernelStats", "STATS_BYTES"]

STATS_BYTES = 32

#: how often the kernel rewrites the exported structure (µs)
KERNEL_REFRESH_US = 50.0


class KernelStats:
    """Per-node exported kernel counters."""

    def __init__(self, node: Node, refresh_us: float = KERNEL_REFRESH_US):
        if refresh_us <= 0:
            raise MonitorError("refresh period must be positive")
        self.node = node
        self.env = node.env
        self.region = node.memory.register(STATS_BYTES,
                                           name=f"kstats@{node.name}")
        self.refresh_us = refresh_us
        self.updates = 0
        #: extra connection count services can bump (RUBiS sessions etc.)
        self.connections = 0
        self._write()
        self.env.process(self._refresher(), name=f"kstats@{node.name}")

    # -- ground truth ------------------------------------------------------
    def true_threads(self) -> int:
        return self.node.cpu.active_jobs

    def true_load(self) -> float:
        return self.node.cpu.load

    # -- kernel-side refresh -------------------------------------------------
    def _write(self) -> None:
        self.updates += 1
        r = self.region
        r.write_u32(0, self.true_threads())
        r.write_u32(4, int(self.true_load() * 1000))
        r.write_u32(8, 0)
        r.write_u32(12, self.connections)
        r.write_u64(16, self.updates)

    def _refresher(self):
        while True:
            yield self.env.timeout(self.refresh_us)
            self._write()

    # -- decoding helpers ------------------------------------------------------
    @staticmethod
    def decode(blob: bytes) -> dict:
        if len(blob) < STATS_BYTES:
            raise MonitorError(f"short stats blob: {len(blob)} bytes")
        return {
            "n_threads": int.from_bytes(blob[0:4], "big"),
            "load": int.from_bytes(blob[4:8], "big") / 1000.0,
            "mem_used_mb": int.from_bytes(blob[8:12], "big"),
            "n_connections": int.from_bytes(blob[12:16], "big"),
            "updates": int.from_bytes(blob[16:24], "big"),
        }

    def snapshot(self) -> dict:
        """Zero-time direct view (kernel's own perspective; tests)."""
        return self.decode(self.region.read(0, STATS_BYTES))
