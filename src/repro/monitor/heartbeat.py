"""Heartbeat failure detection over one-sided RDMA reads.

A front-end node probes a tiny *liveness word* registered on every
watched node.  The probe is a plain RDMA read: it costs the watched
node zero CPU (same argument as the RDMA monitoring schemes) and it is
exactly the operation that a crashed node can no longer answer — a
probe against a down node fails with
:class:`repro.errors.NodeDownError` once the NIC exhausts its retries.

``miss_threshold`` consecutive failed/overdue probes mark the node
**suspect**; ``confirm_misses`` *additional* misses confirm it **dead**.
The confirmation stage is hysteresis against flapping: a suspect that
answers its very next probe is quietly cleared without ever reaching
the listeners, so a single dropped probe can no longer trigger an
evict/backfill round-trip.  One successful probe declares a dead node
**alive** again.  Listeners (e.g.
:class:`repro.reconfig.ReconfigManager`) get ``(node_id,
"dead"|"alive")`` transitions; :class:`repro.dlm.NCoSEDManager` accepts
the detector as its failure oracle via ``is_dead``.

Unlike :class:`repro.faults.FaultInjector` ground truth, this detector
*discovers* failures by probing, so detection lags a crash by up to
:meth:`detect_bound_us` — the window every recovery protocol above it
has to tolerate.  :class:`repro.monitor.phi.PhiAccrualDetector`
replaces the counter with an adaptive suspicion level on the same
probing machinery.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set

from repro.errors import ConfigError, FaultError, RdmaError
from repro.net.node import Node
from repro.sim import AnyOf

__all__ = ["HeartbeatDetector"]


class HeartbeatDetector:
    """Probe ``targets`` from ``front`` every ``period_us``."""

    def __init__(self, front: Node, targets: Sequence[Node], *,
                 period_us: float = 1_000.0,
                 timeout_us: float = 200.0,
                 miss_threshold: int = 3,
                 confirm_misses: int = 1):
        if period_us <= 0 or timeout_us <= 0:
            raise ConfigError("heartbeat periods must be positive")
        if miss_threshold < 1:
            raise ConfigError("miss_threshold must be >= 1")
        if confirm_misses < 0:
            raise ConfigError("confirm_misses must be >= 0")
        self.front = front
        self.env = front.env
        self.period_us = period_us
        self.timeout_us = timeout_us
        self.miss_threshold = miss_threshold
        self.confirm_misses = confirm_misses
        self.targets = list(targets)
        self._keys = {}
        self._misses: Dict[int, int] = {}
        self._suspect: Set[int] = set()
        self._dead: Set[int] = set()
        self._listeners: List[Callable[[int, str], None]] = []
        #: (time, node_id, "dead"|"alive") transition log
        self.transitions: List[tuple] = []
        self.probes = 0
        self.flaps_absorbed = 0  # suspects cleared before confirmation
        for node in self.targets:
            if node.id == front.id:
                raise ConfigError("front-end cannot watch itself")
            region = node.memory.register(8, name=f"hb-word@{node.name}")
            self._keys[node.id] = region.remote_key()
            self._misses[node.id] = 0
            self.env.process(self._probe_loop(node),
                             name=f"heartbeat@{node.name}")

    # -- oracle interface ----------------------------------------------
    def is_dead(self, node_id: int) -> bool:
        return node_id in self._dead

    @property
    def dead_ids(self) -> Set[int]:
        return set(self._dead)

    @property
    def suspect_ids(self) -> Set[int]:
        """Nodes past ``miss_threshold`` but not yet confirmed dead."""
        return set(self._suspect)

    @property
    def unreachable_ids(self) -> Set[int]:
        """Dead or suspect nodes — unfit as *targets* of a placement
        decision (e.g. a failover rehome) even before confirmation."""
        return self._dead | self._suspect

    def detect_bound_us(self) -> float:
        """Worst-case crash → "dead" latency: the probe in flight when
        the crash hits, then ``miss_threshold + confirm_misses`` failed
        probes, each a period plus the final probe timeout."""
        probes = self.miss_threshold + self.confirm_misses
        return self.period_us * (probes + 1) + self.timeout_us

    def subscribe(self, fn: Callable[[int, str], None]) -> None:
        """Register ``fn(node_id, transition)`` for "dead"/"alive"."""
        self._listeners.append(fn)

    # -- probing -------------------------------------------------------
    def _probe_loop(self, node: Node):
        key = self._keys[node.id]
        while True:
            yield self.env.timeout(self.period_us)
            self.probes += 1
            probe = self.front.nic.read_key(key, length=8)
            try:
                yield AnyOf(self.env, [probe,
                                       self.env.timeout(self.timeout_us)])
            except (FaultError, RdmaError):
                self._miss(node.id)
                continue
            if probe.triggered:
                self._hit(node.id)
            else:
                self._miss(node.id)  # overdue: counts as a miss

    def _miss(self, node_id: int) -> None:
        self._misses[node_id] += 1
        if node_id in self._dead:
            return
        misses = self._misses[node_id]
        if misses >= self.miss_threshold + self.confirm_misses:
            self._suspect.discard(node_id)
            self._dead.add(node_id)
            self._obs_detect("detect.dead", node_id, misses=misses)
            self._notify(node_id, "dead")
        elif misses >= self.miss_threshold and node_id not in self._suspect:
            self._suspect.add(node_id)
            self._obs_detect("detect.suspect", node_id, misses=misses)

    def _hit(self, node_id: int) -> None:
        self._misses[node_id] = 0
        if node_id in self._suspect:
            # flap absorbed: the suspect answered before confirmation,
            # so listeners never hear about it
            self._suspect.discard(node_id)
            self.flaps_absorbed += 1
            self._obs_detect("detect.clear", node_id)
        if node_id in self._dead:
            self._dead.discard(node_id)
            self._obs_detect("detect.alive", node_id)
            self._notify(node_id, "alive")

    def _notify(self, node_id: int, transition: str) -> None:
        self.transitions.append((self.env.now, node_id, transition))
        for fn in self._listeners:
            fn(node_id, transition)

    def _obs_detect(self, etype: str, node_id: int, **fields) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.front.id, watched=node_id,
                           **fields)
