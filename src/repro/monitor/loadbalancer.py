"""Least-loaded dispatch driven by a monitoring scheme (Fig. 8b).

For every incoming request the balancer consults the monitor: *sync*
schemes refresh all back-end views first (paying the scheme's full query
cost on the request path — microseconds for RDMA, far more for sockets
on loaded nodes), *async* schemes answer from their push/poll cache
immediately.  The least-loaded back-end by the scheme's ``load_index``
wins.  Decision quality therefore tracks the accuracy experiments of
Fig. 8a, and throughput follows.
"""

from __future__ import annotations

from repro.errors import MonitorError
from repro.sim import Event

from repro.monitor.schemes import MonitorBase

__all__ = ["MonitoredLoadBalancer"]


class MonitoredLoadBalancer:
    """Pick the back-end with the smallest reported load index."""

    def __init__(self, monitor: MonitorBase, refresh_on_dispatch: bool = None,
                 outstanding_weight: float = 0.5):
        self.monitor = monitor
        self.env = monitor.env
        #: how much one not-yet-completed dispatch counts against a node.
        #: Request costs are highly divergent (RUBiS), so a connection
        #: count is a weak signal compared to measured load; weight < 1.
        self.outstanding_weight = outstanding_weight
        # sync schemes refresh on the dispatch path by definition; the
        # fan-out is tuned to the probe cost: RDMA probes are ~10 µs of
        # pure network so all back-ends are refreshed in parallel, while
        # a socket probe steals CPU from the probed node, so only one
        # node per dispatch is refreshed (round robin)
        if refresh_on_dispatch is None:
            refresh_on_dispatch = monitor.NAME in ("socket-sync",
                                                   "rdma-sync",
                                                   "e-rdma-sync")
        self._probe_all = monitor.NAME in ("rdma-sync", "e-rdma-sync")
        self._rr = 0
        self.refresh_on_dispatch = refresh_on_dispatch
        self.dispatches = 0
        # least-connections bookkeeping the front-end gets for free: it
        # knows what it has dispatched and not yet seen complete.  Every
        # real balancer does this; the monitor's value is seeing load the
        # front-end did NOT cause (other services, other front-ends).
        self.outstanding = {bid: 0 for bid in monitor.back_ids}
        if not monitor.back_ids:
            raise MonitorError("no back-ends to balance over")

    def pick(self) -> Event:
        """Choose a back-end node id; the event's value is the id."""
        self.dispatches += 1
        return self.env.process(self._pick(), name="lb-pick")

    def _index(self, bid: int) -> float:
        return (self.monitor.load_index(bid)
                + self.outstanding_weight * self.outstanding[bid])

    def _pick(self):
        monitor = self.monitor
        if self.refresh_on_dispatch:
            if self._probe_all:
                # refresh all views in parallel, proceed when all answered
                yield self.env.all_of([monitor.query(bid)
                                       for bid in monitor.back_ids])
            else:
                ids = monitor.back_ids
                bid = ids[self._rr % len(ids)]
                self._rr += 1
                yield monitor.query(bid)
        best = min(monitor.back_ids, key=self._index)
        self.outstanding[best] += 1
        return best

    def pick_now(self) -> int:
        """Zero-cost pick from current beliefs (async-style fast path)."""
        self.dispatches += 1
        best = min(self.monitor.back_ids, key=self._index)
        self.outstanding[best] += 1
        return best

    def done(self, back_id: int) -> None:
        """Caller signals that a dispatched request completed."""
        if self.outstanding[back_id] <= 0:
            raise MonitorError("done() without a matching pick()")
        self.outstanding[back_id] -= 1
