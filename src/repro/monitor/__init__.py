"""Active fine-grained resource monitoring (paper §5.2, ref [19]).

Every back-end node exposes a *kernel statistics* structure in
registered memory (:class:`KernelStats`) — thread count, load, memory,
connection counts — updated by the kernel itself.  Front-end nodes
observe it through one of five schemes:

* :class:`SocketSyncMonitor` — query/response to a user-level daemon on
  the back-end over sockets; the daemon competes for the loaded CPU, so
  responses are late exactly when accuracy matters most.
* :class:`SocketAsyncMonitor` — the daemon pushes periodically; adds
  staleness on top of the same scheduling delays.
* :class:`RdmaSyncMonitor` — the front-end RDMA-reads the kernel
  structure on demand: microsecond-fresh, zero back-end CPU.
* :class:`RdmaAsyncMonitor` — periodic RDMA polling; bounded staleness,
  zero back-end CPU.
* :class:`ERdmaSyncMonitor` — "enhanced" RDMA-sync: one read returns the
  whole statistics vector and derives a composite load index for better
  load-balancing decisions (the paper's e-RDMA-Sync).

:class:`MonitoredLoadBalancer` turns any monitor into a least-loaded
dispatcher for the Fig. 8b throughput experiment.
"""

from repro.monitor.heartbeat import HeartbeatDetector
from repro.monitor.kernel import KernelStats
from repro.monitor.phi import PhiAccrualDetector
from repro.monitor.quorum import QuorumGate
from repro.monitor.loadbalancer import MonitoredLoadBalancer
from repro.monitor.schemes import (
    ERdmaSyncMonitor,
    MonitorBase,
    RdmaAsyncMonitor,
    RdmaSyncMonitor,
    SocketAsyncMonitor,
    SocketSyncMonitor,
    MONITOR_SCHEMES,
)

__all__ = [
    "ERdmaSyncMonitor",
    "HeartbeatDetector",
    "KernelStats",
    "MonitorBase",
    "MONITOR_SCHEMES",
    "MonitoredLoadBalancer",
    "PhiAccrualDetector",
    "QuorumGate",
    "RdmaAsyncMonitor",
    "RdmaSyncMonitor",
    "SocketAsyncMonitor",
    "SocketSyncMonitor",
]
