"""The five monitoring schemes of the Fig. 8 experiments.

Common interface: a monitor lives on a front-end node and observes a set
of back-end nodes that each export :class:`KernelStats`.

* ``query(back_id)`` -> event whose value is the *reported* stats dict
  (full cost of one on-demand observation under that scheme).
* ``view(back_id)`` -> the scheme's current belief, instantly (async
  schemes answer from their cache; sync schemes return the last query
  result).  This is what a load balancer consults per dispatch.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import MonitorError
from repro.net.node import Node
from repro.sim import Event

from repro.monitor.kernel import KernelStats, STATS_BYTES

__all__ = [
    "MonitorBase",
    "SocketSyncMonitor",
    "SocketAsyncMonitor",
    "RdmaSyncMonitor",
    "RdmaAsyncMonitor",
    "ERdmaSyncMonitor",
    "MONITOR_SCHEMES",
]

#: daemon CPU work to collect stats via /proc-style interfaces (µs)
DAEMON_COLLECT_US = 30.0
#: default push period for the socket-async daemon (µs) — pushing more
#: often would burn measurable back-end CPU, the classic trade-off
ASYNC_PERIOD_US = 5_000.0
#: default poll period for RDMA-async (µs) — polling is nearly free for
#: the back-end, so it can afford millisecond granularity
RDMA_POLL_PERIOD_US = 1_000.0


class MonitorBase:
    NAME = "base"
    #: True if the scheme needs a user-level daemon on the back-end
    NEEDS_DAEMON = False

    def __init__(self, front: Node, stats: Dict[int, KernelStats]):
        if not stats:
            raise MonitorError("monitor needs at least one back-end")
        self.front = front
        self.env = front.env
        self.stats = dict(stats)
        #: latest belief per back-end node
        self.beliefs: Dict[int, dict] = {
            bid: {"n_threads": 0, "load": 0.0, "n_connections": 0,
                  "updates": 0, "mem_used_mb": 0}
            for bid in stats
        }
        self.queries = 0

    @property
    def back_ids(self) -> Sequence[int]:
        return tuple(self.stats)

    def view(self, back_id: int) -> dict:
        return self.beliefs[back_id]

    def load_index(self, back_id: int) -> float:
        """Scalar used for load-balancing decisions."""
        return float(self.beliefs[back_id]["n_threads"])

    def query(self, back_id: int) -> Event:
        self.queries += 1
        return self.env.process(self._query(back_id),
                                name=f"{self.NAME}-query@{self.front.name}")

    def _query(self, back_id: int):
        raise NotImplementedError
        yield  # pragma: no cover


class _SocketSchemeBase(MonitorBase):
    """Daemon-on-the-back-end machinery shared by the socket schemes.

    The daemon is an ordinary user process: collecting statistics costs
    CPU *on the monitored node*, so on a saturated back-end the daemon
    runs late — reported values describe an earlier reality.
    """

    NEEDS_DAEMON = True

    def _daemon_collect(self, back_id: int):
        """Generator: the daemon gathers stats on the back-end CPU."""
        ks = self.stats[back_id]
        yield ks.node.cpu.run(DAEMON_COLLECT_US, name="mon-daemon")
        return ks.snapshot()


class SocketSyncMonitor(_SocketSchemeBase):
    """Request/response to the back-end daemon per query."""

    NAME = "socket-sync"

    def _query(self, back_id: int):
        ks = self.stats[back_id]
        fabric = self.front.fabric
        p = fabric.params
        # request message + daemon wake-up/recv costs on the loaded CPU
        yield fabric.transfer(self.front.id, back_id, 64)
        yield ks.node.cpu.run(p.sock_cpu_us(64), name="mon-rx")
        report = yield from self._daemon_collect(back_id)
        yield ks.node.cpu.run(p.sock_cpu_us(STATS_BYTES), name="mon-tx")
        yield fabric.transfer(back_id, self.front.id, STATS_BYTES)
        self.beliefs[back_id] = report
        return report


class SocketAsyncMonitor(_SocketSchemeBase):
    """Back-end daemons push a report every ``period_us``."""

    NAME = "socket-async"

    def __init__(self, front: Node, stats: Dict[int, KernelStats],
                 period_us: float = ASYNC_PERIOD_US):
        super().__init__(front, stats)
        self.period_us = period_us
        self.pushes = 0
        for bid in self.stats:
            self.env.process(self._pusher(bid),
                             name=f"mon-push@{bid}")

    def _pusher(self, back_id: int):
        ks = self.stats[back_id]
        fabric = self.front.fabric
        p = fabric.params
        while True:
            yield self.env.timeout(self.period_us)
            report = yield from self._daemon_collect(back_id)
            yield ks.node.cpu.run(p.sock_cpu_us(STATS_BYTES),
                                  name="mon-tx")
            yield fabric.transfer(back_id, self.front.id, STATS_BYTES)
            self.beliefs[back_id] = report
            self.pushes += 1

    def _query(self, back_id: int):
        # a "query" is free: answer from the push cache
        yield self.env.timeout(0.0)
        return self.beliefs[back_id]


class RdmaSyncMonitor(MonitorBase):
    """One-sided read of the kernel structure per query."""

    NAME = "rdma-sync"

    def _query(self, back_id: int):
        ks = self.stats[back_id]
        blob = yield self.front.nic.rdma_read(
            back_id, ks.region.addr, ks.region.rkey, STATS_BYTES)
        report = KernelStats.decode(blob)
        self.beliefs[back_id] = report
        return report


class RdmaAsyncMonitor(RdmaSyncMonitor):
    """Front-end polls every back-end with RDMA reads every period."""

    NAME = "rdma-async"

    def __init__(self, front: Node, stats: Dict[int, KernelStats],
                 period_us: float = RDMA_POLL_PERIOD_US):
        super().__init__(front, stats)
        self.period_us = period_us
        self.env.process(self._poller(), name="mon-rdma-poll")

    def _poller(self):
        while True:
            yield self.env.timeout(self.period_us)
            for bid in self.stats:
                ks = self.stats[bid]
                blob = yield self.front.nic.rdma_read(
                    bid, ks.region.addr, ks.region.rkey, STATS_BYTES)
                self.beliefs[bid] = KernelStats.decode(blob)

    def _query(self, back_id: int):
        # answer from the poll cache, like the paper's async variant
        yield self.env.timeout(0.0)
        return self.beliefs[back_id]


class ERdmaSyncMonitor(RdmaSyncMonitor):
    """e-RDMA-Sync: whole statistics vector + composite load index.

    The single read already carries every exported counter; the enhanced
    scheme exploits that by combining thread count, run-queue load and
    connection count into one dispatch index, which discriminates better
    between a node with many cheap connections and one crunching a heavy
    query.
    """

    NAME = "e-rdma-sync"

    def load_index(self, back_id: int) -> float:
        b = self.beliefs[back_id]
        return (0.6 * b["n_threads"] + 0.3 * b["load"] * 10.0
                + 0.1 * b["n_connections"])


MONITOR_SCHEMES = {
    cls.NAME: cls
    for cls in (SocketSyncMonitor, SocketAsyncMonitor,
                RdmaSyncMonitor, RdmaAsyncMonitor, ERdmaSyncMonitor)
}
