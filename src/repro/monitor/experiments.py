"""Harnesses for the two monitoring experiments (paper Fig. 8a/8b).

``accuracy_trace`` — one loaded back-end with a fluctuating thread
count; sample each scheme's reported thread count against ground truth.

``lb_throughput`` — a front-end dispatches a two-service workload (Zipf
static content + RUBiS-style dynamic transactions) across back-ends
using a monitored least-loaded balancer; steady-state TPS per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import MonitorError
from repro.net.cluster import Cluster
from repro.net.params import NetworkParams

from repro.cache.store import LRUStore
from repro.datacenter.metrics import DataCenterMetrics
from repro.monitor.kernel import KernelStats
from repro.monitor.loadbalancer import MonitoredLoadBalancer
from repro.monitor.schemes import MONITOR_SCHEMES
from repro.workloads.rubis import RubisMix
from repro.workloads.threads import ThreadChurn
from repro.workloads.zipf import ZipfGenerator

__all__ = ["accuracy_trace", "lb_throughput", "AccuracyResult"]


@dataclass
class AccuracyResult:
    scheme: str
    samples: List[Tuple[float, int, int]] = field(default_factory=list)

    @property
    def deviations(self) -> List[int]:
        return [abs(rep - act) for _t, rep, act in self.samples]

    @property
    def mean_abs_deviation(self) -> float:
        devs = self.deviations
        return sum(devs) / len(devs) if devs else 0.0

    @property
    def max_deviation(self) -> int:
        return max(self.deviations, default=0)


def accuracy_trace(scheme: str, duration_us: float = 200_000.0,
                   sample_every_us: float = 2_000.0,
                   base_threads: int = 12, swing: int = 10,
                   seed: int = 0,
                   period_us: float = None) -> AccuracyResult:
    """Fig. 8a: reported-vs-actual thread count on one churning node.

    ``period_us`` overrides the push/poll period of the async schemes
    (ignored by the sync ones).
    """
    if scheme not in MONITOR_SCHEMES:
        raise MonitorError(f"unknown scheme {scheme!r}")
    cluster = Cluster(names=["front", "back"],
                      params=NetworkParams.infiniband(), seed=seed)
    front, back = cluster.nodes
    churn = ThreadChurn(back, cluster.rng.get("churn"),
                        base=base_threads, swing=swing)
    stats = KernelStats(back)
    cls = MONITOR_SCHEMES[scheme]
    if period_us is not None:
        try:
            monitor = cls(front, {back.id: stats}, period_us=period_us)
        except TypeError:
            monitor = cls(front, {back.id: stats})
    else:
        monitor = cls(front, {back.id: stats})
    result = AccuracyResult(scheme=scheme)

    def sampler(env):
        # let the async schemes prime their caches
        yield env.timeout(sample_every_us)
        while env.now < duration_us:
            report = yield monitor.query(back.id)
            result.samples.append(
                (env.now, report["n_threads"], churn.current))
            yield env.timeout(sample_every_us)

    cluster.env.process(sampler(cluster.env))
    cluster.env.run(until=duration_us + 1_000.0)
    return result


#: static-content service constants (µs)
_STATIC_HIT_US = 40.0
_STATIC_MISS_US = 420.0
#: share of requests that are RUBiS transactions
_RUBIS_SHARE = 0.3
#: per-back static cache size in documents
_BACK_CACHE_DOCS = 120


def lb_throughput(scheme: str, alpha: float,
                  n_back: int = 4, n_sessions: int = 16,
                  warmup_us: float = 100_000.0,
                  measure_us: float = 400_000.0,
                  seed: int = 0) -> float:
    """Fig. 8b: data-center TPS with a monitor-driven load balancer."""
    if scheme not in MONITOR_SCHEMES:
        raise MonitorError(f"unknown scheme {scheme!r}")
    names = ["front"] + [f"back{i}" for i in range(n_back)]
    cluster = Cluster(names=names, params=NetworkParams.infiniband(),
                      seed=seed, cores_per_node=2)
    env = cluster.env
    front = cluster.nodes[0]
    backs = cluster.nodes[1:]
    stats = {b.id: KernelStats(b) for b in backs}
    # external load the front-end cannot see except through monitoring:
    # other tenants / services sharing the back-end nodes
    churns = [ThreadChurn(b, cluster.rng.get(f"churn{b.id}"),
                          base=12, swing=12, step_every_us=500.0,
                          max_step=8)
              for b in backs]
    monitor = MONITOR_SCHEMES[scheme](front, stats)
    balancer = MonitoredLoadBalancer(monitor)
    zipf = ZipfGenerator(2_000, alpha, cluster.rng.get("zipf"))
    rubis = RubisMix(cluster.rng.get("rubis"))
    kind_rng = cluster.rng.get("reqkind")
    metrics = DataCenterMetrics(env)
    # tiny per-back static-content caches: high alpha -> high hit rate ->
    # cheap, uniform service; low alpha -> divergent service times
    caches = {b.id: LRUStore(_BACK_CACHE_DOCS * 8_192) for b in backs}
    nodes_by_id = {b.id: b for b in backs}

    def serve(env, back_id: int):
        """One request's work on the chosen back-end."""
        back = nodes_by_id[back_id]
        ks = stats[back_id]
        ks.connections += 1
        try:
            if kind_rng.random() < _RUBIS_SHARE:
                txn = rubis.next()
                yield back.cpu.run(txn.cpu_us, name=txn.name)
                resp = txn.resp_bytes
            else:
                doc = zipf.next()
                cache = caches[back_id]
                if cache.get(doc) is not None:
                    yield back.cpu.run(_STATIC_HIT_US, name="static-hit")
                else:
                    yield back.cpu.run(_STATIC_MISS_US, name="static-miss")
                    cache.insert(doc, 8_192, b"x" * 8)
                resp = 8_192
        finally:
            ks.connections -= 1
        return resp

    def session(env, idx: int):
        yield env.timeout(idx * 7.0)
        while True:
            t0 = env.now
            back_id = yield balancer.pick()
            try:
                yield front.fabric.transfer(front.id, back_id, 256)
                resp = yield env.process(serve(env, back_id))
                yield front.fabric.transfer(back_id, front.id, resp)
            finally:
                balancer.done(back_id)
            metrics.record(t0)

    for i in range(n_sessions):
        env.process(session(env, i), name=f"mon-session-{i}")
    env.run(until=warmup_us)
    metrics.start_window()
    env.run(until=warmup_us + measure_us)
    return metrics.tps()
