"""Phi-accrual failure detection (Hayashibara et al., SRDS'04).

The binary heartbeat counter answers "has the node missed k probes?".
The phi-accrual detector instead outputs a continuous *suspicion level*

    phi(node) = -log10( P(heartbeat still arrives | history) )

computed from the observed distribution of inter-arrival gaps, so one
threshold works across heterogeneous and time-varying network
conditions: a node whose probes normally land like clockwork is
suspected quickly, while a node behind a slow link (gray failure!)
earns a wide tolerance band automatically instead of flapping.

Implementation notes
--------------------

* Reuses :class:`~repro.monitor.heartbeat.HeartbeatDetector`'s probing
  machinery (one-sided RDMA reads of the liveness word); only the
  hit/miss accounting is replaced.
* Inter-arrival gaps of *successful* probes feed a sliding window;
  ``phi`` evaluates the normal tail probability of the current silence
  ``now - last_heard``.  The standard deviation is floored at
  ``min_std_us`` so a perfectly regular simulated network does not
  collapse the distribution to a spike (the classic phi-accrual
  pathology; Cassandra does the same).
* ``suspect_phi`` / ``dead_phi`` map the continuous level back to the
  suspect/dead states the rest of the stack consumes — listeners still
  see plain ``(node_id, "dead"|"alive")`` transitions, and
  :meth:`is_dead` still serves as the lock/reconfig failure oracle.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Sequence

from repro.errors import ConfigError
from repro.monitor.heartbeat import HeartbeatDetector
from repro.net.node import Node

__all__ = ["PhiAccrualDetector"]

#: floor on the phi argument's tail probability (keeps phi finite)
_MIN_P = 1e-300


class PhiAccrualDetector(HeartbeatDetector):
    """Adaptive failure detector: phi thresholds over probe history."""

    def __init__(self, front: Node, targets: Sequence[Node], *,
                 period_us: float = 1_000.0,
                 timeout_us: float = 200.0,
                 suspect_phi: float = 1.0,
                 dead_phi: float = 8.0,
                 window: int = 64,
                 min_std_us: float = None):
        if dead_phi <= suspect_phi or suspect_phi <= 0:
            raise ConfigError(
                "need 0 < suspect_phi < dead_phi for phi-accrual "
                f"thresholds, got {suspect_phi} / {dead_phi}")
        if window < 2:
            raise ConfigError("phi window must hold >= 2 intervals")
        self.suspect_phi = suspect_phi
        self.dead_phi = dead_phi
        self.window = window
        self.min_std_us = (period_us / 4.0 if min_std_us is None
                           else min_std_us)
        if self.min_std_us <= 0:
            raise ConfigError("min_std_us must be positive")
        # the superclass threshold machinery is bypassed (miss/hit are
        # overridden) but its probe loops, listener plumbing and state
        # sets are reused as-is
        super().__init__(front, targets, period_us=period_us,
                         timeout_us=timeout_us, miss_threshold=1,
                         confirm_misses=0)
        self._last: Dict[int, float] = {
            n.id: self.env.now for n in self.targets}
        self._intervals: Dict[int, Deque[float]] = {
            n.id: deque([period_us], maxlen=window) for n in self.targets}

    # -- suspicion level -----------------------------------------------
    def phi(self, node_id: int) -> float:
        """Current suspicion level for ``node_id`` (0 = just heard)."""
        silence = self.env.now - self._last[node_id]
        if silence <= 0:
            return 0.0
        win = self._intervals[node_id]
        mean = sum(win) / len(win)
        var = sum((x - mean) ** 2 for x in win) / len(win)
        std = max(math.sqrt(var), self.min_std_us)
        # one-sided normal tail: P(gap >= silence)
        p = 0.5 * math.erfc((silence - mean) / (std * math.sqrt(2.0)))
        return -math.log10(max(p, _MIN_P))

    def detect_bound_us(self) -> float:
        """Worst-case crash → "dead" latency with a calm history.

        Solves the normal tail for the silence Δ* at which phi reaches
        ``dead_phi`` assuming mean ≈ period and std at the floor, then
        adds one period for the probe in flight at the crash and rounds
        Δ* up to probe granularity (phi is only evaluated at probe
        outcomes).
        """
        target = 10.0 ** (-self.dead_phi)
        lo, hi = 0.0, 64.0
        while hi - lo > 1e-9:  # bisect z: 0.5*erfc(z/sqrt(2)) = target
            mid = (lo + hi) / 2.0
            if 0.5 * math.erfc(mid / math.sqrt(2.0)) > target:
                lo = mid
            else:
                hi = mid
        silence = self.period_us + self.min_std_us * hi
        probes = math.ceil(silence / self.period_us)
        return self.period_us * (probes + 1) + self.timeout_us

    # -- probe accounting (replaces the binary counter) ----------------
    def _miss(self, node_id: int) -> None:
        self._evaluate(node_id)

    def _hit(self, node_id: int) -> None:
        now = self.env.now
        gap = now - self._last[node_id]
        self._last[node_id] = now
        if gap > 0:
            self._intervals[node_id].append(gap)
        if node_id in self._suspect:
            self._suspect.discard(node_id)
            self.flaps_absorbed += 1
            self._obs_detect("detect.clear", node_id,
                             phi=round(self.phi(node_id), 3))
        if node_id in self._dead:
            self._dead.discard(node_id)
            self._obs_detect("detect.alive", node_id)
            self._notify(node_id, "alive")

    def _evaluate(self, node_id: int) -> None:
        if node_id in self._dead:
            return
        level = self.phi(node_id)
        if level >= self.dead_phi:
            self._suspect.discard(node_id)
            self._dead.add(node_id)
            self._obs_detect("detect.dead", node_id, phi=round(level, 3))
            self._notify(node_id, "dead")
        elif level >= self.suspect_phi and node_id not in self._suspect:
            self._suspect.add(node_id)
            self._obs_detect("detect.suspect", node_id,
                             phi=round(level, 3))
