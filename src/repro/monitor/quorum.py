"""Quorum fencing for failure detectors (split-brain prevention).

A failure detector inside a minority partition will, correctly from its
own vantage point, declare the unreachable majority dead — and a
reconfiguration manager that believes it would evict the majority's
lock homes and DDSS owners, forking the cluster's state.  The classic
fix: reconfiguration decisions are only valid while the decider can
still talk to a **quorum** (majority) of the membership.

:class:`QuorumGate` wraps any detector with the
``subscribe``/``is_dead``/``dead_ids`` interface and re-exports it with
two changes:

* **Hold window** — an inner "dead" verdict is sat on for ``hold_us``
  before being forwarded, so a burst of deaths (the partition closing)
  is counted *together*: by the time the first verdict's hold expires,
  the detector has seen the rest of the far side disappear and quorum
  arithmetic reflects the whole cut, not its first casualty.
* **Quorum check** — at hold expiry the verdict is forwarded only if
  the local side still holds a strict majority of ``n_members``
  (watchers count themselves).  Otherwise the verdict is *fenced*:
  logged, trace-marked, and parked until quorum returns (e.g. the
  partition heals), at which point still-dead nodes are re-forwarded.

Every forwarded transition bumps ``config_epoch``; consumers stamp the
epoch into their own fencing tokens so decisions made under a stale
view are rejectable after the fact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.errors import ConfigError

__all__ = ["QuorumGate"]


class QuorumGate:
    """Majority-fenced view over an inner failure detector."""

    def __init__(self, detector, *, n_members: Optional[int] = None,
                 hold_us: Optional[float] = None):
        n = (len(detector.targets) + 1) if n_members is None else n_members
        if n < 1:
            raise ConfigError("n_members must be positive")
        self.inner = detector
        self.env = detector.env
        self.n_members = n
        self.quorum = n // 2 + 1
        self.hold_us = (detector.period_us if hold_us is None
                        else hold_us)
        if self.hold_us < 0:
            raise ConfigError("hold_us must be non-negative")
        self._dead: Set[int] = set()       # forwarded (quorate) verdicts
        self._pending: Set[int] = set()    # fenced, awaiting quorum
        self._gen: Dict[int, int] = {}     # cancels stale hold timers
        self._listeners: List[Callable[[int, str], None]] = []
        #: (time, node_id, "dead"|"alive") — forwarded transitions only
        self.transitions: List[tuple] = []
        #: (time, node_id) — verdicts refused for lack of quorum
        self.fenced: List[tuple] = []
        #: bumped on every forwarded transition; consumers stamp it
        self.config_epoch = 0
        detector.subscribe(self._on_inner)

    # -- detector interface (what consumers see) -----------------------
    def is_dead(self, node_id: int) -> bool:
        return node_id in self._dead

    @property
    def dead_ids(self) -> Set[int]:
        return set(self._dead)

    @property
    def unreachable_ids(self) -> Set[int]:
        """The *raw* reachability view, ungated: verdicts the gate is
        still holding or fencing name nodes that are unreachable all
        the same, so placement decisions (where to rehome) must avoid
        them even while eviction decisions stay fenced."""
        inner = self.inner
        raw = set(getattr(inner, "unreachable_ids", inner.dead_ids))
        return raw | self._dead | self._pending

    @property
    def has_quorum(self) -> bool:
        """Can this side still justify reconfiguration decisions?

        Counts the *inner* detector's raw unreachable view — suspects
        included, because an adaptive detector confirms a partition's
        deaths staggered over seconds, and a node we cannot reach is
        not a supporter of our side whether or not its phi has crossed
        the confirmation threshold yet — plus the watcher itself.
        """
        unreachable = set(self.inner.dead_ids)
        unreachable |= getattr(self.inner, "suspect_ids", set())
        alive = self.n_members - len(unreachable)
        return alive >= self.quorum

    def subscribe(self, fn: Callable[[int, str], None]) -> None:
        self._listeners.append(fn)

    # -- inner transitions ---------------------------------------------
    def _on_inner(self, node_id: int, transition: str) -> None:
        gen = self._gen[node_id] = self._gen.get(node_id, 0) + 1
        if transition == "dead":
            self.env.process(self._hold_proc(node_id, gen),
                             name=f"quorum-hold@{node_id}")
        else:
            self._pending.discard(node_id)
            if node_id in self._dead:
                self._forward(node_id, "alive")
            # a returning node may restore quorum: release the parked
            # verdicts that were fenced while we were in the minority —
            # but only after a hold, so the rest of a healing
            # partition's probe hits can land first (otherwise the
            # first returnee would flush its still-"dead" peers)
            if self._pending:
                self.env.process(self._flush_proc(),
                                 name="quorum-flush")

    def _flush_proc(self):
        if self.hold_us:
            yield self.env.timeout(self.hold_us)
        self._flush_pending()

    def _hold_proc(self, node_id: int, gen: int):
        if self.hold_us:
            yield self.env.timeout(self.hold_us)
        if self._gen.get(node_id) != gen:
            return  # node came back (or re-died) while we held
        if self.inner.is_dead(node_id) and node_id not in self._dead:
            if self.has_quorum:
                self._forward(node_id, "dead")
            else:
                self._pending.add(node_id)
                self.fenced.append((self.env.now, node_id))
                self._obs("detect.fenced", node_id,
                          alive=self.n_members - len(self.inner.dead_ids),
                          quorum=self.quorum)
                # quorum can return without any inner "alive" event
                # (e.g. a mere *suspicion* elsewhere clears), so a
                # parked verdict re-checks on its own clock too
                self.env.process(self._retry_proc(node_id, gen),
                                 name=f"quorum-retry@{node_id}")

    def _retry_proc(self, node_id: int, gen: int):
        period = self.hold_us or getattr(self.inner, "period_us", 1.0)
        while (self._gen.get(node_id) == gen
               and node_id in self._pending):
            yield self.env.timeout(period)
            if self._gen.get(node_id) != gen \
                    or node_id not in self._pending:
                return
            if not self.inner.is_dead(node_id):
                self._pending.discard(node_id)
                return
            if self.has_quorum:
                self._pending.discard(node_id)
                self._forward(node_id, "dead")
                return

    def _flush_pending(self) -> None:
        if not self.has_quorum:
            return
        for node_id in sorted(self._pending):
            if self.inner.is_dead(node_id) and node_id not in self._dead:
                self._forward(node_id, "dead")
        self._pending.clear()

    def _forward(self, node_id: int, transition: str) -> None:
        if transition == "dead":
            self._dead.add(node_id)
        else:
            self._dead.discard(node_id)
        self.config_epoch += 1
        self.transitions.append((self.env.now, node_id, transition))
        self._obs(f"detect.{transition}", node_id, ep=self.config_epoch,
                  gated=True)
        for fn in self._listeners:
            fn(node_id, transition)

    def _obs(self, etype: str, node_id: int, **fields) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.inner.front.id,
                           watched=node_id, **fields)
