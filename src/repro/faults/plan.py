"""Declarative fault schedules.

A :class:`FaultPlan` is pure data: what goes wrong, where, and when.
Executing it is the :class:`repro.faults.injector.FaultInjector`'s job,
so plans can be built once and replayed against many seeds/clusters.
All times are simulation microseconds; ``src``/``dst``/``node`` of
``None`` means "any node".

Fault classes
-------------

* :class:`Crash` — fail-stop crash (optionally followed by a restart).
* :class:`MessageFault` / :class:`VerbFault` / :class:`LinkDegrade` —
  probabilistic drop/duplicate/fail/slow-down windows on the wire.
* :class:`Partition` — a network partition: traffic between nodes in
  *different* groups is cut for the window.  ``oneway=True`` models an
  asymmetric cut (only ``groups[0] -> groups[1]`` traffic fails), the
  gray-failure shape where acks flow one way but requests do not.
* :class:`SlowNode` — a gray failure: every transfer touching the node
  is slowed by ``factor`` (degraded NIC / overloaded processing).
* :class:`CreditStall` — a gray failure: the node stays up but stops
  returning flow-control credits / ring space until the window closes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["FaultPlan", "Crash", "MessageFault", "VerbFault",
           "LinkDegrade", "Partition", "SlowNode", "CreditStall"]


@dataclass(frozen=True)
class Crash:
    """Fail-stop crash of one node, optionally followed by a restart.

    Registered memory survives the crash (battery-backed NVRAM model);
    what a crash removes is the node's ability to communicate: every
    transfer to or from it fails until ``restart_at``.
    """

    node: int
    at: float
    restart_at: Optional[float] = None


@dataclass(frozen=True)
class MessageFault:
    """Drop or duplicate two-sided messages within a time window."""

    kind: str                 # "drop" | "duplicate"
    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    until: float = math.inf

    def matches(self, now: float, src: int, dst: int) -> bool:
        return (self.start <= now < self.until
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class VerbFault:
    """Fail one-sided verbs (read/write/CAS/FAA) within a time window."""

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    until: float = math.inf

    def matches(self, now: float, src: int, dst: int) -> bool:
        return (self.start <= now < self.until
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class LinkDegrade:
    """Multiply serialization + wire latency on matching transfers."""

    factor: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    until: float = math.inf

    def matches(self, now: float, src: int, dst: Optional[int]) -> bool:
        return (self.start <= now < self.until
                and (self.src is None or self.src == src)
                and (self.dst is None or dst is None or self.dst == dst))


@dataclass(frozen=True)
class Partition:
    """Cut traffic between node groups for ``[start, until)``.

    ``groups`` are disjoint node-id tuples.  A node absent from every
    group is unaffected (it reaches both sides).  Symmetric partitions
    cut traffic between any two *different* groups in both directions;
    a one-way partition cuts only ``groups[0] -> groups[1]`` while the
    reverse direction keeps flowing — the asymmetric-reachability gray
    failure.
    """

    groups: Tuple[Tuple[int, ...], ...]
    start: float
    until: float
    oneway: bool = False

    def _group_of(self, node_id: int) -> Optional[int]:
        for i, group in enumerate(self.groups):
            if node_id in group:
                return i
        return None

    def cuts(self, now: float, src: int, dst: int) -> bool:
        """True when a ``src -> dst`` transfer crosses the cut now."""
        if not self.start <= now < self.until:
            return False
        if self.oneway:
            return src in self.groups[0] and dst in self.groups[1]
        gs, gd = self._group_of(src), self._group_of(dst)
        return gs is not None and gd is not None and gs != gd

    def isolates(self, now: float, src: int) -> bool:
        """True when ``src`` cannot reach *some* node right now — the
        multicast case, where one unreachable destination is enough."""
        if not self.start <= now < self.until:
            return False
        if self.oneway:
            return src in self.groups[0]
        return self._group_of(src) is not None


@dataclass(frozen=True)
class SlowNode:
    """Gray failure: transfers touching ``node`` run ``factor`` slower."""

    node: int
    factor: float
    start: float
    until: float

    def matches(self, now: float, src: int, dst: Optional[int]) -> bool:
        return (self.start <= now < self.until
                and (src == self.node or dst == self.node))


@dataclass(frozen=True)
class CreditStall:
    """Gray failure: ``node`` stops returning flow-control credits."""

    node: int
    start: float
    until: float

    def matches(self, now: float, node_id: int) -> bool:
        return node_id == self.node and self.start <= now < self.until


def _check_rate(rate: float, kind: str) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(
            f"{kind}: fault rate must be in [0, 1], got {rate}")
    return float(rate)


def _check_window(start: float, until: float, kind: str) -> None:
    if start < 0 or until <= start:
        raise ConfigError(
            f"{kind}: bad fault window [{start}, {until}) — start must "
            f"be >= 0 and until must exceed start")


class FaultPlan:
    """Builder for a fault schedule (methods chain)."""

    def __init__(self):
        self.crashes: List[Crash] = []
        self.message_faults: List[MessageFault] = []
        self.verb_faults: List[VerbFault] = []
        self.degrades: List[LinkDegrade] = []
        self.partitions: List[Partition] = []
        self.slow_nodes: List[SlowNode] = []
        self.credit_stalls: List[CreditStall] = []

    # -- builders -------------------------------------------------------
    def crash(self, node: int, at: float,
              restart_at: Optional[float] = None) -> "FaultPlan":
        if at < 0:
            raise ConfigError(
                f"crash: time must be non-negative, got {at}")
        if restart_at is not None and restart_at <= at:
            raise ConfigError(
                f"crash: restart_at ({restart_at}) must come after the "
                f"crash ({at})")
        self.crashes.append(Crash(node=node, at=at, restart_at=restart_at))
        return self

    def drop_messages(self, rate: float, src: Optional[int] = None,
                      dst: Optional[int] = None, start: float = 0.0,
                      until: float = math.inf) -> "FaultPlan":
        _check_window(start, until, "drop_messages")
        self.message_faults.append(MessageFault(
            kind="drop", rate=_check_rate(rate, "drop_messages"),
            src=src, dst=dst, start=start, until=until))
        return self

    def duplicate_messages(self, rate: float, src: Optional[int] = None,
                           dst: Optional[int] = None, start: float = 0.0,
                           until: float = math.inf) -> "FaultPlan":
        _check_window(start, until, "duplicate_messages")
        self.message_faults.append(MessageFault(
            kind="duplicate", rate=_check_rate(rate, "duplicate_messages"),
            src=src, dst=dst, start=start, until=until))
        return self

    def fail_verbs(self, rate: float, src: Optional[int] = None,
                   dst: Optional[int] = None, start: float = 0.0,
                   until: float = math.inf) -> "FaultPlan":
        _check_window(start, until, "fail_verbs")
        self.verb_faults.append(VerbFault(
            rate=_check_rate(rate, "fail_verbs"), src=src, dst=dst,
            start=start, until=until))
        return self

    def degrade_link(self, factor: float, src: Optional[int] = None,
                     dst: Optional[int] = None, start: float = 0.0,
                     until: float = math.inf) -> "FaultPlan":
        if factor < 1.0:
            raise ConfigError(
                f"degrade_link: factor must be >= 1.0, got {factor}")
        _check_window(start, until, "degrade_link")
        self.degrades.append(LinkDegrade(
            factor=float(factor), src=src, dst=dst,
            start=start, until=until))
        return self

    def partition(self, groups, start: float = 0.0,
                  until: float = math.inf,
                  oneway: bool = False) -> "FaultPlan":
        """Cut traffic between the ``groups`` for ``[start, until)``."""
        _check_window(start, until, "partition")
        norm = tuple(tuple(int(n) for n in group) for group in groups)
        if len(norm) < 2:
            raise ConfigError(
                f"partition: need at least two groups, got {len(norm)}")
        if oneway and len(norm) != 2:
            raise ConfigError(
                f"partition: a one-way partition needs exactly two "
                f"groups (src, dst), got {len(norm)}")
        seen = set()
        for group in norm:
            if not group:
                raise ConfigError("partition: groups must be non-empty")
            for node in group:
                if node in seen:
                    raise ConfigError(
                        f"partition: node {node} appears in more than "
                        f"one group")
                seen.add(node)
        self.partitions.append(Partition(
            groups=norm, start=start, until=until, oneway=oneway))
        return self

    def partition_oneway(self, src_group, dst_group, start: float = 0.0,
                         until: float = math.inf) -> "FaultPlan":
        """Asymmetric cut: only ``src_group -> dst_group`` traffic fails."""
        return self.partition((src_group, dst_group), start=start,
                              until=until, oneway=True)

    def slow_node(self, node: int, factor: float, start: float = 0.0,
                  until: float = math.inf) -> "FaultPlan":
        """Gray failure: slow every transfer touching ``node``."""
        if factor < 1.0:
            raise ConfigError(
                f"slow_node: factor must be >= 1.0, got {factor}")
        _check_window(start, until, "slow_node")
        self.slow_nodes.append(SlowNode(
            node=int(node), factor=float(factor),
            start=start, until=until))
        return self

    def stall_credits(self, node: int, start: float = 0.0,
                      until: float = math.inf) -> "FaultPlan":
        """Gray failure: wedge ``node``'s flow-control credit returns."""
        _check_window(start, until, "stall_credits")
        self.credit_stalls.append(CreditStall(
            node=int(node), start=start, until=until))
        return self

    @property
    def is_empty(self) -> bool:
        return not (self.crashes or self.message_faults
                    or self.verb_faults or self.degrades
                    or self.partitions or self.slow_nodes
                    or self.credit_stalls)
