"""Declarative fault schedules.

A :class:`FaultPlan` is pure data: what goes wrong, where, and when.
Executing it is the :class:`repro.faults.injector.FaultInjector`'s job,
so plans can be built once and replayed against many seeds/clusters.
All times are simulation microseconds; ``src``/``dst``/``node`` of
``None`` means "any node".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError

__all__ = ["FaultPlan", "Crash", "MessageFault", "VerbFault", "LinkDegrade"]


@dataclass(frozen=True)
class Crash:
    """Fail-stop crash of one node, optionally followed by a restart.

    Registered memory survives the crash (battery-backed NVRAM model);
    what a crash removes is the node's ability to communicate: every
    transfer to or from it fails until ``restart_at``.
    """

    node: int
    at: float
    restart_at: Optional[float] = None


@dataclass(frozen=True)
class MessageFault:
    """Drop or duplicate two-sided messages within a time window."""

    kind: str                 # "drop" | "duplicate"
    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    until: float = math.inf

    def matches(self, now: float, src: int, dst: int) -> bool:
        return (self.start <= now < self.until
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class VerbFault:
    """Fail one-sided verbs (read/write/CAS/FAA) within a time window."""

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    until: float = math.inf

    def matches(self, now: float, src: int, dst: int) -> bool:
        return (self.start <= now < self.until
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class LinkDegrade:
    """Multiply serialization + wire latency on matching transfers."""

    factor: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    until: float = math.inf

    def matches(self, now: float, src: int, dst: Optional[int]) -> bool:
        return (self.start <= now < self.until
                and (self.src is None or self.src == src)
                and (self.dst is None or dst is None or self.dst == dst))


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"fault rate must be in [0, 1], got {rate}")
    return float(rate)


def _check_window(start: float, until: float) -> None:
    if start < 0 or until <= start:
        raise ConfigError(f"bad fault window [{start}, {until})")


class FaultPlan:
    """Builder for a fault schedule (methods chain)."""

    def __init__(self):
        self.crashes: List[Crash] = []
        self.message_faults: List[MessageFault] = []
        self.verb_faults: List[VerbFault] = []
        self.degrades: List[LinkDegrade] = []

    # -- builders -------------------------------------------------------
    def crash(self, node: int, at: float,
              restart_at: Optional[float] = None) -> "FaultPlan":
        if at < 0:
            raise ConfigError("crash time must be non-negative")
        if restart_at is not None and restart_at <= at:
            raise ConfigError("restart must come after the crash")
        self.crashes.append(Crash(node=node, at=at, restart_at=restart_at))
        return self

    def drop_messages(self, rate: float, src: Optional[int] = None,
                      dst: Optional[int] = None, start: float = 0.0,
                      until: float = math.inf) -> "FaultPlan":
        _check_window(start, until)
        self.message_faults.append(MessageFault(
            kind="drop", rate=_check_rate(rate), src=src, dst=dst,
            start=start, until=until))
        return self

    def duplicate_messages(self, rate: float, src: Optional[int] = None,
                           dst: Optional[int] = None, start: float = 0.0,
                           until: float = math.inf) -> "FaultPlan":
        _check_window(start, until)
        self.message_faults.append(MessageFault(
            kind="duplicate", rate=_check_rate(rate), src=src, dst=dst,
            start=start, until=until))
        return self

    def fail_verbs(self, rate: float, src: Optional[int] = None,
                   dst: Optional[int] = None, start: float = 0.0,
                   until: float = math.inf) -> "FaultPlan":
        _check_window(start, until)
        self.verb_faults.append(VerbFault(
            rate=_check_rate(rate), src=src, dst=dst,
            start=start, until=until))
        return self

    def degrade_link(self, factor: float, src: Optional[int] = None,
                     dst: Optional[int] = None, start: float = 0.0,
                     until: float = math.inf) -> "FaultPlan":
        if factor < 1.0:
            raise ConfigError("degrade factor must be >= 1.0")
        _check_window(start, until)
        self.degrades.append(LinkDegrade(
            factor=float(factor), src=src, dst=dst,
            start=start, until=until))
        return self

    @property
    def is_empty(self) -> bool:
        return not (self.crashes or self.message_faults
                    or self.verb_faults or self.degrades)
