"""Deterministic fault injection and recovery substrate.

The paper's framework (and this reproduction's seed state) assumes a
fault-free fabric.  This package adds the failure model every later
scaling experiment inherits:

* :class:`FaultPlan` — a declarative, seeded schedule of faults: node
  crashes/restarts, message drop/duplication windows, one-sided verb
  failure windows, link degradation windows.
* :class:`FaultInjector` — executes a plan against a cluster.  It hooks
  :class:`repro.net.fabric.Fabric` (transfers to/from crashed nodes fail
  with :class:`repro.errors.NodeDownError`; degraded links stretch
  serialization/latency) and :class:`repro.net.nic.NIC` (two-sided
  messages are dropped or duplicated; one-sided verbs fail with
  :class:`repro.errors.RdmaError`).

Determinism: all coin flips draw from one named stream of the cluster's
:class:`repro.sim.RngStreams`, and scheduled faults ride the ordinary
event loop — the same seed replays the exact same fault sequence.  With
no plan installed every hook is a single attribute test, so fault-free
runs are byte-identical to a build without this package.

Quickstart::

    from repro.net import Cluster
    from repro.faults import FaultPlan

    cluster = Cluster(n_nodes=4, seed=7)
    plan = (FaultPlan()
            .crash(node=2, at=10_000.0, restart_at=60_000.0)
            .drop_messages(rate=0.01)
            .degrade_link(factor=8.0, src=1, start=5_000.0, until=9_000.0))
    injector = cluster.install_faults(plan)
"""

from repro.faults.plan import FaultPlan
from repro.faults.injector import FaultInjector

__all__ = ["FaultPlan", "FaultInjector"]
