"""Execute a :class:`FaultPlan` against a live cluster.

The injector owns the failure ground truth (``down`` set) and is the
single place the :mod:`repro.net` layer consults:

* :meth:`transfer_fault` — called by :meth:`Fabric.transfer` before any
  timing; returns an event that fails with :class:`NodeDownError` after
  ``detect_us`` when either end is crashed (modelling an RC
  retry-exceeded completion), or with :class:`PartitionError` when the
  transfer crosses an active partition cut, else ``None``.
* :meth:`link_factor` — multiplier applied to serialization and wire
  latency of matching transfers (congested/flapping link windows and
  ``slow_node`` gray failures).
* :meth:`message_fate` — per delivered two-sided message: ``0`` drop,
  ``1`` deliver, ``2`` deliver twice.  Messages crossing a partition at
  delivery time are dropped.
* :meth:`verb_fault` — raises :class:`RdmaError` for one-sided verbs
  that fall into a failure window.
* :meth:`credit_stall_until` — end of the active ``stall_credits``
  window for a node (the flow-control layer defers its credit returns
  until then), or ``None``.
* :meth:`fence_completion` — wraps a transfer's completion event so a
  crash (epoch bump) at either endpoint while the transfer was in
  flight fails the completion instead of delivering it.  This is what
  keeps a restarted node from consuming a *zombie completion* posted
  by its previous incarnation.

Crash/restart listeners let services react to membership ground truth;
the :class:`repro.monitor.heartbeat.HeartbeatDetector` instead
*discovers* failures through probing, like a real deployment would.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.errors import (ConfigError, NodeDownError, PartitionError,
                          RdmaError)
from repro.sim import Event

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Cluster

__all__ = ["FaultInjector"]

#: delay before a transfer involving a crashed node fails (µs) — models
#: the initiator NIC exhausting its RC retry budget.
DETECT_US = 20.0


class FaultInjector:
    """Installs fault hooks on a cluster's fabric and runs the plan."""

    def __init__(self, cluster: "Cluster", plan: Optional[FaultPlan] = None,
                 detect_us: float = DETECT_US, rng_stream: str = "faults"):
        if detect_us < 0:
            raise ConfigError("detect_us must be non-negative")
        self.env = cluster.env
        self.fabric = cluster.fabric
        if self.fabric.injector is not None:
            raise ConfigError("cluster already has a fault injector")
        self.plan = plan or FaultPlan()
        self.detect_us = detect_us
        self.rng = cluster.rng.get(rng_stream)
        self.down: Set[int] = set()
        #: node id -> communication-context incarnation; bumped on every
        #: crash so in-flight completions can be fenced against restarts
        self.incarnations: Dict[int, int] = {}
        #: (time, "crash"|"restart", node_id) — the injected ground truth
        self.log: List[tuple] = []
        self._listeners: List[Callable[[int, str], None]] = []
        # fault counters, exposed for tests/diagnostics
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.verbs_failed = 0
        self.transfers_refused = 0
        self.transfers_partitioned = 0
        self.completions_fenced = 0
        self.fabric.injector = self
        for crash in self.plan.crashes:
            self.env.process(self._crash_proc(crash),
                             name=f"fault-crash@{crash.node}")
        # window markers: pure trace bookkeeping (scheduled whether or
        # not obs is installed, so the agenda is identical either way)
        for i, part in enumerate(self.plan.partitions):
            self.env.process(
                self._window_proc(
                    "fault.partition", "fault.partition.heal", part,
                    groups=[list(g) for g in part.groups],
                    oneway=part.oneway),
                name=f"fault-partition-{i}")
        for i, slow in enumerate(self.plan.slow_nodes):
            self.env.process(
                self._window_proc("fault.slow", "fault.slow.end", slow,
                                  mnode=slow.node, factor=slow.factor),
                name=f"fault-slow-{i}")
        for i, stall in enumerate(self.plan.credit_stalls):
            self.env.process(
                self._window_proc("fault.stall", "fault.stall.end", stall,
                                  mnode=stall.node),
                name=f"fault-stall-{i}")

    # ------------------------------------------------------------------
    # ground truth + control
    # ------------------------------------------------------------------
    def is_down(self, node_id: int) -> bool:
        return node_id in self.down

    def incarnation(self, node_id: int) -> int:
        return self.incarnations.get(node_id, 0)

    def subscribe(self, fn: Callable[[int, str], None]) -> None:
        """Register ``fn(node_id, event)`` for "crash"/"restart" events."""
        self._listeners.append(fn)

    def crash(self, node_id: int) -> None:
        """Fail-stop ``node_id`` now (also usable outside a plan)."""
        if node_id in self.down:
            return
        self.down.add(node_id)
        self.incarnations[node_id] = self.incarnations.get(node_id, 0) + 1
        self.log.append((self.env.now, "crash", node_id))
        self._obs_fault("fault.crash", node_id)
        for fn in self._listeners:
            fn(node_id, "crash")

    def restart(self, node_id: int) -> None:
        """Bring ``node_id`` back (memory intact, see :class:`Crash`)."""
        if node_id not in self.down:
            return
        self.down.discard(node_id)
        self.log.append((self.env.now, "restart", node_id))
        self._obs_fault("fault.restart", node_id)
        for fn in self._listeners:
            fn(node_id, "restart")

    def _obs_fault(self, etype: str, node_id: int) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=node_id)
            obs.metrics.counter(f"{etype}s").inc()

    def _crash_proc(self, crash):
        if crash.at > self.env.now:
            yield self.env.timeout(crash.at - self.env.now)
        self.crash(crash.node)
        if crash.restart_at is not None:
            yield self.env.timeout(crash.restart_at - self.env.now)
            self.restart(crash.node)

    def _window_proc(self, open_etype: str, close_etype: str, fault,
                     **fields):
        """Emit trace markers at a windowed fault's boundaries."""
        if fault.start > self.env.now:
            yield self.env.timeout(fault.start - self.env.now)
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(open_etype, node=-1, until=fault.until,
                           **fields)
        if math.isinf(fault.until):
            return
        yield self.env.timeout(fault.until - self.env.now)
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(close_etype, node=-1, **fields)

    # ------------------------------------------------------------------
    # hooks consulted by the net layer
    # ------------------------------------------------------------------
    def partition_cut(self, src_id: int, dst_id: Optional[int]) -> bool:
        """True when a ``src -> dst`` transfer crosses an active cut.

        ``dst_id`` of ``None`` is the multicast case: the injection
        fails when any active partition separates the source from some
        group (switch replication cannot cross the cut).
        """
        now = self.env.now
        if dst_id is None:
            return any(p.isolates(now, src_id)
                       for p in self.plan.partitions)
        return any(p.cuts(now, src_id, dst_id)
                   for p in self.plan.partitions)

    def transfer_fault(self, src_id: int,
                       dst_id: Optional[int]) -> Optional[Event]:
        """A failing event if either end is down or the route is cut."""
        if src_id in self.down or (dst_id is not None
                                   and dst_id in self.down):
            self.transfers_refused += 1
            culprit = src_id if src_id in self.down else dst_id
            exc = NodeDownError(
                f"node {culprit} is down (transfer {src_id}->{dst_id})")
            return self._refuse(exc)
        if self.plan.partitions and self.partition_cut(src_id, dst_id):
            self.transfers_partitioned += 1
            exc = PartitionError(
                f"partition cuts transfer {src_id}->{dst_id}")
            return self._refuse(exc)
        return None

    def _refuse(self, exc: Exception) -> Event:
        """Fail after ``detect_us`` — the RC retry-exhaustion model."""
        ev = self.env.event()
        self.env.timeout(self.detect_us).add_callback(
            lambda _t: ev.fail(exc))
        return ev

    def link_factor(self, src_id: int, dst_id: Optional[int]) -> float:
        factor = 1.0
        now = self.env.now
        for rule in self.plan.degrades:
            if rule.matches(now, src_id, dst_id):
                factor *= rule.factor
        for rule in self.plan.slow_nodes:
            if rule.matches(now, src_id, dst_id):
                factor *= rule.factor
        return factor

    def message_fate(self, src_id: int, dst_id: int) -> int:
        """0 = drop, 1 = deliver once, 2 = deliver twice (duplicate)."""
        if src_id in self.down or dst_id in self.down:
            self.messages_dropped += 1
            return 0
        now = self.env.now
        if self.plan.partitions and self.partition_cut(src_id, dst_id):
            # arrived at the cut *after* launch: silently lost in-network
            self.messages_dropped += 1
            return 0
        fate = 1
        for rule in self.plan.message_faults:
            if not rule.matches(now, src_id, dst_id):
                continue
            if float(self.rng.random()) < rule.rate:
                if rule.kind == "drop":
                    self.messages_dropped += 1
                    return 0
                fate = 2
        if fate == 2:
            self.messages_duplicated += 1
        return fate

    def verb_fault(self, src_id: int, dst_id: int) -> None:
        """Raise RdmaError if a verb-failure window applies."""
        now = self.env.now
        for rule in self.plan.verb_faults:
            if (rule.matches(now, src_id, dst_id)
                    and float(self.rng.random()) < rule.rate):
                self.verbs_failed += 1
                raise RdmaError(
                    f"injected verb fault on {src_id}->{dst_id}")

    def credit_stall_until(self, node_id: int) -> Optional[float]:
        """End of the active credit-stall window covering ``node_id``
        (the latest, when windows overlap), or ``None``."""
        now = self.env.now
        until = None
        for rule in self.plan.credit_stalls:
            if rule.matches(now, node_id):
                if until is None or rule.until > until:
                    until = rule.until
        return until

    # ------------------------------------------------------------------
    # completion fencing (zombie-completion prevention)
    # ------------------------------------------------------------------
    def fence_completion(self, src_id: int, dst_id: Optional[int],
                         inner: Event) -> Event:
        """Tie ``inner``'s completion to both endpoints' incarnations.

        A crash bumps the node's incarnation; if either endpoint's
        incarnation changed while the transfer was in flight, the
        completion belongs to a dead communication context and must not
        be delivered — even if the node has since restarted.  The gate
        fails with :class:`NodeDownError` instead.
        """
        snap = (self.incarnation(src_id),
                self.incarnation(dst_id) if dst_id is not None else 0)
        gate = self.env.event()

        def _done(ev):
            cur = (self.incarnation(src_id),
                   self.incarnation(dst_id) if dst_id is not None else 0)
            if not ev.ok:
                gate.fail(ev._value)
            elif cur != snap:
                self.completions_fenced += 1
                gate.fail(NodeDownError(
                    f"stale completion fenced: endpoint of "
                    f"{src_id}->{dst_id} crashed mid-transfer"))
            else:
                gate.succeed(ev._value)

        inner.add_callback(_done)
        return gate
