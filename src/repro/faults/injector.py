"""Execute a :class:`FaultPlan` against a live cluster.

The injector owns the failure ground truth (``down`` set) and is the
single place the :mod:`repro.net` layer consults:

* :meth:`transfer_fault` — called by :meth:`Fabric.transfer` before any
  timing; returns an event that fails with :class:`NodeDownError` after
  ``detect_us`` when either end is crashed (modelling an RC
  retry-exceeded completion), else ``None``.
* :meth:`link_factor` — multiplier applied to serialization and wire
  latency of matching transfers (congested/flapping link windows).
* :meth:`message_fate` — per delivered two-sided message: ``0`` drop,
  ``1`` deliver, ``2`` deliver twice.
* :meth:`verb_fault` — raises :class:`RdmaError` for one-sided verbs
  that fall into a failure window.

Crash/restart listeners let services react to membership ground truth;
the :class:`repro.monitor.heartbeat.HeartbeatDetector` instead
*discovers* failures through probing, like a real deployment would.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, TYPE_CHECKING

from repro.errors import ConfigError, NodeDownError, RdmaError
from repro.sim import Event

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Cluster

__all__ = ["FaultInjector"]

#: delay before a transfer involving a crashed node fails (µs) — models
#: the initiator NIC exhausting its RC retry budget.
DETECT_US = 20.0


class FaultInjector:
    """Installs fault hooks on a cluster's fabric and runs the plan."""

    def __init__(self, cluster: "Cluster", plan: Optional[FaultPlan] = None,
                 detect_us: float = DETECT_US, rng_stream: str = "faults"):
        if detect_us < 0:
            raise ConfigError("detect_us must be non-negative")
        self.env = cluster.env
        self.fabric = cluster.fabric
        if self.fabric.injector is not None:
            raise ConfigError("cluster already has a fault injector")
        self.plan = plan or FaultPlan()
        self.detect_us = detect_us
        self.rng = cluster.rng.get(rng_stream)
        self.down: Set[int] = set()
        #: (time, "crash"|"restart", node_id) — the injected ground truth
        self.log: List[tuple] = []
        self._listeners: List[Callable[[int, str], None]] = []
        # fault counters, exposed for tests/diagnostics
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.verbs_failed = 0
        self.transfers_refused = 0
        self.fabric.injector = self
        for crash in self.plan.crashes:
            self.env.process(self._crash_proc(crash),
                             name=f"fault-crash@{crash.node}")

    # ------------------------------------------------------------------
    # ground truth + control
    # ------------------------------------------------------------------
    def is_down(self, node_id: int) -> bool:
        return node_id in self.down

    def subscribe(self, fn: Callable[[int, str], None]) -> None:
        """Register ``fn(node_id, event)`` for "crash"/"restart" events."""
        self._listeners.append(fn)

    def crash(self, node_id: int) -> None:
        """Fail-stop ``node_id`` now (also usable outside a plan)."""
        if node_id in self.down:
            return
        self.down.add(node_id)
        self.log.append((self.env.now, "crash", node_id))
        self._obs_fault("fault.crash", node_id)
        for fn in self._listeners:
            fn(node_id, "crash")

    def restart(self, node_id: int) -> None:
        """Bring ``node_id`` back (memory intact, see :class:`Crash`)."""
        if node_id not in self.down:
            return
        self.down.discard(node_id)
        self.log.append((self.env.now, "restart", node_id))
        self._obs_fault("fault.restart", node_id)
        for fn in self._listeners:
            fn(node_id, "restart")

    def _obs_fault(self, etype: str, node_id: int) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=node_id)
            obs.metrics.counter(f"{etype}s").inc()

    def _crash_proc(self, crash):
        if crash.at > self.env.now:
            yield self.env.timeout(crash.at - self.env.now)
        self.crash(crash.node)
        if crash.restart_at is not None:
            yield self.env.timeout(crash.restart_at - self.env.now)
            self.restart(crash.node)

    # ------------------------------------------------------------------
    # hooks consulted by the net layer
    # ------------------------------------------------------------------
    def transfer_fault(self, src_id: int,
                       dst_id: Optional[int]) -> Optional[Event]:
        """A failing event if either end is down, else None."""
        if src_id in self.down or (dst_id is not None
                                   and dst_id in self.down):
            self.transfers_refused += 1
            culprit = src_id if src_id in self.down else dst_id
            exc = NodeDownError(
                f"node {culprit} is down (transfer {src_id}->{dst_id})")
            ev = self.env.event()
            self.env.timeout(self.detect_us).add_callback(
                lambda _t: ev.fail(exc))
            return ev
        return None

    def link_factor(self, src_id: int, dst_id: Optional[int]) -> float:
        factor = 1.0
        now = self.env.now
        for rule in self.plan.degrades:
            if rule.matches(now, src_id, dst_id):
                factor *= rule.factor
        return factor

    def message_fate(self, src_id: int, dst_id: int) -> int:
        """0 = drop, 1 = deliver once, 2 = deliver twice (duplicate)."""
        if src_id in self.down or dst_id in self.down:
            self.messages_dropped += 1
            return 0
        now = self.env.now
        fate = 1
        for rule in self.plan.message_faults:
            if not rule.matches(now, src_id, dst_id):
                continue
            if float(self.rng.random()) < rule.rate:
                if rule.kind == "drop":
                    self.messages_dropped += 1
                    return 0
                fate = 2
        if fate == 2:
            self.messages_duplicated += 1
        return fate

    def verb_fault(self, src_id: int, dst_id: int) -> None:
        """Raise RdmaError if a verb-failure window applies."""
        now = self.env.now
        for rule in self.plan.verb_faults:
            if (rule.matches(now, src_id, dst_id)
                    and float(self.rng.random()) < rule.rate):
                self.verbs_failed += 1
                raise RdmaError(
                    f"injected verb fault on {src_id}->{dst_id}")
