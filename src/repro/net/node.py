"""A cluster node: CPU + registered memory + NIC."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.sim import CPU, Environment

from repro.net.memory import MemoryManager
from repro.net.nic import NIC

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

__all__ = ["Node"]


class Node:
    """One machine in the simulated data-center."""

    def __init__(self, env: Environment, node_id: int, fabric: "Fabric",
                 name: str = "", cores: int = 2):
        if node_id < 0:
            raise ConfigError("node id must be non-negative")
        self.env = env
        self.id = node_id
        self.name = name or f"node{node_id}"
        self.cpu = CPU(env, cores=cores, name=f"{self.name}.cpu")
        self.memory = MemoryManager(node_id)
        fabric.attach(self)
        self.fabric = fabric
        self.nic = NIC(env, self, fabric)
        #: free-form slot for services to hang per-node state on
        self.services: dict = {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} id={self.id}>"
