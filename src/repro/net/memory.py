"""Registered memory regions — the substrate for one-sided operations.

Every node owns a :class:`MemoryManager` holding registered
:class:`MemoryRegion`\\ s backed by real :class:`bytearray` storage.  An
RDMA access names ``(addr, rkey)``; the manager validates the key and
bounds exactly like an HCA's protection-table walk, then performs the
byte-level operation.  Remote atomics (:meth:`MemoryManager.cas64`,
:meth:`MemoryManager.faa64`) act on 64-bit big-endian words, matching the
wire format the lock manager and DDSS metadata use.

:class:`RemoteKey` is the serializable handle (node, addr, rkey, length)
that services exchange so peers can target each other's memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import BoundsError, ConfigError, ProtectionError

__all__ = ["MemoryRegion", "MemoryManager", "RemoteKey"]

_U64_MASK = (1 << 64) - 1


@dataclass(frozen=True, slots=True)
class RemoteKey:
    """Serializable descriptor of a remote memory window.

    Slotted: the ``*_key`` verb helpers mint a sub-window per call, so
    these are a hot allocation in key-addressed workloads.
    """

    node: int
    addr: int
    rkey: int
    length: int

    def slice(self, offset: int, length: Optional[int] = None) -> "RemoteKey":
        """A sub-window at ``offset`` (bounds-checked)."""
        if offset < 0 or offset > self.length:
            raise BoundsError(f"slice offset {offset} outside window")
        length = self.length - offset if length is None else length
        if length < 0 or offset + length > self.length:
            raise BoundsError("slice extends past window")
        return RemoteKey(self.node, self.addr + offset, self.rkey, length)


class MemoryRegion:
    """A registered, rkey-protected window of node memory."""

    __slots__ = ("node_id", "addr", "length", "rkey", "buf", "name")

    def __init__(self, node_id: int, addr: int, length: int, rkey: int,
                 name: str = ""):
        if length <= 0:
            raise ConfigError("memory region length must be positive")
        self.node_id = node_id
        self.addr = addr
        self.length = length
        self.rkey = rkey
        self.buf = bytearray(length)
        self.name = name

    # -- local (lkey-style) access ----------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return bytes(self.buf[offset:offset + length])

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.buf[offset:offset + len(data)] = data

    def read_u64(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, 8), "big")

    def write_u64(self, offset: int, value: int) -> None:
        self.write(offset, (value & _U64_MASK).to_bytes(8, "big"))

    def read_u32(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, 4), "big")

    def write_u32(self, offset: int, value: int) -> None:
        self.write(offset, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def remote_key(self) -> RemoteKey:
        return RemoteKey(self.node_id, self.addr, self.rkey, self.length)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.length:
            raise BoundsError(
                f"access [{offset}, {offset + length}) outside region "
                f"{self.name!r} of length {self.length}")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MemoryRegion {self.name!r} node={self.node_id} "
                f"addr={self.addr:#x} len={self.length}>")


class MemoryManager:
    """Per-node registry of memory regions + HCA-style access checks."""

    #: registration base and alignment, purely cosmetic but makes
    #: addresses look like addresses in traces
    _BASE = 0x10000
    _ALIGN = 64

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._next_addr = self._BASE
        self._next_rkey = 0x1D0C0000 + node_id * 0x10101
        self._regions: Dict[int, MemoryRegion] = {}  # addr -> region
        #: last region a resolve hit — remote traffic is heavily
        #: region-local (a lock word, a DDSS directory), so this turns
        #: the linear protection-table walk into one range check.
        #: Invalidated on deregister.
        self._rcache: Optional[MemoryRegion] = None

    @property
    def registered_bytes(self) -> int:
        return sum(r.length for r in self._regions.values())

    def register(self, length: int, name: str = "") -> MemoryRegion:
        """Register ``length`` bytes; returns the region handle."""
        addr = self._next_addr
        pad = (-length) % self._ALIGN
        self._next_addr += length + pad + self._ALIGN  # guard gap
        self._next_rkey = (self._next_rkey * 2654435761 + 1) & 0xFFFFFFFF
        region = MemoryRegion(self.node_id, addr, length,
                              self._next_rkey, name)
        self._regions[addr] = region
        return region

    def deregister(self, region: MemoryRegion) -> None:
        """Revoke a region; later remote accesses fail with ProtectionError."""
        self._regions.pop(region.addr, None)
        if self._rcache is region:
            self._rcache = None

    # -- remote-access path (what the simulated HCA executes) -------------
    def resolve(self, addr: int, rkey: int, length: int):
        """Protection-table walk: find region containing [addr, addr+len)."""
        region = self._rcache
        if region is None or not (region.addr <= addr
                                  < region.addr + region.length):
            region = None
            for base, cand in self._regions.items():
                if base <= addr < base + cand.length:
                    region = self._rcache = cand
                    break
            if region is None:
                raise ProtectionError(
                    f"no registered region at {addr:#x} "
                    f"on node {self.node_id}")
        if region.rkey != rkey:
            raise ProtectionError(
                f"rkey mismatch on node {self.node_id} addr {addr:#x}")
        offset = addr - region.addr
        if offset + length > region.length:
            raise BoundsError(
                f"remote access [{addr:#x}+{length}] crosses region end")
        return region, offset

    # The verbs below inline the region byte access (``resolve`` already
    # bounds-checked the window, so MemoryRegion._check would be
    # redundant work on the hottest data path).
    def rdma_read(self, addr: int, rkey: int, length: int) -> bytes:
        region, offset = self.resolve(addr, rkey, length)
        return bytes(region.buf[offset:offset + length])

    def rdma_write(self, addr: int, rkey: int, data: bytes) -> None:
        region, offset = self.resolve(addr, rkey, len(data))
        region.buf[offset:offset + len(data)] = data

    def cas64(self, addr: int, rkey: int, compare: int, swap: int) -> int:
        """Atomic compare-and-swap on a 64-bit word; returns the old value."""
        region, offset = self.resolve(addr, rkey, 8)
        buf = region.buf
        old = int.from_bytes(buf[offset:offset + 8], "big")
        if old == (compare & _U64_MASK):
            buf[offset:offset + 8] = (swap & _U64_MASK).to_bytes(8, "big")
        return old

    def faa64(self, addr: int, rkey: int, add: int) -> int:
        """Atomic fetch-and-add on a 64-bit word; returns the old value."""
        region, offset = self.resolve(addr, rkey, 8)
        buf = region.buf
        old = int.from_bytes(buf[offset:offset + 8], "big")
        buf[offset:offset + 8] = ((old + add) & _U64_MASK).to_bytes(8, "big")
        return old
