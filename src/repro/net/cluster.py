"""Cluster builder: environment + fabric + homogeneous nodes in one call."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.sim import Environment, RngStreams

from repro.net.fabric import Fabric
from repro.net.node import Node
from repro.net.params import NetworkParams

__all__ = ["Cluster"]


class Cluster:
    """A simulated cluster: one Environment, one Fabric, N nodes.

    Parameters
    ----------
    n_nodes:
        Number of homogeneous nodes to create (ignored if ``names``).
    names:
        Explicit node names; one node per name.
    params:
        Interconnect model; defaults to :meth:`NetworkParams.infiniband`.
    cores_per_node:
        CPU cores of every node.
    seed:
        Root seed for all named RNG streams (:class:`RngStreams`).
    """

    def __init__(self, n_nodes: int = 0,
                 names: Optional[Sequence[str]] = None,
                 params: Optional[NetworkParams] = None,
                 cores_per_node: int = 2,
                 seed: int = 0):
        if names is None:
            if n_nodes <= 0:
                raise ConfigError("need n_nodes > 0 or explicit names")
            names = [f"node{i}" for i in range(n_nodes)]
        elif not names:
            raise ConfigError("need n_nodes > 0 or explicit names")
        elif n_nodes and n_nodes != len(names):
            raise ConfigError("n_nodes inconsistent with names")
        self.params = params or NetworkParams.infiniband()
        self.env = Environment()
        self.rng = RngStreams(seed)
        # components that only see the Environment (e.g. RPC backoff
        # jitter) draw from the same seeded streams via this handle
        self.env.rng = self.rng
        self.fabric = self._make_fabric()
        self.nodes: List[Node] = [
            Node(self.env, i, self.fabric, name=name, cores=cores_per_node)
            for i, name in enumerate(names)
        ]

    def _make_fabric(self) -> Fabric:
        """Fabric construction hook; :class:`repro.topo.TopoCluster`
        overrides this to install a rack/spine fabric instead."""
        return Fabric(self.env, self.params)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, i: int) -> Node:
        return self.nodes[i]

    def run(self, until: Optional[float] = None) -> float:
        return self.env.run(until=until)

    def run_until(self, event, limit: float = 1e12):
        return self.env.run_until_event(event, limit=limit)

    def install_faults(self, plan=None, **kwargs):
        """Install a :class:`repro.faults.FaultInjector` running ``plan``.

        Returns the injector; keyword arguments are forwarded (e.g.
        ``detect_us``).  At most one injector per cluster.
        """
        from repro.faults import FaultInjector
        return FaultInjector(self, plan, **kwargs)

    def observe(self, **kwargs):
        """Install :class:`repro.obs.Observability` on the environment.

        Returns the (installed) observability handle; keyword arguments
        are forwarded (``ring``, ``sanitize``, ``strict``).  Install
        before starting the workload — sanitizers build their shadow
        models from the trace and must see it from the beginning.
        """
        from repro.obs import Observability
        if self.env.obs is not None:
            return self.env.obs
        return Observability(self.env, **kwargs).install()
