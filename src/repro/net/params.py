"""Network timing parameters, calibrated to 2007-era interconnects.

All latencies are in microseconds; bandwidth is in bytes/µs (numerically
equal to MB/s).  The presets reflect the platforms in the paper's
evaluation:

* :meth:`NetworkParams.infiniband` — IBA-style SAN with RDMA and remote
  atomics.  Small send one-way ≈ 3 µs, RDMA read RTT ≈ 9 µs, atomics
  ≈ 10 µs, ~900 MB/s.
* :meth:`NetworkParams.tcp_gige` — host-based TCP over gigabit Ethernet:
  higher wire latency, ~110 MB/s, and significant *CPU* cost per message
  and per byte on both ends (the paper's core complaint about sockets).
* :meth:`NetworkParams.tcp_10gige` — 10GigE with host TCP: bandwidth
  close to IB but the host CPU costs remain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["NetworkParams"]


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth/CPU model of one interconnect."""

    name: str
    #: one-way propagation + switching delay (µs)
    wire_latency_us: float
    #: link bandwidth in bytes/µs (== MB/s)
    bandwidth_bpus: float
    #: NIC per-message processing at the sender (µs)
    nic_tx_us: float
    #: NIC per-message processing at the receiver (µs)
    nic_rx_us: float
    #: CPU time to post a work request / initiate a transfer (µs)
    post_us: float
    #: target-NIC turnaround for servicing an RDMA read (µs)
    rdma_turnaround_us: float
    #: target-NIC execution time for a remote atomic (µs)
    atomic_exec_us: float
    #: latency of a loopback (same-node) NIC operation (µs)
    local_op_us: float
    #: whether the interconnect offers RDMA + remote atomics
    has_rdma: bool
    #: host CPU cost per message for socket-style protocols (µs, each end)
    sock_cpu_per_msg_us: float
    #: host CPU cost per byte for socket-style copies (µs/byte, each end)
    sock_cpu_per_byte_us: float
    #: wire-level message header size used for control traffic (bytes)
    header_bytes: int = 32

    def __post_init__(self):
        if self.bandwidth_bpus <= 0:
            raise ConfigError("bandwidth must be positive")
        for field in ("wire_latency_us", "nic_tx_us", "nic_rx_us", "post_us",
                      "rdma_turnaround_us", "atomic_exec_us", "local_op_us",
                      "sock_cpu_per_msg_us", "sock_cpu_per_byte_us"):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be non-negative")

    # -- derived helpers -------------------------------------------------
    def serialization_us(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return nbytes / self.bandwidth_bpus

    def sock_cpu_us(self, nbytes: int) -> float:
        """Host CPU work for one socket send or receive of ``nbytes``."""
        return self.sock_cpu_per_msg_us + nbytes * self.sock_cpu_per_byte_us

    def with_(self, **overrides) -> "NetworkParams":
        """A copy with selected fields replaced (for sweeps/ablations)."""
        return replace(self, **overrides)

    # -- presets -----------------------------------------------------------
    @classmethod
    def infiniband(cls) -> "NetworkParams":
        """InfiniBand-style SAN (RDMA + atomics), DDR-era numbers."""
        return cls(
            name="infiniband",
            wire_latency_us=2.0,
            bandwidth_bpus=900.0,
            nic_tx_us=0.5,
            nic_rx_us=0.5,
            post_us=0.3,
            rdma_turnaround_us=2.0,
            atomic_exec_us=1.5,
            local_op_us=0.5,
            has_rdma=True,
            sock_cpu_per_msg_us=3.0,
            sock_cpu_per_byte_us=0.002,
        )

    @classmethod
    def tcp_gige(cls) -> "NetworkParams":
        """Host-based TCP over gigabit Ethernet (the sockets baseline)."""
        return cls(
            name="tcp-gige",
            wire_latency_us=22.0,
            bandwidth_bpus=110.0,
            nic_tx_us=1.0,
            nic_rx_us=1.0,
            post_us=0.5,
            rdma_turnaround_us=0.0,
            atomic_exec_us=0.0,
            local_op_us=1.0,
            has_rdma=False,
            sock_cpu_per_msg_us=8.0,
            sock_cpu_per_byte_us=0.008,
        )

    @classmethod
    def tcp_10gige(cls) -> "NetworkParams":
        """Host TCP over 10GigE: fat pipe, same host-CPU tax."""
        return cls(
            name="tcp-10gige",
            wire_latency_us=10.0,
            bandwidth_bpus=900.0,
            nic_tx_us=1.0,
            nic_rx_us=1.0,
            post_us=0.5,
            rdma_turnaround_us=0.0,
            atomic_exec_us=0.0,
            local_op_us=1.0,
            has_rdma=False,
            sock_cpu_per_msg_us=8.0,
            sock_cpu_per_byte_us=0.006,
        )
