"""Simulated cluster network: nodes, RDMA NICs, fabric, memory regions.

This package is the substitute for the paper's InfiniBand testbed.  The
semantics are real — RDMA reads/writes/atomics operate on actual bytes in
per-node :class:`bytearray` memory with rkey protection — while time is
provided by the discrete-event kernel in :mod:`repro.sim` using
calibrated latency/bandwidth parameters (:class:`NetworkParams`).

Typical use::

    from repro.net import Cluster, NetworkParams

    cluster = Cluster(n_nodes=4, params=NetworkParams.infiniband())
    a, b = cluster.nodes[0], cluster.nodes[1]
    region = b.memory.register(4096)

    def app(env):
        data = yield a.nic.rdma_read(b.id, region.addr, region.rkey, 64)
        old = yield a.nic.cas(b.id, region.addr, region.rkey, 0, 42)

    cluster.env.process(app(cluster.env))
    cluster.env.run()
"""

from repro.net.cluster import Cluster
from repro.net.fabric import Fabric
from repro.net.memory import MemoryManager, MemoryRegion, RemoteKey
from repro.net.nic import NIC, Message
from repro.net.node import Node
from repro.net.params import NetworkParams

__all__ = [
    "Cluster",
    "Fabric",
    "MemoryManager",
    "MemoryRegion",
    "Message",
    "NIC",
    "NetworkParams",
    "Node",
    "RemoteKey",
]
