"""The RDMA-capable NIC: verbs-style interface bound to one node.

Two families of operations:

* **Two-sided** (`send` / `recv`): channel semantics.  The receiver must
  ask for the message; the sending event completes at local send
  completion while delivery lands in the receiver's per-tag queue at
  arrival time.  Two-sided protocols additionally pay *host CPU* when
  the upper layer models it (see :mod:`repro.transport.tcpsock`).

* **One-sided** (`rdma_read` / `rdma_write` / `cas` / `faa`): memory
  semantics.  The remote host CPU is never involved — the simulated HCA
  walks the protection table and touches remote memory directly, which is
  precisely the property the paper's services exploit.

Bulk payloads can be *padded*: a directory entry of 24 real bytes that
represents an 8 KB page transfer passes ``wire_bytes=8192`` so timing
reflects the full page while only the meaningful bytes are stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.errors import BoundsError, ConfigError, FaultError, RdmaError
from repro.sim import Environment, Event, Store
from repro.sim.core import _PENDING

from repro.net.memory import RemoteKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.net.node import Node

__all__ = ["Message", "NIC"]


@dataclass(slots=True)
class Message:
    """A delivered two-sided message.

    ``mid`` is unique per :class:`~repro.sim.Environment` (drawn from the
    environment's own id stream, so two simulations in one process never
    share a counter).  A duplicated delivery reuses the same ``mid``,
    which is what receiver-side dedup keys on.

    Slotted: messages are the highest-volume allocation in two-sided
    workloads, and slots cut both the per-instance dict and ~40% of the
    allocation cost.
    """

    src: int
    dst: int
    tag: Any
    payload: Any
    size: int
    sent_at: float
    arrived_at: float = 0.0
    mid: int = 0


#: fast-verb op codes — int compares on the hot stages instead of
#: string compares, and compact storage in the slot pool.
_OP_READ = 0
_OP_WRITE = 1
_OP_CAS = 2
_OP_FAA = 3


class NIC:
    """Verbs interface of one node."""

    def __init__(self, env: Environment, node: "Node", fabric: "Fabric"):
        self.env = env
        self.node = node
        self.fabric = fabric
        self.params = fabric.params
        self._recv_queues: Dict[Any, Store] = {}
        # cached observability handles (see Fabric._obs_transfer)
        self._obs_send_cache = None
        # counters (exposed for benches / tests)
        self.sends = 0
        self.rdma_reads = 0
        self.rdma_writes = 0
        self.atomics = 0
        # -- fast-verb slot pool ---------------------------------------
        # Hot one-sided verbs keep their state in parallel lists indexed
        # by an int slot id instead of a per-verb object: no allocation
        # on the post path beyond the completion Event, and the stage
        # continuations are per-slot ``functools.partial``s minted once
        # and recycled with the slot (a bound method would be allocated
        # at every ``self._stage`` access).  Slots are recycled through
        # ``_vfree``; a slot is freed at its last array access, before
        # the completion event is scheduled.
        self._vfree: list = []
        self._vdst: list = []
        self._vop: list = []
        self._vaddr: list = []
        self._vrkey: list = []
        self._va: list = []
        self._vb: list = []
        self._vwire: list = []
        self._vdone: list = []
        self._vposted: list = []
        self._varrived: list = []
        self._vserve: list = []
        self._vcomplete: list = []

    # ------------------------------------------------------------------
    # two-sided channel semantics
    # ------------------------------------------------------------------
    def _queue(self, tag: Any) -> Store:
        q = self._recv_queues.get(tag)
        if q is None:
            q = Store(self.env)
            self._recv_queues[tag] = q
        return q

    def send(self, dst_id: int, payload: Any = None, size: int = 0,
             tag: Any = 0) -> Event:
        """Post a send; the returned event fires at *local* completion.

        The message is enqueued at the destination when it arrives on the
        wire (header + ``size`` payload bytes).
        """
        if size < 0:
            raise ConfigError("negative message size")
        self.sends += 1
        msg = Message(src=self.node.id, dst=dst_id, tag=tag,
                      payload=payload, size=size, sent_at=self.env.now,
                      mid=self.env.next_id("msg"))
        self._obs_send(msg)
        wire = self.fabric.transfer(
            self.node.id, dst_id, size + self.params.header_bytes)
        dst_nic = self.fabric.node(dst_id).nic

        def deliver(_ev):
            if not _ev.ok:
                return  # wire failure: message lost
            copies = self._delivery_copies(msg)
            self._obs_delivery(msg, copies)
            if copies == 0:
                return
            msg.arrived_at = self.env.now
            for _ in range(copies):
                dst_nic._queue(tag).try_put(msg)

        wire.add_callback(deliver)
        # Local send completion: posting cost only (fire-and-forget).
        return self.env.timeout(self.params.post_us)

    def send_wait(self, dst_id: int, payload: Any = None, size: int = 0,
                  tag: Any = 0) -> Event:
        """Like :meth:`send` but the event fires on *arrival* at dst."""
        if size < 0:
            raise ConfigError("negative message size")
        self.sends += 1
        msg = Message(src=self.node.id, dst=dst_id, tag=tag,
                      payload=payload, size=size, sent_at=self.env.now,
                      mid=self.env.next_id("msg"))
        self._obs_send(msg)
        done = self.env.event()
        wire = self.fabric.transfer(
            self.node.id, dst_id, size + self.params.header_bytes)
        dst_nic = self.fabric.node(dst_id).nic

        def deliver(_ev):
            if not _ev.ok:
                done.fail(_ev._value)
                return
            copies = self._delivery_copies(msg)
            self._obs_delivery(msg, copies)
            if copies == 0:
                # acked delivery: a dropped message surfaces to the sender
                done.fail(FaultError(
                    f"message {msg.mid} to node {dst_id} dropped"))
                return
            msg.arrived_at = self.env.now
            for _ in range(copies):
                dst_nic._queue(tag).try_put(msg)
            done.succeed(msg)

        wire.add_callback(deliver)
        return done

    def send_multicast(self, dst_ids, payload: Any = None, size: int = 0,
                       tag: Any = 0) -> Event:
        """Hardware multicast: one injection delivers to every member.

        The returned event fires when the message has been enqueued at
        all destinations.  Compared with a unicast loop, the sender's
        egress link is held only once (see :meth:`Fabric.multicast`).
        """
        if size < 0:
            raise ConfigError("negative message size")
        dst_ids = list(dst_ids)
        self.sends += 1
        sent_at = self.env.now
        wire = self.fabric.multicast(self.node.id, dst_ids,
                                     size + self.params.header_bytes)
        done = self.env.event()

        def deliver(_ev):
            if not _ev.ok:
                done.fail(_ev._value)
                return
            for dst in dst_ids:
                msg = Message(src=self.node.id, dst=dst, tag=tag,
                              payload=payload, size=size,
                              sent_at=sent_at, arrived_at=self.env.now,
                              mid=self.env.next_id("msg"))
                copies = self._delivery_copies(msg)
                self._obs_delivery(msg, copies)
                for _ in range(copies):
                    self.fabric.node(dst).nic._queue(tag).try_put(msg)
            done.succeed()

        wire.add_callback(deliver)
        return done

    def _delivery_copies(self, msg: Message) -> int:
        """Fault hook: how many copies of ``msg`` land at the receiver."""
        injector = self.fabric.injector
        if injector is None:
            return 1
        return injector.message_fate(msg.src, msg.dst)

    def _obs_send(self, msg: Message) -> None:
        """Observability hook: a send was posted."""
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("msg.send", node=msg.src, dst=msg.dst,
                           size=msg.size, mid=msg.mid)
            cache = self._obs_send_cache
            if cache is None or cache[0] is not obs:
                cache = self._obs_send_cache = (
                    obs, obs.metrics.counter("nic.sends", node=self.node.id))
            cache[1].inc()

    def _obs_delivery(self, msg: Message, copies: int) -> None:
        """Observability hook: delivery outcome at the receiver."""
        obs = self.env.obs
        if obs is None:
            return
        if copies == 0:
            obs.trace.emit("msg.drop", node=msg.dst, src=msg.src,
                           mid=msg.mid)
        else:
            obs.trace.emit("msg.deliver", node=msg.dst, src=msg.src,
                           mid=msg.mid)
            if copies > 1:
                obs.trace.emit("msg.dup", node=msg.dst, src=msg.src,
                               mid=msg.mid)

    def recv(self, tag: Any = 0) -> Event:
        """Wait for the next message with ``tag``; value is a Message."""
        return self._queue(tag).get()

    def try_recv(self, tag: Any = 0):
        """Non-blocking receive; returns ``(ok, message_or_None)``.

        Probing a tag that never received a message does not create its
        queue — polling loops over sparse tag spaces stay allocation-free.
        """
        q = self._recv_queues.get(tag)
        if q is None:
            return False, None
        return q.try_get()

    def pending(self, tag: Any = 0) -> int:
        q = self._recv_queues.get(tag)
        return 0 if q is None else len(q)

    # ------------------------------------------------------------------
    # one-sided memory semantics — fast-path slot-pool driver
    # ------------------------------------------------------------------
    # Callback-chain twin of ``_read_proc`` / ``_write_proc`` /
    # ``_atomic_proc``: no generator, no Process, no per-stage Event.
    # An uncontended verb costs exactly three agenda entries — *posted*
    # (reserve the egress link, schedule the remote service instant),
    # *serve* (touch remote memory, reserve the return link), and the
    # completion event itself, scheduled directly at the response's
    # arrival instant via ``Fabric.fast_send``.  Each instant is
    # computed with the same float association order the generator
    # version's chained Timeouts would produce, so fast and
    # ``REPRO_SLOW_KERNEL=1`` runs stay equivalent.  A contended link
    # drops that leg back onto the generator transfer process
    # (``Fabric.send_process``) without losing the chain.  Only valid
    # when ``env.fastpath`` is on and no fault injector is installed
    # (no failure branches exist then, apart from memory-protection
    # errors which propagate with process-crash semantics).

    def _verb_slot(self) -> int:
        free = self._vfree
        if free:
            return free.pop()
        s = len(self._vdst)
        self._vdst.append(0)
        self._vop.append(0)
        self._vaddr.append(0)
        self._vrkey.append(0)
        self._va.append(None)
        self._vb.append(None)
        self._vwire.append(0)
        self._vdone.append(None)
        self._vposted.append(partial(NIC._verb_posted, self, s))
        self._varrived.append(partial(NIC._verb_arrived, self, s))
        self._vserve.append(partial(NIC._verb_serve, self, s))
        self._vcomplete.append(partial(NIC._verb_complete, self, s))
        return s

    def _post_verb(self, dst: int, op: int, addr: int, rkey: int,
                   a, b, wire: int) -> Event:
        env = self.env
        # Flattened Event construction (the only allocation left on the
        # post path) — semantically ``Event(env)``.
        done = Event.__new__(Event)
        done.env = env
        done.callbacks = []
        done._value = _PENDING
        done._ok = True
        s = self._verb_slot()
        self._vdst[s] = dst
        self._vop[s] = op
        self._vaddr[s] = addr
        self._vrkey[s] = rkey
        self._va[s] = a
        self._vb[s] = b
        self._vwire[s] = wire
        self._vdone[s] = done
        env._schedule_call(env._now + self.params.post_us,
                           self._vposted[s])
        return done

    def _free_verb(self, s: int) -> Event:
        """Release slot ``s``; returns its completion event.  Clears the
        payload/value cells so recycled slots don't pin old objects."""
        done = self._vdone[s]
        self._vdone[s] = None
        self._va[s] = None
        self._vb[s] = None
        self._vfree.append(s)
        return done

    def _verb_posted(self, s: int) -> None:
        fabric = self.fabric
        dst = self._vdst[s]
        if dst not in fabric._nodes:
            # Same failure instant and semantics as the slow path, where
            # Fabric.transfer raises inside the verb process.
            self._fail_verb(self._free_verb(s), ConfigError(
                f"transfer between unknown nodes "
                f"{self.node.id}->{dst}"))
            return
        p = self.params
        op = self._vop[s]
        if op == _OP_WRITE:
            nbytes = self._vwire[s] + p.header_bytes
        else:
            nbytes = p.header_bytes
        t = fabric.fast_send(self.node.id, dst, nbytes)
        if t < 0.0:
            fabric.send_process(self.node.id, dst, nbytes,
                                self._varrived[s])
            return
        # Fold the NIC turnaround / atomic-unit delay into the same
        # entry: the slow path schedules it from the arrival instant, so
        # ``t + delay`` is the identical float.
        if op == _OP_READ:
            t += p.rdma_turnaround_us
        elif op != _OP_WRITE:  # writes land on arrival; no turnaround
            t += p.atomic_exec_us
        self.env._schedule_call(t, self._vserve[s])

    def _verb_arrived(self, s: int) -> None:
        # Contended-request continuation: apply the turnaround from the
        # actual arrival instant, exactly like the generator's Timeout.
        op = self._vop[s]
        if op == _OP_WRITE:
            self._verb_serve(s)
            return
        env = self.env
        delay = (self.params.rdma_turnaround_us if op == _OP_READ
                 else self.params.atomic_exec_us)
        env._schedule_call(env._now + delay, self._vserve[s])

    def _verb_serve(self, s: int) -> None:
        fabric = self.fabric
        dst = self._vdst[s]
        mem = fabric._nodes[dst].memory
        op = self._vop[s]
        addr = self._vaddr[s]
        rkey = self._vrkey[s]
        try:
            if op == _OP_CAS:
                value = mem.cas64(addr, rkey, self._va[s], self._vb[s])
            elif op == _OP_FAA:
                value = mem.faa64(addr, rkey, self._va[s])
            elif op == _OP_READ:
                value = mem.rdma_read(addr, rkey, self._va[s])
            else:
                mem.rdma_write(addr, rkey, self._va[s])
                value = None
        except BaseException as exc:
            self._fail_verb(self._free_verb(s), exc)
            return
        p = self.params
        nbytes = (self._vwire[s] + p.header_bytes if op == _OP_READ
                  else p.header_bytes)
        t = fabric.fast_send(dst, self.node.id, nbytes)
        if t < 0.0:
            self._va[s] = value  # carried to _verb_complete
            fabric.send_process(dst, self.node.id, nbytes,
                                self._vcomplete[s])
            return
        # Last slot access: free before scheduling the completion (the
        # event rides the agenda entry, not the slot).
        done = self._free_verb(s)
        self.env._schedule_at(t, done, value=value)

    def _verb_complete(self, s: int) -> None:
        value = self._va[s]
        self._free_verb(s).succeed(value)

    def rdma_read(self, dst_id: int, addr: int, rkey: int, length: int,
                  wire_bytes: Optional[int] = None) -> Event:
        """Read ``length`` bytes of remote memory; value is `bytes`.

        ``wire_bytes`` (>= length) inflates the timed response size for
        padded bulk transfers.
        """
        self._need_rdma()
        self.rdma_reads += 1
        wire = length if wire_bytes is None else wire_bytes
        if wire < length:
            raise ConfigError("wire_bytes smaller than read length")
        if self.env.fastpath and self.fabric.injector is None:
            ev = self._post_verb(dst_id, _OP_READ, addr, rkey,
                                 length, None, wire)
        else:
            ev = self.env.process(
                self._read_proc(dst_id, addr, rkey, length, wire),
                name=f"rdma-read@{self.node.id}")
        obs = self.env.obs
        if obs is not None:
            obs.verb(self, "read", dst_id, wire, ev)
        return ev


    def _read_proc(self, dst_id, addr, rkey, length, wire):
        p = self.params
        self._check_verb_fault(dst_id)
        yield self.env.timeout(p.post_us)
        # request descriptor to target
        yield self.fabric.transfer(self.node.id, dst_id, p.header_bytes)
        yield self.env.timeout(p.rdma_turnaround_us)
        data = self.fabric.node(dst_id).memory.rdma_read(addr, rkey, length)
        # response carrying the data
        yield self.fabric.transfer(dst_id, self.node.id,
                                   wire + p.header_bytes)
        return data

    def rdma_write(self, dst_id: int, addr: int, rkey: int, data: bytes,
                   wire_bytes: Optional[int] = None) -> Event:
        """Write ``data`` into remote memory; event fires on remote ack."""
        self._need_rdma()
        self.rdma_writes += 1
        wire = len(data) if wire_bytes is None else wire_bytes
        if wire < len(data):
            raise ConfigError("wire_bytes smaller than payload")
        if type(data) is not bytes:
            # Immutable callers (the common case) skip the defensive copy.
            data = bytes(data)
        if self.env.fastpath and self.fabric.injector is None:
            ev = self._post_verb(dst_id, _OP_WRITE, addr, rkey,
                                 data, None, wire)
        else:
            ev = self.env.process(
                self._write_proc(dst_id, addr, rkey, data, wire),
                name=f"rdma-write@{self.node.id}")
        obs = self.env.obs
        if obs is not None:
            obs.verb(self, "write", dst_id, wire, ev)
        return ev


    def _write_proc(self, dst_id, addr, rkey, data, wire):
        p = self.params
        self._check_verb_fault(dst_id)
        yield self.env.timeout(p.post_us)
        yield self.fabric.transfer(self.node.id, dst_id,
                                   wire + p.header_bytes)
        self.fabric.node(dst_id).memory.rdma_write(addr, rkey, data)
        # hardware ack back to the initiator
        yield self.fabric.transfer(dst_id, self.node.id, p.header_bytes)
        return None

    def cas(self, dst_id: int, addr: int, rkey: int,
            compare: int, swap: int) -> Event:
        """Remote compare-and-swap on a 64-bit word; value = old word."""
        self._need_rdma()
        self.atomics += 1
        if self.env.fastpath and self.fabric.injector is None:
            ev = self._post_verb(dst_id, _OP_CAS, addr, rkey,
                                 compare, swap, 8)
        else:
            ev = self.env.process(
                self._atomic_proc(dst_id, addr, rkey, "cas", compare, swap),
                name=f"cas@{self.node.id}")
        obs = self.env.obs
        if obs is not None:
            obs.verb(self, "cas", dst_id, 8, ev)
        return ev

    def faa(self, dst_id: int, addr: int, rkey: int, add: int) -> Event:
        """Remote fetch-and-add on a 64-bit word; value = old word."""
        self._need_rdma()
        self.atomics += 1
        if self.env.fastpath and self.fabric.injector is None:
            ev = self._post_verb(dst_id, _OP_FAA, addr, rkey,
                                 add, 0, 8)
        else:
            ev = self.env.process(
                self._atomic_proc(dst_id, addr, rkey, "faa", add, 0),
                name=f"faa@{self.node.id}")
        obs = self.env.obs
        if obs is not None:
            obs.verb(self, "faa", dst_id, 8, ev)
        return ev

    def _fail_verb(self, done: Event, exc: BaseException) -> None:
        """Fail a fast-path verb with process-crash semantics: the event
        fails (callers that yielded it get the exception thrown in) and,
        exactly like an unwatched Process, the crash re-raises when only
        passive observability probes are attached."""
        done._ok = False
        done._value = exc
        self.env._queue_event(done)
        if all(getattr(cb, "_obs_passive", False) for cb in done.callbacks):
            raise exc

    def _atomic_proc(self, dst_id, addr, rkey, op, a, b):
        p = self.params
        self._check_verb_fault(dst_id)
        yield self.env.timeout(p.post_us)
        yield self.fabric.transfer(self.node.id, dst_id, p.header_bytes)
        yield self.env.timeout(p.atomic_exec_us)
        mem = self.fabric.node(dst_id).memory
        if op == "cas":
            old = mem.cas64(addr, rkey, a, b)
        else:
            old = mem.faa64(addr, rkey, a)
        yield self.fabric.transfer(dst_id, self.node.id, p.header_bytes)
        return old

    # -- convenience over RemoteKey ----------------------------------------
    # The bounds checks are ``RemoteKey.slice`` inlined (same error
    # messages) without minting the intermediate RemoteKey — these
    # helpers are the hottest call sites in key-addressed workloads.
    def read_key(self, key: RemoteKey, offset: int = 0,
                 length: Optional[int] = None,
                 wire_bytes: Optional[int] = None) -> Event:
        if offset < 0 or offset > key.length:
            raise BoundsError(f"slice offset {offset} outside window")
        if length is None:
            length = key.length - offset
        elif length < 0 or offset + length > key.length:
            raise BoundsError("slice extends past window")
        return self.rdma_read(key.node, key.addr + offset, key.rkey,
                              length, wire_bytes=wire_bytes)

    def write_key(self, key: RemoteKey, data: bytes, offset: int = 0,
                  wire_bytes: Optional[int] = None) -> Event:
        if offset < 0 or offset > key.length:
            raise BoundsError(f"slice offset {offset} outside window")
        if offset + len(data) > key.length:
            raise BoundsError("slice extends past window")
        return self.rdma_write(key.node, key.addr + offset, key.rkey,
                               data, wire_bytes=wire_bytes)

    def cas_key(self, key: RemoteKey, offset: int,
                compare: int, swap: int) -> Event:
        if offset < 0 or offset > key.length:
            raise BoundsError(f"slice offset {offset} outside window")
        if offset + 8 > key.length:
            raise BoundsError("slice extends past window")
        return self.cas(key.node, key.addr + offset, key.rkey,
                        compare, swap)

    def faa_key(self, key: RemoteKey, offset: int, add: int) -> Event:
        if offset < 0 or offset > key.length:
            raise BoundsError(f"slice offset {offset} outside window")
        if offset + 8 > key.length:
            raise BoundsError("slice extends past window")
        return self.faa(key.node, key.addr + offset, key.rkey, add)

    def _need_rdma(self) -> None:
        if not self.params.has_rdma:
            raise RdmaError(
                f"interconnect {self.params.name!r} has no RDMA support")

    def _check_verb_fault(self, dst_id: int) -> None:
        """Fault hook: raises RdmaError inside an injected failure window."""
        injector = self.fabric.injector
        if injector is not None:
            injector.verb_fault(self.node.id, dst_id)
