"""The switched fabric: moves bytes between nodes with realistic timing.

A transfer from node A to node B costs::

    nic_tx  +  egress-link hold (serialization)  +  wire latency  +  nic_rx

The per-node egress link is a FIFO resource, so concurrent large
transfers from the same node queue behind each other — this is what makes
bandwidth a shared, contended quantity (needed for the cooperative-cache
and flow-control experiments).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import ConfigError
from repro.sim import Environment, Event, Resource

from repro.net.params import NetworkParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.net.node import Node

__all__ = ["Fabric"]


class Fabric:
    """Connects nodes; accounts latency, serialization and contention."""

    def __init__(self, env: Environment, params: NetworkParams):
        self.env = env
        self.params = params
        self._nodes: Dict[int, "Node"] = {}
        self._egress: Dict[int, Resource] = {}
        #: per-node count of slow-path transfers past ``nic_tx`` but not
        #: yet holding the egress link.  While non-zero the analytic
        #: shortcut must stand down, otherwise a later transfer could
        #: reserve the link ahead of an earlier in-flight one and break
        #: fast/slow equivalence (DESIGN.md §9).
        self._pre_acquire: Dict[int, int] = {}
        #: cached observability counter handles, invalidated when the
        #: installed Observability changes (string-keyed registry
        #: lookups are too hot to repeat per transfer).
        self._obs_cache: Optional[tuple] = None
        self.bytes_moved = 0
        self.transfers = 0
        #: installed by :class:`repro.faults.FaultInjector`; None in
        #: fault-free runs, in which case every hook below is skipped.
        self.injector: Optional["FaultInjector"] = None

    # -- topology ---------------------------------------------------------
    def attach(self, node: "Node") -> None:
        if node.id in self._nodes:
            raise ConfigError(f"node id {node.id} already attached")
        self._nodes[node.id] = node
        self._egress[node.id] = Resource(self.env, capacity=1)
        self._pre_acquire[node.id] = 0

    def node(self, node_id: int) -> "Node":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigError(f"unknown node id {node_id}") from None

    @property
    def node_ids(self):
        return tuple(self._nodes)

    # -- data movement ------------------------------------------------------
    def transfer(self, src_id: int, dst_id: int, nbytes: int) -> Event:
        """Move ``nbytes`` from src to dst; event fires on arrival at dst.

        Same-node transfers cost only the local loopback latency.
        """
        if src_id not in self._nodes or dst_id not in self._nodes:
            raise ConfigError(f"transfer between unknown nodes "
                              f"{src_id}->{dst_id}")
        if nbytes < 0:
            raise ConfigError("cannot transfer negative bytes")
        if self.injector is not None:
            fail = self.injector.transfer_fault(src_id, dst_id)
            if fail is not None:
                return fail  # refused transfers move no bytes
        self.transfers += 1
        self.bytes_moved += nbytes
        obs = self.env.obs
        if obs is not None:
            self._obs_transfer(obs, nbytes)
        if src_id == dst_id:
            done = self.env.timeout(self.params.local_op_us)
        else:
            if self.env.fastpath and self.injector is None:
                arrive_at = self._fast_arrival(src_id, nbytes)
                if arrive_at >= 0.0:
                    done = Event(self.env)
                    self.env._schedule_at(arrive_at, done, value=None)
                    return done
            self._pre_acquire[src_id] += 1
            done = self.env.process(
                self._transfer_proc(src_id, dst_id, nbytes),
                name=f"xfer-{src_id}->{dst_id}",
            )
        if self.injector is not None:
            # a crash at either end while the payload is in flight must
            # fail this completion, not deliver into the new incarnation
            return self.injector.fence_completion(src_id, dst_id, done)
        return done

    def _fast_arrival(self, src_id: int, nbytes: int) -> float:
        """Reserve ``src``'s egress link for the serialization window and
        return the absolute arrival instant, or -1.0 when contended.

        The whole 4-yield transfer process collapses into a single
        scheduled instant: the link reservation expires at exactly
        ``(now + nic_tx) + serialization`` — when the slow path's
        ``release()`` would run — so transfers arriving meanwhile queue
        identically (:meth:`Resource.try_reserve`).  The additions keep
        the slow path's association order: it computes
        ``(now + nic_tx) + serialization`` across two Timeouts, and
        float addition is not associative — byte-identical equivalence
        requires the same order.
        """
        if self._pre_acquire[src_id] != 0:
            return -1.0
        env = self.env
        p = self.params
        released_at = (env._now + p.nic_tx_us) + p.serialization_us(nbytes)
        if not self._egress[src_id].try_reserve(released_at):
            return -1.0
        return released_at + (p.wire_latency_us + p.nic_rx_us)

    def fast_send(self, src_id: int, dst_id: int, nbytes: int) -> float:
        """Event-free transfer for the NIC verb fast path.

        Returns the absolute time the payload lands at ``dst_id`` (the
        caller schedules its own continuation there), or -1.0 when the
        egress link is contended — then nothing was counted and the
        caller must fall back to :meth:`send_process`.  Callers
        guarantee ``env.fastpath`` is on, the injector is absent and
        both node ids are valid — the verb layer checked already.
        """
        env = self.env
        if src_id == dst_id:
            arrive_at = env._now + self.params.local_op_us
        else:
            # _fast_arrival with Resource.try_reserve and
            # serialization_us unrolled in place: this runs twice per
            # one-sided verb (request + response leg), so the three
            # method calls it saves are measurable at bench scale.
            # Same float association order as the slow path (see
            # _fast_arrival's docstring).
            if self._pre_acquire[src_id] != 0:
                return -1.0
            p = self.params
            released_at = (env._now + p.nic_tx_us) + nbytes / p.bandwidth_bpus
            link = self._egress[src_id]
            if (link._reserved_until >= env._now
                    or link._in_use >= link.capacity or link._waiters):
                return -1.0
            link._reserved_until = released_at
            arrive_at = released_at + (p.wire_latency_us + p.nic_rx_us)
        self.transfers += 1
        self.bytes_moved += nbytes
        obs = env.obs
        if obs is not None:
            self._obs_transfer(obs, nbytes)
        return arrive_at

    def send_process(self, src_id: int, dst_id: int, nbytes: int,
                     arrive) -> None:
        """Contended fallback for :meth:`fast_send`: a generator
        transfer with ``arrive()`` called at the arrival instant."""
        self.transfers += 1
        self.bytes_moved += nbytes
        obs = self.env.obs
        if obs is not None:
            self._obs_transfer(obs, nbytes)
        self._pre_acquire[src_id] += 1
        ev = self.env.process(self._transfer_proc(src_id, dst_id, nbytes),
                              name=f"xfer-{src_id}->{dst_id}")
        ev.callbacks.append(lambda _e: arrive())

    def _obs_transfer(self, obs, nbytes: int) -> None:
        cache = self._obs_cache
        if cache is None or cache[0] is not obs:
            m = obs.metrics
            cache = self._obs_cache = (
                obs, m.counter("fabric.transfers"), m.counter("fabric.bytes"))
        cache[1].inc()
        cache[2].inc(nbytes)

    def _transfer_proc(self, src_id: int, dst_id: Optional[int],
                       nbytes: int):
        p = self.params
        factor = (self.injector.link_factor(src_id, dst_id)
                  if self.injector is not None else 1.0)
        yield self.env.timeout(p.nic_tx_us)
        link = self._egress[src_id]
        grant = link.acquire()
        self._pre_acquire[src_id] -= 1
        yield grant
        try:
            yield self.env.timeout(p.serialization_us(nbytes) * factor)
        finally:
            link.release()
        yield self.env.timeout(p.wire_latency_us * factor + p.nic_rx_us)

    def multicast(self, src_id: int, dst_ids, nbytes: int) -> Event:
        """Hardware-style multicast: one injection, switch replication.

        The sender serializes the payload onto its egress link exactly
        once; the switch fans it out, so every destination receives at
        (send + wire + rx) regardless of group size — unlike a
        sender-side loop of unicasts.  The event fires when the payload
        has landed at every destination.

        This implements the "Multicast" box the paper's Figure 1 defers
        to future work (IB hardware multicast exists; we model it).
        """
        dst_ids = list(dst_ids)
        if not dst_ids:
            raise ConfigError("multicast needs at least one destination")
        if src_id not in self._nodes:
            raise ConfigError(f"unknown multicast source {src_id}")
        for dst in dst_ids:
            if dst not in self._nodes:
                raise ConfigError(f"unknown multicast destination {dst}")
        if nbytes < 0:
            raise ConfigError("cannot transfer negative bytes")
        if self.injector is not None:
            fail = self.injector.transfer_fault(src_id, None)
            if fail is not None:
                return fail
        self.transfers += 1
        self.bytes_moved += nbytes  # injected once, replicated in-switch
        obs = self.env.obs
        if obs is not None:
            self._obs_transfer(obs, nbytes)
        if self.env.fastpath and self.injector is None:
            arrive_at = self._fast_arrival(src_id, nbytes)
            if arrive_at >= 0.0:
                done = Event(self.env)
                self.env._schedule_at(arrive_at, done, value=None)
                return done
        self._pre_acquire[src_id] += 1
        done = self.env.process(self._transfer_proc(src_id, None, nbytes),
                                name=f"mcast-{src_id}")
        if self.injector is not None:
            return self.injector.fence_completion(src_id, None, done)
        return done

    def egress_queue_len(self, node_id: int) -> int:
        """Transfers waiting on the node's egress link (for diagnostics)."""
        return self._egress[node_id].queue_len
