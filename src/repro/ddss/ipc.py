"""IPC management: many processes on one node share one DDSS client.

The real DDSS runs a per-node daemon; co-located application processes
reach it over local IPC.  :class:`IpcPortal` models that: each attached
handle forwards operations through the portal, paying a small IPC hop and
serializing on the daemon (one outstanding control interaction at a time,
data operations proceed concurrently once issued).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import DDSSError
from repro.sim import Event, Resource

from repro.ddss.client import DDSSClient

__all__ = ["IpcPortal", "IpcHandle"]

#: one-way cost of the node-local IPC hop (µs)
IPC_HOP_US = 0.5


class IpcHandle:
    """One attached process's view of the shared substrate client."""

    def __init__(self, portal: "IpcPortal", name: str):
        self.portal = portal
        self.name = name
        self.env = portal.client.env
        self.ops = 0

    def __getattr__(self, op):
        client = self.portal.client
        target = getattr(client, op)
        if op not in ("allocate", "free", "lookup", "put", "get",
                      "get_version", "acquire", "release"):
            return target

        def forwarded(*args, **kwargs) -> Event:
            self.ops += 1
            return self.env.process(self._via_ipc(target, args, kwargs),
                                    name=f"ipc-{op}@{self.name}")

        return forwarded

    def _via_ipc(self, target, args, kwargs):
        # request hop into the daemon, serialized on the portal
        yield self.portal._gate.acquire()
        try:
            yield self.env.timeout(IPC_HOP_US)
        finally:
            self.portal._gate.release()
        result = yield target(*args, **kwargs)
        # response hop back to the calling process
        yield self.env.timeout(IPC_HOP_US)
        return result


class IpcPortal:
    """Per-node multiplexer in front of a :class:`DDSSClient`."""

    def __init__(self, client: DDSSClient):
        self.client = client
        self._gate = Resource(client.env, capacity=1)
        self._handles: Dict[str, IpcHandle] = {}

    def attach(self, name: str) -> IpcHandle:
        if name in self._handles:
            raise DDSSError(f"process {name!r} already attached")
        handle = IpcHandle(self, name)
        self._handles[name] = handle
        return handle

    def detach(self, name: str) -> None:
        if name not in self._handles:
            raise DDSSError(f"process {name!r} not attached")
        del self._handles[name]

    @property
    def attached(self) -> int:
        return len(self._handles)
