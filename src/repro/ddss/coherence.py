"""Coherence models supported by DDSS (paper §4.1 / Fig. 3a).

Each model trades coherence strength for ``get``/``put`` cost:

=========  ==============================================================
Model      Contract
=========  ==============================================================
NULL       No maintenance.  ``put`` writes home memory, ``get`` reads it;
           concurrent accesses may interleave arbitrarily.
READ       Read coherence: a ``get`` observes an atomic snapshot of the
           (version, data) pair written by the most recent complete
           ``put``.
WRITE      Write coherence: ``put``\\ s are serialized through the unit's
           lock; ``get`` is lock-free.
STRICT     Strict coherence: both ``get`` and ``put`` take the unit lock,
           so a reader can never observe a concurrent writer.
VERSION    Versioned writes: every ``put`` atomically bumps the version
           counter (fetch-and-add) before publishing data; readers can
           detect missed updates.
DELTA      Bounded staleness in versions: a reader may serve its locally
           cached copy as long as it is at most ``delta`` versions behind
           the home copy (checked with a cheap 8-byte version read).
TEMPORAL   Bounded staleness in time: the locally cached copy is valid
           for ``ttl_us`` microseconds with **zero** network traffic.
=========  ==============================================================
"""

from __future__ import annotations

import enum

__all__ = ["Coherence"]


class Coherence(enum.Enum):
    NULL = "null"
    READ = "read"
    WRITE = "write"
    STRICT = "strict"
    VERSION = "version"
    DELTA = "delta"
    TEMPORAL = "temporal"

    @property
    def locks_writes(self) -> bool:
        return self in (Coherence.WRITE, Coherence.STRICT)

    @property
    def locks_reads(self) -> bool:
        return self is Coherence.STRICT

    @property
    def versioned(self) -> bool:
        return self in (Coherence.VERSION, Coherence.DELTA)

    @property
    def cacheable(self) -> bool:
        """Models under which a client may serve a locally cached copy."""
        return self in (Coherence.DELTA, Coherence.TEMPORAL)
