"""First-fit free-list allocator for a node's contributed DDSS segment.

Offsets handed out here are *real* offsets into the node's registered
memory region, so a remote ``get`` after ``allocate``+``put`` reads
exactly the bytes that were stored.  The free list coalesces adjacent
blocks on :meth:`free`, and every block is aligned to 8 bytes so version
and lock words can be targeted by remote atomics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import AllocationError

__all__ = ["SegmentAllocator"]

_ALIGN = 8


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class SegmentAllocator:
    """Manages ``[0, capacity)`` of one segment."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise AllocationError("segment capacity must be positive")
        self.capacity = capacity
        #: sorted list of (offset, length) free blocks
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        #: live allocations: offset -> length
        self._live: Dict[int, int] = {}

    # -- queries -----------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    @property
    def n_allocations(self) -> int:
        return len(self._live)

    def largest_free_block(self) -> int:
        return max((length for _, length in self._free), default=0)

    # -- operations ----------------------------------------------------------
    def alloc(self, size: int) -> int:
        """First-fit allocation; returns the offset.

        Raises :class:`AllocationError` when no block fits.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        need = _aligned(size)
        for i, (offset, length) in enumerate(self._free):
            if length >= need:
                if length == need:
                    del self._free[i]
                else:
                    self._free[i] = (offset + need, length - need)
                self._live[offset] = need
                return offset
        raise AllocationError(
            f"no free block of {need} bytes "
            f"(free={self.free_bytes}, largest={self.largest_free_block()})")

    def free(self, offset: int) -> None:
        """Release the allocation at ``offset`` and coalesce neighbours."""
        length = self._live.pop(offset, None)
        if length is None:
            raise AllocationError(f"free of unallocated offset {offset}")
        # Insert keeping the list sorted, then coalesce with neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, length))
        self._coalesce_around(lo)

    def _coalesce_around(self, i: int) -> None:
        # merge with the next block
        if i + 1 < len(self._free):
            off, length = self._free[i]
            noff, nlen = self._free[i + 1]
            if off + length == noff:
                self._free[i] = (off, length + nlen)
                del self._free[i + 1]
        # merge with the previous block
        if i > 0:
            poff, plen = self._free[i - 1]
            off, length = self._free[i]
            if poff + plen == off:
                self._free[i - 1] = (poff, plen + length)
                del self._free[i]

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        blocks = sorted(self._free) + sorted(self._live.items())
        blocks.sort()
        pos = 0
        for offset, length in blocks:
            assert offset >= pos, "overlapping blocks"
            pos = offset + length
        assert pos <= self.capacity, "block past segment end"
        free_sorted = sorted(self._free)
        assert free_sorted == self._free, "free list not sorted"
        for (o1, l1), (o2, _l2) in zip(free_sorted, free_sorted[1:]):
            assert o1 + l1 < o2, "uncoalesced adjacent free blocks"
