"""DDSS client: coherence-aware ``get``/``put`` over one-sided RDMA.

One client per (node, attachment).  Control operations round-trip to the
daemons; the data path touches the home segment with RDMA reads, writes
and atomics only — the home node's CPU is never involved.

All public operations return simulation events whose value is the
operation result; use them from processes::

    key  = yield client.allocate(128, coherence=Coherence.VERSION)
    yield client.put(key, b"abc")
    data = yield client.get(key)
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, Optional, Tuple, Union

from repro.errors import (CoherenceError, DDSSError, FaultError, RdmaError,
                          StaleHomeError, TxnConflict)
from repro.net.node import Node
from repro.sim import Event

from repro.ddss.coherence import Coherence
from repro.ddss.substrate import (
    DDSS,
    HEADER_BYTES,
    INSTALL_BIT,
    LOCK_OFF,
    TOMBSTONE,
    UnitMeta,
    VERSION_OFF,
    _req_ids,
)

__all__ = ["DDSSClient"]

#: lock spin backoff (µs): initial, multiplier, cap
_BACKOFF = (2.0, 2.0, 50.0)

#: snapshot reads retry past a concurrent install this many times
#: before surfacing TxnConflict
_SNAP_SPINS = 16

#: tombstone chases (stale home -> directory re-resolve) before giving up
_MAX_CHASES = 4


KeyOrMeta = Union[int, UnitMeta]

#: payloads up to this many bytes are traced as full hex (enables prefix
#: matching in the offline oracles); larger ones fall back to a digest
_FP_MAX = 64


def _fingerprint(data: bytes) -> str:
    if len(data) <= _FP_MAX:
        return data.hex()
    return "b2:" + hashlib.blake2b(data, digest_size=16).hexdigest()


class _TombstoneRead(Exception):
    """Internal: a snapshot read found the unit's version tombstoned
    (the unit was rebalanced away); the caller re-resolves and retries."""


class DDSSClient:
    """Per-node handle onto the substrate."""

    def __init__(self, ddss: DDSS, node: Node, via_ipc: bool = False):
        self.ddss = ddss
        self.node = node
        self.env = node.env
        self.via_ipc = via_ipc
        self._meta_cache: Dict[int, UnitMeta] = {}
        #: local copies for DELTA/TEMPORAL: key -> (version, data, at)
        self._data_cache: Dict[int, Tuple[int, bytes, float]] = {}
        #: key -> daemon node id that last served a directory op for it
        #: (goes stale on a shard rebalance; healed by bounce replies)
        self._dir_cache: Dict[int, int] = {}
        #: distinct nonzero token so lock ownership is attributable;
        #: drawn from the environment (not a process global) so the
        #: value — which reaches the trace — is per-run deterministic
        self._token = (node.id << 20) | self.env.next_id("ddss-owner")
        # op counters for benches
        self.gets = 0
        self.puts = 0
        self.cache_hits = 0
        self.failovers = 0  # copies skipped as unreachable (get or put)
        self.stale_retries = 0  # tombstone hits re-resolved via directory

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def allocate(self, size: int, coherence: Coherence = Coherence.NULL,
                 placement: Optional[int] = None, delta: int = 2,
                 ttl_us: float = 1000.0, replicas: int = 0) -> Event:
        """Allocate a shared unit; event value is its integer key.

        ``replicas`` additional copies are placed on distinct members
        (ring order after the primary), enabling put/get failover.
        Locked coherence models cannot be replicated: their lock word
        lives on a single home.
        """
        return self._proc(self._allocate(size, coherence, placement,
                                         delta, ttl_us, replicas),
                          "ddss-alloc")

    def _allocate(self, size, coherence, placement, delta, ttl_us,
                  replicas=0):
        if size <= 0:
            raise DDSSError("allocation size must be positive")
        if replicas < 0:
            raise DDSSError("replica count must be non-negative")
        if replicas and (coherence.locks_writes or coherence.locks_reads):
            raise DDSSError(
                f"{coherence.name} units cannot be replicated: the lock "
                f"word lives on a single home")
        dir_node, new_key = self.ddss.register_target()
        home = self.ddss.data_home(new_key, placement)
        rep_homes = self.ddss.replica_homes(home, replicas)
        reply = yield from self._control(home, {"op": "alloc", "size": size})
        copies = []
        for rep in rep_homes:
            r = yield from self._control(rep, {"op": "alloc", "size": size})
            copies.append((rep, r["addr"], r["rkey"]))
        meta = UnitMeta(key=0, home=home, addr=reply["addr"],
                        rkey=reply["rkey"], size=size, coherence=coherence,
                        delta=delta, ttl_us=ttl_us, replicas=tuple(copies))
        body = {"op": "register", "meta": meta}
        if new_key is not None:
            # sharded directory: the key is pre-assigned so the register
            # can route to its ring owner (and survive a stale map)
            body["key"] = new_key
            reply = yield from self._control_dir(new_key, body)
        else:
            reply = yield from self._control(dir_node, body)
        meta = reply["meta"]
        self._meta_cache[meta.key] = meta
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("ddss.alloc", node=self.node.id, key=meta.key,
                           model=meta.coherence.name, nbytes=meta.size,
                           delta=meta.delta, ttl_us=meta.ttl_us,
                           replicas=len(meta.replicas))
        return meta.key

    def free(self, key: int) -> Event:
        """Release a unit (directory entry + home segment block)."""
        return self._proc(self._free(key), "ddss-free")

    def _free(self, key):
        reply = yield from self._control_dir(
            key, {"op": "unregister", "key": key})
        meta: UnitMeta = reply["meta"]
        yield from self._control(meta.home,
                                 {"op": "free_unit", "addr": meta.addr})
        for rep_home, rep_addr, _rkey in meta.replicas:
            yield from self._control(rep_home,
                                     {"op": "free_unit", "addr": rep_addr})
        self._meta_cache.pop(key, None)
        self._data_cache.pop(key, None)
        self._dir_cache.pop(key, None)
        return None

    def lookup(self, key: int) -> Event:
        """Resolve a key to its UnitMeta (cached after first use)."""
        return self._proc(self._lookup(key), "ddss-lookup")

    def _lookup(self, key):
        meta = self._meta_cache.get(key)
        if meta is None:
            reply = yield from self._control_dir(
                key, {"op": "lookup", "key": key})
            meta = reply["meta"]
            self._meta_cache[key] = meta
        return meta

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def put(self, key: KeyOrMeta, data: bytes) -> Event:
        """Publish ``data`` into the unit under its coherence model."""
        ev = self._proc(self._put(key, data), "ddss-put")
        obs = self.env.obs
        if obs is not None:
            self._obs_latency(obs, "ddss.put_us", ev)
        return ev

    def _put(self, key, data):
        t0 = self.env.now
        meta = yield from self._meta(key)
        if len(data) > meta.size:
            raise DDSSError(
                f"put of {len(data)} bytes into unit of {meta.size}")
        self.puts += 1
        self._obs_op("ddss.put", meta.key)
        yield from self._ipc_hop()
        if meta.replicas:
            version = yield from self._put_replicated(meta, data)
        else:
            version = yield from self._put_primary(meta, data)
        self._obs_data_done("ddss.put.done", meta, t0, version, data)
        return None

    def _put_primary(self, meta: UnitMeta, data: bytes):
        """Single-copy put; returns the committed version (None when the
        model carries no version counter).

        The version-carrying models detect a rebalance here: a
        ``TOMBSTONE`` in the version word means the unit moved (live
        ring rebalance, not just dead-home eviction), so the put
        re-resolves through the directory and retries at the new home.
        """
        nic = self.node.nic
        model = meta.coherence
        if model.locks_writes:
            while True:
                yield from self._spin_lock(meta)
                yield nic.rdma_write(meta.home, meta.data_addr,
                                     meta.rkey, data)
                version = yield from self._read_version(meta)
                if version == TOMBSTONE:
                    # moved under us: the write above landed in the
                    # quarantined block (harmless); redo at the new home
                    yield from self._unlock(meta)
                    meta = yield from self._rehome(meta.key)
                    continue
                yield nic.rdma_write(
                    meta.home, meta.addr + VERSION_OFF, meta.rkey,
                    (version + 1).to_bytes(8, "big"))
                yield from self._unlock(meta)
                return version + 1
        if model.versioned:
            while True:
                # fetch-and-add orders this write among concurrent
                # writers and hands us the new version for free
                old = yield nic.faa(meta.home, meta.addr + VERSION_OFF,
                                    meta.rkey, 1)
                if old == TOMBSTONE:
                    # the faa wrapped the tombstone to 0: restore the
                    # marker for other stale clients, then re-resolve
                    yield nic.cas(meta.home, meta.addr + VERSION_OFF,
                                  meta.rkey, 0, TOMBSTONE)
                    meta = yield from self._rehome(meta.key)
                    continue
                yield nic.rdma_write(meta.home, meta.data_addr,
                                     meta.rkey, data)
                if model.cacheable:  # DELTA: our write is the freshest
                    self._data_cache[meta.key] = (old + 1, bytes(data),
                                                  self.env.now)
                return old + 1
        if model is Coherence.READ:
            # single combined (version, data) write = atomic snapshot
            version = self._next_local_version(meta.key)
            blob = version.to_bytes(8, "big") + data
            yield nic.rdma_write(meta.home, meta.addr + VERSION_OFF,
                                 meta.rkey, blob)
            return version
        # NULL, TEMPORAL
        yield nic.rdma_write(meta.home, meta.data_addr, meta.rkey, data)
        if model is Coherence.TEMPORAL:
            self._data_cache[meta.key] = (0, bytes(data), self.env.now)
        return None

    def get(self, key: KeyOrMeta, length: Optional[int] = None) -> Event:
        """Fetch the unit's data (or its first ``length`` bytes)."""
        ev = self._proc(self._get(key, length), "ddss-get")
        obs = self.env.obs
        if obs is not None:
            self._obs_latency(obs, "ddss.get_us", ev)
        return ev

    def _get(self, key, length):
        t0 = self.env.now
        meta = yield from self._meta(key)
        n = meta.size if length is None else length
        if n > meta.size:
            raise DDSSError(f"get of {n} bytes from unit of {meta.size}")
        self.gets += 1
        self._obs_op("ddss.get", meta.key)
        yield from self._ipc_hop()
        model = meta.coherence

        if model is Coherence.TEMPORAL:
            cached = self._data_cache.get(meta.key)
            if cached is not None and (self.env.now - cached[2]) <= meta.ttl_us:
                self.cache_hits += 1
                self._obs_op("ddss.cache_hit", meta.key)
                data = cached[1][:n]
                self._obs_data_done("ddss.get.done", meta, t0, None, data,
                                    hit=True, age_us=self.env.now - cached[2])
                return data

        while True:
            last_exc = None
            moved = False
            for view in self._views(meta):
                try:
                    data, version, hit, age_us = \
                        yield from self._get_at(view, n)
                except _TombstoneRead:
                    # live rebalance moved the unit: re-resolve and
                    # restart (replicated units are never migrated, so
                    # there is no other copy worth trying first)
                    meta = yield from self._rehome(meta.key)
                    moved = True
                    break
                except (RdmaError, FaultError) as exc:
                    self.failovers += 1
                    last_exc = exc
                    continue
                self._obs_data_done("ddss.get.done", meta, t0, version,
                                    data, hit=hit, age_us=age_us)
                return data
            if moved:
                continue
            raise DDSSError(
                f"unit {meta.key}: no reachable copy "
                f"({1 + len(meta.replicas)} tried)") from last_exc

    def _get_at(self, meta: UnitMeta, n: int):
        """One read attempt against one copy (``meta`` homes the copy).

        Returns ``(data, version, hit, age_us)``; version is ``None``
        when the model carries no version counter on the read path.
        """
        nic = self.node.nic
        model = meta.coherence

        if model is Coherence.DELTA:
            cached = self._data_cache.get(meta.key)
            if cached is not None:
                version = yield from self._read_version(meta)
                if version - cached[0] <= meta.delta:
                    self.cache_hits += 1
                    self._obs_op("ddss.cache_hit", meta.key)
                    return (cached[1][:n], cached[0], True,
                            self.env.now - cached[2])

        if model.locks_reads:
            yield from self._spin_lock(meta)
            data = yield nic.rdma_read(meta.home, meta.data_addr,
                                       meta.rkey, n)
            yield from self._unlock(meta)
            return data, None, False, None

        if model in (Coherence.READ, Coherence.VERSION, Coherence.DELTA):
            # one read covering (version, data): an atomic snapshot
            blob = yield nic.rdma_read(meta.home, meta.addr + VERSION_OFF,
                                       meta.rkey, 8 + n)
            version = int.from_bytes(blob[:8], "big")
            if version == TOMBSTONE:
                raise _TombstoneRead(meta.key)
            data = blob[8:]
            if model.cacheable:
                self._data_cache[meta.key] = (version, bytes(data),
                                              self.env.now)
            return data, version, False, None

        data = yield nic.rdma_read(meta.home, meta.data_addr, meta.rkey, n)
        if model is Coherence.TEMPORAL:
            self._data_cache[meta.key] = (0, bytes(data), self.env.now)
        return data, None, False, None

    @staticmethod
    def _views(meta: UnitMeta):
        """The unit as seen through each copy, primary first."""
        if not meta.replicas:
            return (meta,)
        return tuple(
            replace(meta, home=h, addr=a, rkey=rk, replicas=())
            for h, a, rk in meta.copies)

    def _put_replicated(self, meta: UnitMeta, data: bytes):
        """Write every reachable copy; at least one must succeed.

        The version is ordered by a fetch-and-add on the first live
        copy, then pushed with the data to the remaining copies as one
        snapshot blob.  Copies are ordered per writer; a put that could
        not reach any copy raises :class:`DDSSError`.  Copies on a
        crashed node are *not* reconciled on restart — callers that
        need that must re-put (documented limitation).
        """
        nic = self.node.nic
        model = meta.coherence
        copies = meta.copies
        if model.versioned:
            version = None
            faa_at = None
            for home, addr, rkey in copies:
                try:
                    old = yield nic.faa(home, addr + VERSION_OFF, rkey, 1)
                except (RdmaError, FaultError):
                    self.failovers += 1
                    continue
                version = old + 1
                faa_at = (home, addr, rkey)
                break
            if version is None:
                raise DDSSError(
                    f"unit {meta.key}: no reachable copy to version put")
            wrote = 0
            for home, addr, rkey in copies:
                try:
                    if (home, addr, rkey) == faa_at:
                        yield nic.rdma_write(home, addr + HEADER_BYTES,
                                             rkey, data)
                    else:
                        blob = version.to_bytes(8, "big") + data
                        yield nic.rdma_write(home, addr + VERSION_OFF,
                                             rkey, blob)
                    wrote += 1
                except (RdmaError, FaultError):
                    self.failovers += 1
            if wrote == 0:
                raise DDSSError(
                    f"unit {meta.key}: put reached no copy")
            if model.cacheable:  # DELTA: our write is the freshest copy
                self._data_cache[meta.key] = (version, bytes(data),
                                              self.env.now)
            return version
        wrote = 0
        version = None
        if model is Coherence.READ:
            version = self._next_local_version(meta.key)
            blob = version.to_bytes(8, "big") + data
            for home, addr, rkey in copies:
                try:
                    yield nic.rdma_write(home, addr + VERSION_OFF,
                                         rkey, blob)
                    wrote += 1
                except (RdmaError, FaultError):
                    self.failovers += 1
        else:  # NULL, TEMPORAL
            for home, addr, rkey in copies:
                try:
                    yield nic.rdma_write(home, addr + HEADER_BYTES,
                                         rkey, data)
                    wrote += 1
                except (RdmaError, FaultError):
                    self.failovers += 1
            if model is Coherence.TEMPORAL and wrote:
                self._data_cache[meta.key] = (0, bytes(data), self.env.now)
        if wrote == 0:
            raise DDSSError(f"unit {meta.key}: put reached no copy")
        return version

    def get_version(self, key: KeyOrMeta) -> Event:
        """Read the unit's version counter."""
        return self._proc(self._get_version(key), "ddss-version")

    def _get_version(self, key):
        meta = yield from self._meta(key)
        version = yield from self._read_version(meta)
        return version

    # -- explicit unit locks (DDSS "locking mechanisms" module) ---------
    def acquire(self, key: KeyOrMeta) -> Event:
        """Take the unit's lock (spin with exponential backoff)."""
        return self._proc(self._acquire(key), "ddss-acquire")

    def _acquire(self, key):
        meta = yield from self._meta(key)
        yield from self._spin_lock(meta)
        return None

    def release(self, key: KeyOrMeta) -> Event:
        return self._proc(self._release(key), "ddss-release")

    def _release(self, key):
        meta = yield from self._meta(key)
        yield from self._unlock(meta)
        return None

    # ------------------------------------------------------------------
    # transactional install path (repro.txn)
    # ------------------------------------------------------------------
    # The version word doubles as an install lock: CAS ``v -> v|BUSY``
    # claims the key at snapshot version ``v``; a single combined
    # ``(v+1, data)`` write publishes atomically and releases the busy
    # bit.  A tombstoned word (unit rebalanced away) makes every
    # primitive re-resolve the key through the directory and retry at
    # the new home — an install can never land at a stale location.

    def snapshot(self, key: KeyOrMeta) -> Event:
        """Atomic ``(version, data)`` read; spins past a concurrent
        install (bounded, then :class:`TxnConflict`)."""
        return self._proc(self._snapshot(key), "ddss-snapshot")

    def _snapshot(self, key):
        delay, mult, cap = _BACKOFF
        spins = 0
        meta = yield from self._meta(key)
        while True:
            blob = yield self.node.nic.rdma_read(
                meta.home, meta.addr + VERSION_OFF, meta.rkey,
                8 + meta.size)
            word = int.from_bytes(blob[:8], "big")
            if word == TOMBSTONE:
                meta = yield from self._rehome(meta.key)
                continue
            if word & INSTALL_BIT:
                spins += 1
                if spins > _SNAP_SPINS:
                    raise TxnConflict(
                        f"unit {meta.key}: install in flight "
                        f"({spins} snapshot retries)")
                yield self.env.timeout(delay)
                delay = min(delay * mult, cap)
                continue
            return word, blob[8:]

    def peek_version(self, key: KeyOrMeta) -> Event:
        """Raw version word (may carry ``INSTALL_BIT``); tombstones are
        chased to the unit's current home."""
        return self._proc(self._peek_version(key), "ddss-peek")

    def _peek_version(self, key):
        meta = yield from self._meta(key)
        while True:
            word = yield from self._read_version(meta)
            if word != TOMBSTONE:
                return word
            meta = yield from self._rehome(meta.key)

    def install_lock(self, key: KeyOrMeta, expected: int) -> Event:
        """Claim the key for install at snapshot version ``expected``.

        Raises :class:`TxnConflict` when the version moved (or another
        install holds the word)."""
        return self._proc(self._install_lock(key, expected),
                          "ddss-install-lock")

    def _install_lock(self, key, expected):
        meta = yield from self._meta(key)
        while True:
            old = yield self.node.nic.cas(
                meta.home, meta.addr + VERSION_OFF, meta.rkey,
                expected, expected | INSTALL_BIT)
            if old == expected:
                return None
            if old != TOMBSTONE:
                raise TxnConflict(
                    f"unit {meta.key}: version {old & ~INSTALL_BIT} "
                    f"!= expected {expected}"
                    + (" (install in flight)" if old & INSTALL_BIT
                       else ""))
            meta = yield from self._rehome(meta.key)

    def install_abort(self, key: KeyOrMeta, expected: int) -> Event:
        """Unwind a claimed install: restore ``expected`` into the word."""
        return self._proc(self._install_abort(key, expected),
                          "ddss-install-abort")

    def _install_abort(self, key, expected):
        meta = yield from self._meta(key)
        while True:
            old = yield self.node.nic.cas(
                meta.home, meta.addr + VERSION_OFF, meta.rkey,
                expected | INSTALL_BIT, expected)
            if old == expected | INSTALL_BIT:
                return None
            if old != TOMBSTONE:
                raise CoherenceError(
                    f"unit {meta.key}: install-abort found word "
                    f"{old:#x}, expected busy {expected}")
            meta = yield from self._rehome(meta.key)

    def install_publish(self, key: KeyOrMeta, expected: int,
                        data: bytes) -> Event:
        """Publish ``data`` as version ``expected + 1``; event value is
        the new version.

        Requires the install lock taken by :meth:`install_lock` at
        ``expected``.  One combined ``(version, data)`` write commits
        the bytes and releases the busy bit atomically; the payload is
        zero-padded to the unit size so a snapshot's fingerprint always
        matches the install's.  The substrate never rebalances a busy
        unit, so the write cannot race a tombstone.
        """
        return self._proc(self._install_publish(key, expected, data),
                          "ddss-install-publish")

    def _install_publish(self, key, expected, data):
        meta = yield from self._meta(key)
        if len(data) > meta.size:
            raise DDSSError(
                f"install of {len(data)} bytes into unit of {meta.size}")
        padded = bytes(data) + b"\x00" * (meta.size - len(data))
        blob = (expected + 1).to_bytes(8, "big") + padded
        yield self.node.nic.rdma_write(
            meta.home, meta.addr + VERSION_OFF, meta.rkey, blob)
        return expected + 1

    def _rehome(self, key: int):
        """Tombstone hit: drop the cached meta and re-resolve, bounded."""
        for _ in range(_MAX_CHASES):
            self.stale_retries += 1
            self._meta_cache.pop(key, None)
            meta = yield from self._lookup(key)
            word = yield from self._read_version(meta)
            if word != TOMBSTONE:
                return meta
        raise StaleHomeError(
            f"unit {key}: still tombstoned after {_MAX_CHASES} "
            f"directory re-resolves")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _proc(self, gen, name):
        return self.env.process(gen, name=f"{name}@{self.node.name}")

    def _meta(self, key: KeyOrMeta):
        if isinstance(key, UnitMeta):
            return key
            yield  # pragma: no cover - makes this a generator
        meta = yield from self._lookup(key)
        return meta

    def _control(self, node_id: int, body: dict):
        """Two-sided control RPC to a member daemon."""
        req = next(_req_ids)
        body = dict(body, req=req)
        self.node.nic.send(node_id, payload=body, size=64,
                           tag=self.ddss.WIRE_TAG)
        msg = yield self.node.nic.recv(tag=(self.ddss.REPLY_TAG, req))
        if "error" in msg.payload:
            raise DDSSError(msg.payload["error"])
        return msg.payload

    def _control_dir(self, key: int, body: dict):
        """Directory RPC routed by key, chasing shard-map bounces.

        The daemon for a key comes from the last daemon that served it
        (cached) or the substrate's routing function.  A daemon that no
        longer owns the key replies ``{"bounce": epoch, "owner": id}``
        instead of an error, and we chase the owner hint a bounded
        number of times — the same shape as the data plane's tombstone
        chase in :meth:`_rehome`.  On a flat directory nothing ever
        bounces and this is exactly one :meth:`_control` round trip.
        """
        target = self._dir_cache.get(key)
        if target is None:
            target = self.ddss.dir_node(key)
        for _ in range(_MAX_CHASES):
            reply = yield from self._control(target, body)
            if "bounce" not in reply:
                self._dir_cache[key] = target
                return reply
            self.stale_retries += 1
            self._obs_bounce(key, target, reply["owner"], reply["bounce"])
            target = reply["owner"]
        raise StaleHomeError(
            f"directory op for key {key}: still bouncing after "
            f"{_MAX_CHASES} owner chases")

    def _obs_bounce(self, key: int, frm: int, to: int, ep: int) -> None:
        obs = self.env.obs
        if obs is None:
            return
        obs.trace.emit("shard.bounce", node=self.node.id, key=key,
                       frm=frm, to=to, ep=ep)
        obs.metrics.counter("shard.bounces", node=self.node.id).inc()

    def _ipc_hop(self):
        """Cost of reaching the substrate through the node-local IPC."""
        if self.via_ipc:
            yield self.env.timeout(1.0)
        else:
            return
            yield  # pragma: no cover

    def _read_version(self, meta: UnitMeta):
        blob = yield self.node.nic.rdma_read(
            meta.home, meta.addr + VERSION_OFF, meta.rkey, 8)
        return int.from_bytes(blob, "big")

    def _bump_version_locked(self, meta: UnitMeta):
        """Version bump while holding the lock (no atomicity needed);
        returns the new version."""
        version = yield from self._read_version(meta)
        yield self.node.nic.rdma_write(
            meta.home, meta.addr + VERSION_OFF, meta.rkey,
            (version + 1).to_bytes(8, "big"))
        return version + 1

    def _spin_lock(self, meta: UnitMeta):
        delay, mult, cap = _BACKOFF
        while True:
            old = yield self.node.nic.cas(
                meta.home, meta.addr + LOCK_OFF, meta.rkey, 0, self._token)
            if old == 0:
                self._obs_lock("ddss.lock.acquire", meta)
                return
            yield self.env.timeout(delay)
            delay = min(delay * mult, cap)

    def _unlock(self, meta: UnitMeta):
        # Emitted at CAS *issue*, not completion: the claimed hold
        # interval [acquire-completion, release-issue] then sits strictly
        # inside the physical hold, so disjoint holds stay disjoint in
        # the trace even when completion notifications reorder (a
        # cross-rack release ack can arrive after a rack-local
        # acquire ack under uplink contention).
        self._obs_lock("ddss.lock.release", meta)
        old = yield self.node.nic.cas(
            meta.home, meta.addr + LOCK_OFF, meta.rkey, self._token, 0)
        if old != self._token:
            raise CoherenceError(
                f"unlock by non-owner: lock word was {old:#x}, "
                f"expected {self._token:#x}")

    # -- observability ---------------------------------------------------
    def _obs_op(self, etype: str, key: int) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.node.id, key=key)
            obs.metrics.counter(f"{etype}s", node=self.node.id).inc()

    def _obs_data_done(self, etype: str, meta: UnitMeta, t0: float,
                       version: Optional[int], data: bytes,
                       **extra) -> None:
        """Completion event for the offline coherence oracles: the op's
        [t0, now] interval, the committed/observed version, and a
        payload fingerprint."""
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.node.id, key=meta.key,
                           model=meta.coherence.name, t0=t0,
                           version=version, nbytes=len(data),
                           data=_fingerprint(bytes(data)), **extra)

    def _obs_lock(self, etype: str, meta: UnitMeta) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=self.node.id, home=meta.home,
                           addr=meta.addr + LOCK_OFF, token=self._token)

    def _obs_latency(self, obs, name: str, ev) -> None:
        t0 = self.env.now
        node = self.node.id

        def done(e):
            if e.ok:
                us = self.env.now - t0
                obs.metrics.histogram(name).observe(us)
                obs.metrics.histogram(name, node=node).observe(us)

        done._obs_passive = True
        ev.add_callback(done)

    _local_version_counters: Dict[int, int]

    def _next_local_version(self, key: int) -> int:
        counters = getattr(self, "_lvc", None)
        if counters is None:
            counters = self._lvc = {}
        counters[key] = counters.get(key, 0) + 1
        return counters[key]
