"""Global memory aggregator — the Figure-1 primitive the paper defers.

Aggregates the free-memory state of every DDSS member into a table of
64-bit words in the metadata node's registered memory.  Members push
their own free-byte count with a one-sided RDMA write whenever it
changes materially; allocating clients read the whole table with a
single RDMA read and place new units on the member with the most free
space ("best-fit" placement), instead of blind round-robin.

This is exactly the shape of the paper's other services: state shared
through registered memory, written and read one-sidedly, no daemon on
the critical path.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import DDSSError
from repro.sim import Event

from repro.ddss.substrate import DDSS

__all__ = ["GlobalMemoryAggregator"]

#: a member republishes when its free bytes moved by this fraction
PUBLISH_THRESHOLD = 0.05
#: publish poll period (µs)
PUBLISH_PERIOD_US = 2_000.0


class GlobalMemoryAggregator:
    """Cluster-wide view of free DDSS segment space."""

    def __init__(self, ddss: DDSS,
                 publish_period_us: float = PUBLISH_PERIOD_US):
        if publish_period_us <= 0:
            raise DDSSError("publish period must be positive")
        self.ddss = ddss
        self.env = ddss.env
        self.members = list(ddss.members)
        #: member index in the table
        self._index = {node.id: i for i, node in enumerate(self.members)}
        home = ddss.meta_node
        self.table = home.memory.register(8 * len(self.members),
                                          name="gma-table")
        self.publish_period_us = publish_period_us
        self.publishes = 0
        self._last_published: Dict[int, int] = {}
        for node in self.members:
            free = ddss.allocator(node.id).free_bytes
            self.table.write_u64(8 * self._index[node.id], free)
            self._last_published[node.id] = free
            self.env.process(self._publisher(node),
                             name=f"gma-pub@{node.name}")

    # -- member side -----------------------------------------------------
    def _publisher(self, node):
        meta = self.ddss.meta_node
        while True:
            yield self.env.timeout(self.publish_period_us)
            free = self.ddss.allocator(node.id).free_bytes
            last = self._last_published[node.id]
            base = max(last, 1)
            if abs(free - last) / base < PUBLISH_THRESHOLD:
                continue
            if node.id == meta.id:
                self.table.write_u64(8 * self._index[node.id], free)
            else:
                yield node.nic.rdma_write(
                    meta.id, self.table.addr + 8 * self._index[node.id],
                    self.table.rkey, free.to_bytes(8, "big"))
            self._last_published[node.id] = free
            self.publishes += 1

    # -- client side --------------------------------------------------------
    def read_view(self, from_node) -> Event:
        """One RDMA read of the whole table; value: {node_id: free}."""
        return self.env.process(self._read_view(from_node),
                                name=f"gma-view@{from_node.name}")

    def _read_view(self, from_node):
        meta = self.ddss.meta_node
        n = len(self.members)
        if from_node.id == meta.id:
            yield self.env.timeout(0.2)
            blob = self.table.read(0, 8 * n)
        else:
            blob = yield from_node.nic.rdma_read(
                meta.id, self.table.addr, self.table.rkey, 8 * n)
        return {node.id: int.from_bytes(blob[8 * i:8 * i + 8], "big")
                for i, node in enumerate(self.members)}

    def pick_home(self, from_node) -> Event:
        """Best-fit placement: the member with the most free bytes."""
        return self.env.process(self._pick(from_node),
                                name=f"gma-pick@{from_node.name}")

    def _pick(self, from_node):
        view = yield from self._read_view(from_node)
        best = max(view, key=view.get)
        return best

    # -- diagnostics -----------------------------------------------------
    def imbalance(self) -> float:
        """(max - min) / capacity across members (0 = perfectly even)."""
        frees = [self.ddss.allocator(n.id).free_bytes
                 for n in self.members]
        return (max(frees) - min(frees)) / self.ddss.segment_bytes
