"""DDSS service side: contributed segments, daemons, metadata directory.

Topology: every participating node contributes one registered segment and
runs a lightweight daemon.  One node (by default the first) additionally
hosts the **metadata directory** mapping unit keys to
:class:`UnitMeta`.  Control operations (allocate / free / lookup) are
two-sided RPCs to daemons — they are rare.  The data path (``get`` /
``put`` in :class:`repro.ddss.client.DDSSClient`) is pure one-sided RDMA
against the home segment, which is the substrate's whole point.

On-segment unit layout::

    offset 0   u64  lock word      (0 = free, else owner token)
    offset 8   u64  version counter
    offset 16  ...  data bytes
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import DDSSError
from repro.net.cluster import Cluster
from repro.net.node import Node

from repro.ddss.allocator import SegmentAllocator
from repro.ddss.coherence import Coherence

__all__ = ["DDSS", "UnitMeta", "HEADER_BYTES", "LOCK_OFF", "VERSION_OFF",
           "INSTALL_BIT", "TOMBSTONE"]

HEADER_BYTES = 16
LOCK_OFF = 0
VERSION_OFF = 8

#: top bit of the version word: a transactional install is in flight.
#: Snapshot readers spin past it; a competing installer's CAS fails.
INSTALL_BIT = 1 << 63

#: version-word value marking a *stale* unit location after a rebalance.
#: Any CAS or snapshot that sees it must re-resolve the key through the
#: directory (``StaleHomeError``).  All-ones can never be a live version
#: (versions count up from zero and INSTALL_BIT is the only flag).
TOMBSTONE = (1 << 64) - 1

#: CPU time the daemon spends on one control request (µs)
DAEMON_WORK_US = 2.0

_req_ids = itertools.count(1)


@dataclass(frozen=True)
class UnitMeta:
    """Directory entry describing one shared unit.

    ``replicas`` lists additional copies as ``(home, addr, rkey)``
    triples.  A put writes every reachable copy (at least one must
    succeed); a get fails over from the primary to the replicas when a
    copy is unreachable (see :meth:`repro.ddss.client.DDSSClient.get`).
    """

    key: int
    home: int            # node id of the home segment
    addr: int            # absolute address of the unit header
    rkey: int
    size: int            # data bytes (excluding header)
    coherence: Coherence
    delta: int = 2       # max version staleness (DELTA)
    ttl_us: float = 1000.0  # max time staleness (TEMPORAL)
    replicas: Tuple[Tuple[int, int, int], ...] = ()

    @property
    def data_addr(self) -> int:
        return self.addr + HEADER_BYTES

    @property
    def copies(self) -> Tuple[Tuple[int, int, int], ...]:
        """All copies, primary first, as ``(home, addr, rkey)``."""
        return ((self.home, self.addr, self.rkey),) + self.replicas


class DDSS:
    """The substrate service: call :meth:`client` per application node."""

    WIRE_TAG = "ddss"
    REPLY_TAG = "ddss-reply"

    def __init__(self, cluster: Cluster,
                 member_nodes: Optional[Sequence[Node]] = None,
                 segment_bytes: int = 1 << 20,
                 meta_node: Optional[Node] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.members = list(member_nodes or cluster.nodes)
        if not self.members:
            raise DDSSError("DDSS needs at least one member node")
        self.meta_node = meta_node or self.members[0]
        if self.meta_node not in self.members:
            raise DDSSError("metadata node must be a member")
        self.segment_bytes = segment_bytes
        self._segments: Dict[int, object] = {}
        self._allocators: Dict[int, SegmentAllocator] = {}
        self._directory: Dict[int, UnitMeta] = {}
        self._next_key = itertools.count(1)
        self._rr = itertools.count()  # round-robin placement cursor
        #: (node_id, offset, nbytes) blocks tombstoned by a rebalance;
        #: quarantined (never reused) so in-flight one-sided ops against
        #: the stale address can only ever read the tombstone — the
        #: simulation's stand-in for rkey revocation
        self._quarantined: list = []
        for node in self.members:
            seg = node.memory.register(segment_bytes,
                                       name=f"ddss-seg@{node.name}")
            self._segments[node.id] = seg
            self._allocators[node.id] = SegmentAllocator(segment_bytes)
            self.env.process(self._daemon(node),
                             name=f"ddss-daemon@{node.name}")

    # -- public --------------------------------------------------------
    def client(self, node: Node, via_ipc: bool = False):
        from repro.ddss.client import DDSSClient
        return DDSSClient(self, node, via_ipc=via_ipc)

    def segment(self, node_id: int):
        return self._segments[node_id]

    def allocator(self, node_id: int) -> SegmentAllocator:
        return self._allocators[node_id]

    def directory_size(self) -> int:
        return len(self._directory)

    def pick_home(self, placement: Optional[int]) -> int:
        """Placement policy: explicit node id, else round robin."""
        if placement is not None:
            if placement not in self._segments:
                raise DDSSError(f"node {placement} is not a DDSS member")
            return placement
        idx = next(self._rr) % len(self.members)
        return self.members[idx].id

    # -- directory routing (overridden by repro.shard.ShardedDDSS) -----
    def dir_node(self, key: int) -> int:
        """Node id whose daemon serves directory ops for ``key``."""
        return self.meta_node.id

    def register_target(self) -> Tuple[int, Optional[int]]:
        """``(daemon node id, pre-assigned key)`` for a register.

        The flat directory assigns keys at the metadata daemon, so the
        key is ``None`` here; a sharded directory must pre-assign it to
        know which shard owns the registration.
        """
        return self.meta_node.id, None

    def data_home(self, key: Optional[int],
                  placement: Optional[int]) -> int:
        """Home segment for a new unit (``key`` known when
        pre-assigned)."""
        return self.pick_home(placement)

    def _dir_reject(self, node: Node, op: str,
                    key: Optional[int]) -> Optional[dict]:
        """Reply payload when ``node``'s daemon must not serve this
        directory op, else None."""
        if node is not self.meta_node:
            return {"error": f"{op} sent to non-metadata node"}
        return None

    def replica_homes(self, primary: int, n: int) -> Tuple[int, ...]:
        """``n`` distinct member nodes after ``primary``, in ring order."""
        ids = [m.id for m in self.members]
        if n > len(ids) - 1:
            raise DDSSError(
                f"{n} replicas need {n + 1} members, have {len(ids)}")
        start = ids.index(primary)
        return tuple(ids[(start + 1 + i) % len(ids)] for i in range(n))

    # -- rebalancing ---------------------------------------------------
    def migrate_unit(self, key: int, new_home: int) -> UnitMeta:
        """Move a unit to ``new_home``; tombstone the old location.

        Control-plane operation run by the directory authority (e.g.
        :class:`repro.reconfig.ReconfigManager` evicting a dead home):
        copy header + data to a fresh block, stamp ``TOMBSTONE`` into
        the old version word, repoint the directory, and quarantine the
        old block.  A client that cached the old address sees the
        tombstone on its next CAS or snapshot and re-resolves
        (:class:`repro.errors.StaleHomeError`) — it can never install
        at the stale home.

        A unit whose version word carries ``INSTALL_BIT`` is mid-install
        and is *not* moved (``DDSSError``): the installer's publish must
        land at the address where it took the install lock.
        """
        meta = self._directory.get(key)
        if meta is None:
            raise DDSSError(f"unknown key {key}")
        if new_home not in self._segments:
            raise DDSSError(f"node {new_home} is not a DDSS member")
        if meta.replicas:
            raise DDSSError(f"unit {key} is replicated: not rebalanced")
        if new_home == meta.home:
            return meta
        old_seg = self._segments[meta.home]
        old_off = meta.addr - old_seg.addr
        word = int.from_bytes(
            old_seg.read(old_off + VERSION_OFF, 8), "big")
        if word & INSTALL_BIT:
            raise DDSSError(f"unit {key} has an install in flight")
        lock = int.from_bytes(old_seg.read(old_off + LOCK_OFF, 8), "big")
        if lock:
            # moving a held lock would strand the copy locked forever
            # (the holder releases at the address it locked)
            raise DDSSError(f"unit {key} is locked by {lock}")
        nbytes = HEADER_BYTES + meta.size
        blob = old_seg.read(old_off, nbytes)
        new_off = self._allocators[new_home].alloc(nbytes)
        new_seg = self._segments[new_home]
        new_seg.write(new_off, blob)
        old_seg.write(old_off + VERSION_OFF, TOMBSTONE.to_bytes(8, "big"))
        self._quarantined.append((meta.home, old_off, nbytes))
        new_meta = replace(meta, home=new_home,
                           addr=new_seg.addr + new_off, rkey=new_seg.rkey)
        self._directory[key] = new_meta
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit("ddss.migrate", node=self.meta_node.id,
                           key=key, frm=meta.home, to=new_home)
            obs.metrics.counter("ddss.migrations").inc()
        return new_meta

    def migrate_off(self, node_id: int,
                    avoid: Sequence[int] = ()) -> int:
        """Rebalance every unit homed on ``node_id`` to other members.

        New homes are chosen in ring order, skipping ``node_id`` and
        any node in ``avoid`` (e.g. other dead nodes).  Units with an
        install in flight are skipped (a later call retries them).
        Returns the number of units moved.
        """
        banned = {node_id, *avoid}
        targets = [m.id for m in self.members if m.id not in banned]
        if not targets:
            raise DDSSError("no live member left to rebalance onto")
        moved = 0
        victims = sorted(k for k, m in self._directory.items()
                         if m.home == node_id and not m.replicas)
        for i, key in enumerate(victims):
            try:
                self.migrate_unit(key, targets[i % len(targets)])
            except DDSSError:
                continue  # busy or full target: leave for a retry
            moved += 1
        return moved

    # -- daemon ------------------------------------------------------------
    def _daemon(self, node: Node):
        """Handle control requests addressed to this member node."""
        while True:
            msg = yield node.nic.recv(tag=self.WIRE_TAG)
            yield node.cpu.run(DAEMON_WORK_US, name="ddss-daemon")
            body = msg.payload
            op = body["op"]
            if op == "alloc":
                reply = self._do_alloc(node, body)
            elif op == "free_unit":
                reply = self._do_free_unit(node, body)
            elif op == "register":
                reply = self._do_register(node, body)
            elif op == "lookup":
                reply = self._do_lookup(node, body)
            elif op == "unregister":
                reply = self._do_unregister(node, body)
            else:  # pragma: no cover - defensive
                reply = {"error": f"unknown op {op!r}"}
            node.nic.send(msg.src, payload=reply, size=64,
                          tag=(self.REPLY_TAG, body["req"]))

    def _do_alloc(self, node: Node, body: dict) -> dict:
        try:
            offset = self._allocators[node.id].alloc(
                HEADER_BYTES + body["size"])
        except DDSSError as exc:
            return {"error": str(exc)}
        seg = self._segments[node.id]
        # zero the header so locks start free and version at 0
        seg.write(offset, b"\x00" * HEADER_BYTES)
        return {"addr": seg.addr + offset, "rkey": seg.rkey}

    def _do_free_unit(self, node: Node, body: dict) -> dict:
        seg = self._segments[node.id]
        try:
            self._allocators[node.id].free(body["addr"] - seg.addr)
        except DDSSError as exc:
            return {"error": str(exc)}
        return {"ok": True}

    def _do_register(self, node: Node, body: dict) -> dict:
        key = body.get("key")
        reject = self._dir_reject(node, "register", key)
        if reject is not None:
            return reject
        meta: UnitMeta = body["meta"]
        meta = replace(meta,
                       key=key if key is not None
                       else next(self._next_key))
        self._directory[meta.key] = meta
        return {"meta": meta}

    def _do_lookup(self, node: Node, body: dict) -> dict:
        reject = self._dir_reject(node, "lookup", body["key"])
        if reject is not None:
            return reject
        meta = self._directory.get(body["key"])
        if meta is None:
            return {"error": f"unknown key {body['key']}"}
        return {"meta": meta}

    def _do_unregister(self, node: Node, body: dict) -> dict:
        reject = self._dir_reject(node, "unregister", body["key"])
        if reject is not None:
            return reject
        meta = self._directory.pop(body["key"], None)
        if meta is None:
            return {"error": f"unknown key {body['key']}"}
        return {"meta": meta}
