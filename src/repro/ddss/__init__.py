"""DDSS — the Distributed Data Sharing Substrate (paper §4.1, ref [20]).

A soft shared state for data-center services: named shared units are
allocated in registered memory contributed by cluster nodes and accessed
with one-sided RDMA ``get``/``put`` under one of six coherence models
(:class:`Coherence`).  Components map to the paper's Figure 2:

* IPC management — :class:`IpcPortal` (many processes per node share one
  substrate client).
* Memory management — :class:`SegmentAllocator` (first-fit free list
  with coalescing inside each node's contributed segment).
* Data placement — round-robin or explicit home-node hints at
  :meth:`DDSSClient.allocate`.
* Locking mechanisms — CAS-based unit locks with exponential backoff.
* Coherency & consistency maintenance — the six models of
  :class:`Coherence` plus version counters on every unit.

Example::

    from repro.net import Cluster
    from repro.ddss import DDSS, Coherence

    cluster = Cluster(n_nodes=4)
    ddss = DDSS(cluster)
    client = ddss.client(cluster.nodes[1])

    def app(env):
        key = yield client.allocate(256, coherence=Coherence.WRITE)
        yield client.put(key, b"shared-state")
        data = yield client.get(key)

    cluster.env.process(app(cluster.env))
    cluster.env.run()
"""

from repro.ddss.aggregator import GlobalMemoryAggregator
from repro.ddss.allocator import SegmentAllocator
from repro.ddss.client import DDSSClient
from repro.ddss.coherence import Coherence
from repro.ddss.ipc import IpcPortal
from repro.ddss.substrate import (DDSS, INSTALL_BIT, TOMBSTONE, UnitMeta)

__all__ = [
    "Coherence",
    "GlobalMemoryAggregator",
    "DDSS",
    "DDSSClient",
    "INSTALL_BIT",
    "IpcPortal",
    "SegmentAllocator",
    "TOMBSTONE",
    "UnitMeta",
]
