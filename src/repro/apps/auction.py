"""A RUBiS-style auction service built on the framework's primitives.

This is the integration showcase: the paper reports its designs
"integrated into current data-center applications such as Apache, PHP
and MySQL"; here is what that looks like on this substrate.

* Item state (current price, bid count, end time) lives in **DDSS**
  units under VERSION coherence, homed on the database node.
* Bid placement is a read-modify-write protected by the **N-CoSED**
  distributed lock manager (one lock per item), so concurrent bids from
  different app servers never lose updates.
* Browsing reads item state one-sidedly; hot items are served from the
  DELTA-coherent cache with bounded staleness — a browse may show a
  price up to ``delta`` bids old, which is exactly the soft-state
  trade-off DDSS exists for.
* App servers run on cluster nodes; their CPU work shares the node with
  everything else (so the monitoring layer sees real auction load).

The resulting invariants are tested end to end: monotone prices, no
lost bids, bid counts equal to successful ``place_bid`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigError
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.sim import Event

from repro.ddss import DDSS, Coherence
from repro.dlm import LockMode, NCoSEDManager

__all__ = ["AuctionService", "AuctionClient", "BidResult"]

#: CPU work per operation on the app server (µs)
BROWSE_CPU_US = 25.0
BID_CPU_US = 60.0

_ITEM_BYTES = 24  # price u64 | bid_count u64 | seller-token u64


@dataclass
class BidResult:
    accepted: bool
    item: int
    price: int          # price after the bid (or current price if rejected)
    reason: str = ""


class AuctionService:
    """Shared auction state + per-node app-server handles."""

    def __init__(self, cluster: Cluster, n_items: int,
                 db_node: Optional[Node] = None,
                 starting_price: int = 100,
                 delta: int = 3):
        if n_items <= 0:
            raise ConfigError("need at least one item")
        self.cluster = cluster
        self.env = cluster.env
        self.n_items = n_items
        self.db_node = db_node or cluster.nodes[0]
        self.starting_price = starting_price
        self.delta = delta
        self.ddss = DDSS(cluster, meta_node=self.db_node)
        self.dlm = NCoSEDManager(cluster, n_locks=n_items)
        #: item -> DDSS key (filled by setup)
        self.item_keys: Dict[int, int] = {}
        self._setup_done = self.env.process(self._setup(),
                                            name="auction-setup")
        # bookkeeping for invariant checks
        self.accepted_bids = 0
        self.rejected_bids = 0

    def _setup(self):
        client = self.ddss.client(self.db_node)
        for item in range(self.n_items):
            key = yield client.allocate(
                _ITEM_BYTES, coherence=Coherence.DELTA,
                delta=self.delta, placement=self.db_node.id)
            yield client.put(key, self._encode(self.starting_price, 0))
            self.item_keys[item] = key
        return None

    @staticmethod
    def _encode(price: int, bids: int) -> bytes:
        return (price.to_bytes(8, "big") + bids.to_bytes(8, "big")
                + b"\x00" * 8)

    @staticmethod
    def _decode(blob: bytes):
        return (int.from_bytes(blob[0:8], "big"),
                int.from_bytes(blob[8:16], "big"))

    def app_server(self, node: Node) -> "AuctionClient":
        return AuctionClient(self, node)

    # -- oracle for tests ----------------------------------------------------
    def true_state(self, item: int):
        """Zero-time direct read of an item's (price, bids)."""
        key = self.item_keys[item]
        seg = self.ddss.segment(self.db_node.id)
        # resolve the unit through the directory (no network: test hook)
        meta = self.ddss._directory[key]
        offset = meta.data_addr - seg.addr
        return self._decode(seg.read(offset, _ITEM_BYTES))


class AuctionClient:
    """One app-server's handle onto the auction state."""

    def __init__(self, service: AuctionService, node: Node):
        self.service = service
        self.node = node
        self.env = node.env
        self._data = service.ddss.client(node)
        self._locks = service.dlm.client(node)
        self.browses = 0
        self.bids = 0

    # -- operations ---------------------------------------------------------
    def browse(self, item: int) -> Event:
        """Read an item's (price, bids); may be up to delta bids stale."""
        return self.env.process(self._browse(item),
                                name=f"browse@{self.node.name}")

    def _browse(self, item):
        yield self.service._setup_done
        self.browses += 1
        yield self.node.cpu.run(BROWSE_CPU_US, name="auction-browse")
        key = self.service.item_keys[item]
        blob = yield self._data.get(key, length=_ITEM_BYTES)
        return self.service._decode(blob)

    def place_bid(self, item: int, amount: int) -> Event:
        """Attempt a bid; accepted iff strictly above the current price."""
        return self.env.process(self._place_bid(item, amount),
                                name=f"bid@{self.node.name}")

    def _place_bid(self, item, amount):
        yield self.service._setup_done
        self.bids += 1
        yield self.node.cpu.run(BID_CPU_US, name="auction-bid")
        key = self.service.item_keys[item]
        lock_id = item
        yield self._locks.acquire(lock_id, LockMode.EXCLUSIVE)
        try:
            # authoritative read under the lock: bypass the DELTA cache
            meta = yield self._data.lookup(key)
            blob = yield self.node.nic.rdma_read(
                meta.home, meta.data_addr, meta.rkey, _ITEM_BYTES)
            price, bids = self.service._decode(blob)
            if amount <= price:
                self.service.rejected_bids += 1
                return BidResult(False, item, price, "price moved")
            yield self._data.put(key,
                                 self.service._encode(amount, bids + 1))
            self.service.accepted_bids += 1
            return BidResult(True, item, amount)
        finally:
            yield self._locks.release(lock_id)

    def buy_now_snapshot(self, items: Sequence[int]) -> Event:
        """Browse several items in one call (catalog page)."""
        return self.env.process(self._snapshot(items),
                                name=f"catalog@{self.node.name}")

    def _snapshot(self, items):
        out = {}
        for item in items:
            out[item] = yield self.browse(item)
        return out
