"""End-to-end applications built on the framework."""

from repro.apps.auction import AuctionClient, AuctionService, BidResult
from repro.apps.storm import StormEngine

__all__ = ["AuctionClient", "AuctionService", "BidResult", "StormEngine"]
