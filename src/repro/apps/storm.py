"""STORM-style distributed query processing (paper Fig. 3b, ref [20]).

STORM (from the data-cutter family) runs SELECT-style queries over
records partitioned across storage nodes.  A coordinator distributes the
query, each storage node scans its partition, and partial aggregates
flow back.  Two coordination substrates:

* **traditional** — every step is a two-sided request/response with the
  storage node's user-level service process: dataset-metadata exchange,
  query dispatch, completion/result collection.  Those exchanges queue
  behind the scan CPU itself, so coordination inflates as nodes work.
* **DDSS-backed** — metadata is cached under delta coherence, the query
  descriptor and partial results travel through shared-state units with
  one-sided operations, and a fetch-and-add completion counter tells the
  coordinator when everything has landed — no storage-node CPU on the
  coordination path.

Records are real: each node holds a numpy array partition and queries
compute actual counts/sums that tests verify against a direct
evaluation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.sim import Event

from repro.ddss import DDSS, Coherence

__all__ = ["StormEngine"]

#: scan cost per record (µs) — memory-bound pass over ~100-byte records
SCAN_US_PER_RECORD = 0.01
#: storage-service CPU per handled control message (µs)
SERVICE_MSG_US = 5.0
#: bytes of a metadata / control exchange
CTRL_BYTES = 512
#: bytes of one partial-result record
RESULT_BYTES = 64

_query_ids = itertools.count(1)


class StormEngine:
    """Coordinator + storage-node partitions over one cluster."""

    def __init__(self, cluster: Cluster, n_records: int,
                 n_storage: Optional[int] = None,
                 use_ddss: bool = False, seed: int = 0):
        if n_records <= 0:
            raise ConfigError("need at least one record")
        self.cluster = cluster
        self.env = cluster.env
        nodes = cluster.nodes
        if len(nodes) < 2:
            raise ConfigError("need a coordinator and >= 1 storage node")
        n_storage = n_storage or (len(nodes) - 1)
        self.coordinator = nodes[0]
        self.storage = nodes[1:1 + n_storage]
        self.use_ddss = use_ddss
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 10_000, size=n_records)
        self.partitions: Dict[int, np.ndarray] = {
            node.id: part for node, part in
            zip(self.storage, np.array_split(values, len(self.storage)))
        }
        self.n_records = n_records
        self.queries_run = 0
        if use_ddss:
            self.ddss = DDSS(cluster, segment_bytes=256 * 1024)
            self._setup_ddss_state()
        else:
            self._start_services()

    # ------------------------------------------------------------------
    # traditional messaging substrate
    # ------------------------------------------------------------------
    def _start_services(self) -> None:
        for node in self.storage:
            self.env.process(self._service(node),
                             name=f"storm-svc@{node.name}")

    def _sock_cpu(self, node: Node, nbytes: int):
        """Host socket-stack CPU for one send or receive on ``node``.

        The traditional STORM implementation speaks sockets; every
        control exchange pays protocol-stack CPU on both ends (the
        paper's baseline), while the DDSS path is one-sided RDMA.
        """
        params = node.nic.params
        return node.cpu.run(params.sock_cpu_us(nbytes), name="storm-sock")

    def _service(self, node: Node):
        """Storage-node service loop: metadata, scan, result delivery."""
        while True:
            msg = yield node.nic.recv(tag="storm")
            body = msg.payload
            # socket receive + service handling cost on the storage node
            yield self._sock_cpu(node, CTRL_BYTES)
            yield node.cpu.run(SERVICE_MSG_US, name="storm-ctrl")
            if body["op"] == "meta":
                yield self._sock_cpu(node, CTRL_BYTES)
                node.nic.send(msg.src, payload={
                    "n": len(self.partitions[node.id]),
                }, size=CTRL_BYTES, tag=("storm-r", body["q"], node.id))
            elif body["op"] == "query":
                part = self.partitions[node.id]
                yield node.cpu.run(len(part) * SCAN_US_PER_RECORD,
                                   name="storm-scan")
                lo, hi = body["lo"], body["hi"]
                mask = (part >= lo) & (part < hi)
                count = int(mask.sum())
                total = int(part[mask].sum())
                yield self._sock_cpu(node, RESULT_BYTES)
                node.nic.send(msg.src, payload={
                    "count": count, "sum": total,
                }, size=RESULT_BYTES, tag=("storm-r", body["q"], node.id))

    def _run_traditional(self, lo: int, hi: int):
        qid = next(_query_ids)
        coord = self.coordinator
        # phase 1: metadata exchange with every storage node
        for node in self.storage:
            yield self._sock_cpu(coord, CTRL_BYTES)
            coord.nic.send(node.id, payload={"op": "meta", "q": qid},
                           size=CTRL_BYTES, tag="storm")
        for node in self.storage:
            yield coord.nic.recv(tag=("storm-r", qid, node.id))
            yield self._sock_cpu(coord, CTRL_BYTES)
        # phase 2: dispatch the query and gather partial results
        for node in self.storage:
            yield self._sock_cpu(coord, CTRL_BYTES)
            coord.nic.send(node.id, payload={
                "op": "query", "q": qid, "lo": lo, "hi": hi,
            }, size=CTRL_BYTES, tag="storm")
        count, total = 0, 0
        for node in self.storage:
            msg = yield coord.nic.recv(tag=("storm-r", qid, node.id))
            yield self._sock_cpu(coord, RESULT_BYTES)
            count += msg.payload["count"]
            total += msg.payload["sum"]
        return count, total

    # ------------------------------------------------------------------
    # DDSS-backed substrate
    # ------------------------------------------------------------------
    def _setup_ddss_state(self) -> None:
        self._coord_client = self.ddss.client(self.coordinator)
        self._node_clients = {n.id: self.ddss.client(n)
                              for n in self.storage}
        self._state: Dict[str, int] = {}
        self._setup_done = self.env.process(self._ddss_setup(),
                                            name="storm-ddss-setup")
        for node in self.storage:
            self.env.process(self._ddss_service(node),
                             name=f"storm-ddss@{node.name}")

    def _ddss_setup(self):
        cc = self._coord_client
        coord_id = self.coordinator.id
        # dataset metadata: written once, cached under delta coherence
        self._state["meta"] = yield cc.allocate(
            64, coherence=Coherence.DELTA, delta=4, placement=coord_id)
        yield cc.put(self._state["meta"],
                     self.n_records.to_bytes(8, "big"))
        # query descriptor (read-coherent snapshot)
        self._state["query"] = yield cc.allocate(
            32, coherence=Coherence.READ, placement=coord_id)
        # per-node result units + completion counter, homed with the
        # coordinator so collection is node-local
        self._state["done"] = yield cc.allocate(
            8, coherence=Coherence.VERSION, placement=coord_id)
        for node in self.storage:
            self._state[f"res{node.id}"] = yield cc.allocate(
                32, coherence=Coherence.READ, placement=coord_id)
        return None

    def _ddss_service(self, node: Node):
        """Storage loop: doorbell -> shared-state query -> scan -> put."""
        client = self._node_clients[node.id]
        yield self._setup_done
        while True:
            msg = yield node.nic.recv(tag="storm-bell")
            qid = msg.payload
            blob = yield client.get(self._state["query"])
            lo = int.from_bytes(blob[0:8], "big")
            hi = int.from_bytes(blob[8:16], "big")
            # metadata consult: delta-coherent cache, almost always local
            yield client.get(self._state["meta"])
            part = self.partitions[node.id]
            yield node.cpu.run(len(part) * SCAN_US_PER_RECORD,
                               name="storm-scan")
            mask = (part >= lo) & (part < hi)
            payload = (int(mask.sum()).to_bytes(8, "big")
                       + int(part[mask].sum()).to_bytes(16, "big"))
            yield client.put(self._state[f"res{node.id}"], payload)
            # completion via one-sided fetch-and-add on the counter
            meta = yield client.lookup(self._state["done"])
            yield node.nic.faa(meta.home, meta.addr + 8, meta.rkey, 1)

    def _run_ddss(self, lo: int, hi: int):
        yield self._setup_done
        cc = self._coord_client
        qid = next(_query_ids)
        done_meta = yield cc.lookup(self._state["done"])
        done_region_before = yield cc.get_version(self._state["done"])
        yield cc.put(self._state["query"],
                     lo.to_bytes(8, "big") + hi.to_bytes(8, "big"))
        for node in self.storage:
            self.coordinator.nic.send(node.id, payload=qid, size=16,
                                      tag="storm-bell")
        # wait for the completion counter (coordinator-local poll)
        target = done_region_before + len(self.storage)
        while True:
            version = yield cc.get_version(self._state["done"])
            if version >= target:
                break
            yield self.env.timeout(5.0)
        count, total = 0, 0
        for node in self.storage:
            blob = yield cc.get(self._state[f"res{node.id}"])
            count += int.from_bytes(blob[0:8], "big")
            total += int.from_bytes(blob[8:24], "big")
        return count, total

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run_query(self, lo: int, hi: int) -> Event:
        """SELECT count(*), sum(v) WHERE lo <= v < hi."""
        self.queries_run += 1
        gen = (self._run_ddss(lo, hi) if self.use_ddss
               else self._run_traditional(lo, hi))
        return self.env.process(gen, name="storm-query")

    def expected(self, lo: int, hi: int) -> Tuple[int, int]:
        """Ground truth, computed directly."""
        count, total = 0, 0
        for part in self.partitions.values():
            mask = (part >= lo) & (part < hi)
            count += int(mask.sum())
            total += int(part[mask].sum())
        return count, total
