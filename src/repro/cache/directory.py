"""RDMA-readable cache directory.

Every document has a *directory home* among the caching nodes
(``hash(doc) % n``).  The home keeps a 16-byte entry in registered
memory::

    u32  holder + 1   (0 = not cached anywhere we know of)
    u32  size
    u64  generation   (bumped on every update; staleness diagnostics)

Lookups and updates from the home node itself are memory operations;
from any other node they are one-sided RDMA reads/writes — no home CPU.
Directory information may be *stale* (a holder can evict without the
directory knowing if the clearing write races a newer update); callers
must treat a failed remote probe as a miss, exactly like the paper's
schemes do.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import CacheError
from repro.net.node import Node

__all__ = ["CacheDirectory"]

ENTRY_BYTES = 16
#: cost of a directory access served from local memory (µs)
LOCAL_ACCESS_US = 0.2


class CacheDirectory:
    """Directory sharded across the caching nodes."""

    def __init__(self, nodes: Sequence[Node], n_docs: int):
        if not nodes:
            raise CacheError("directory needs at least one node")
        if n_docs <= 0:
            raise CacheError("directory needs at least one document")
        self.nodes = list(nodes)
        self.n_docs = n_docs
        self.env = self.nodes[0].env
        self._regions: Dict[int, object] = {}
        #: shard host per logical home (changes when a node is retired)
        self._hosts: Dict[int, Node] = {n.id: n for n in self.nodes}
        for node in self.nodes:
            self._regions[node.id] = node.memory.register(
                ENTRY_BYTES * n_docs, name=f"cache-dir@{node.name}")
        self.lookups = 0
        self.updates = 0
        self.remote_lookups = 0

    # -- placement ----------------------------------------------------------
    def home_of(self, doc: int) -> Node:
        """Logical home (fixed hash over the original membership)."""
        self._check(doc)
        return self.nodes[doc % len(self.nodes)]

    def host_of(self, doc: int) -> Node:
        """Physical host of the doc's shard (follows retirements)."""
        return self._hosts[self.home_of(doc).id]

    def retire_shard(self, node_id: int, delegate: Node,
                     preload: Optional[Dict[int, Tuple[int, int]]] = None
                     ) -> None:
        """Move a retired node's directory shard to ``delegate``.

        The replacement shard is freshly registered; ``preload`` maps
        doc -> (holder, size) entries written into it *before* the swap
        (make-before-break: lookups never observe an empty shard for
        documents whose state was migrated).  A blind reconfiguration
        passes no preload and simply loses the state, as the paper's §6
        cache-corruption discussion warns.
        """
        if node_id not in self._hosts:
            raise CacheError(f"node {node_id} does not host a shard")
        if delegate.id == node_id:
            raise CacheError("cannot delegate a shard to itself")
        region = delegate.memory.register(
            ENTRY_BYTES * self.n_docs,
            name=f"cache-dir-delegated-{node_id}@{delegate.name}")
        if preload:
            for doc, (holder, size) in preload.items():
                self._check(doc)
                blob = ((holder + 1).to_bytes(4, "big")
                        + size.to_bytes(4, "big")
                        + (1).to_bytes(8, "big"))
                region.write(ENTRY_BYTES * doc, blob)
        self._hosts[node_id] = delegate
        self._regions[node_id] = region

    def _check(self, doc: int) -> None:
        if not 0 <= doc < self.n_docs:
            raise CacheError(f"doc {doc} out of directory range")

    def _slot(self, doc: int):
        home = self.home_of(doc)
        region = self._regions[home.id]
        return self._hosts[home.id], region, ENTRY_BYTES * doc

    # -- operations (generators; run inside a process) ---------------------
    def lookup(self, from_node: Node, doc: int):
        """Generator -> (holder_node_id | None, size)."""
        self.lookups += 1
        home, region, off = self._slot(doc)
        if home.id == from_node.id:
            yield self.env.timeout(LOCAL_ACCESS_US)
            blob = region.read(off, ENTRY_BYTES)
        else:
            self.remote_lookups += 1
            blob = yield from_node.nic.rdma_read(
                home.id, region.addr + off, region.rkey, ENTRY_BYTES)
        holder = int.from_bytes(blob[0:4], "big")
        size = int.from_bytes(blob[4:8], "big")
        return (holder - 1 if holder else None), size

    def update(self, from_node: Node, doc: int, holder_id, size: int):
        """Generator: publish (holder, size) for ``doc``."""
        self.updates += 1
        home, region, off = self._slot(doc)
        gen = int.from_bytes(region.read(off + 8, 8), "big") + 1
        blob = ((0 if holder_id is None else holder_id + 1)
                .to_bytes(4, "big")
                + size.to_bytes(4, "big") + gen.to_bytes(8, "big"))
        if home.id == from_node.id:
            yield self.env.timeout(LOCAL_ACCESS_US)
            region.write(off, blob)
        else:
            yield from_node.nic.rdma_write(
                home.id, region.addr + off, region.rkey, blob)
        return None

    def clear_if_holder(self, from_node: Node, doc: int, holder_id: int):
        """Generator: read-check-clear (used after an eviction).

        Only clears when the directory still names ``holder_id`` — a
        concurrent newer update must not be clobbered.
        """
        current, size = yield from self.lookup(from_node, doc)
        if current == holder_id:
            yield from self.update(from_node, doc, None, 0)
            return True
        return False

    # -- test helpers --------------------------------------------------------
    def raw_holder(self, doc: int):
        """Zero-time direct view (tests only)."""
        _home, region, off = self._slot(doc)
        holder = int.from_bytes(region.read(off, 4), "big")
        return holder - 1 if holder else None
