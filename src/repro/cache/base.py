"""Common machinery for the cooperative-cache schemes.

A scheme owns one :class:`LRUStore` per caching node plus a registered
*cache segment* per node that remote pulls/pushes target (timed at full
document size; the stored payload is the document's 8-byte token).

The web-server handler drives a scheme with two generator calls::

    result = yield from scheme.fetch_gen(proxy, doc)
    if result.source == "miss":
        token = yield from backend...      # origin fetch
        yield from scheme.admit_gen(proxy, doc)

``fetch``/``admit`` also exist as event-returning wrappers for direct
use from application processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import CacheError
from repro.net.node import Node
from repro.sim import Event

from repro.cache.directory import CacheDirectory, ENTRY_BYTES
from repro.cache.store import LRUStore
from repro.workloads.filesets import FileSet

__all__ = ["CoopCacheBase", "FetchResult"]

#: local memory-copy rate for serving a cached document (µs per byte)
LOCAL_COPY_US_PER_BYTE = 0.0005
LOCAL_LOOKUP_US = 0.3


@dataclass(frozen=True)
class FetchResult:
    source: str            # "local" | "remote" | "miss"
    token: Optional[bytes]  # document token when source != "miss"


class CoopCacheBase:
    """Shared state + helpers; subclasses implement the policy."""

    NAME = "base"
    #: whether this scheme consults a directory at all
    USES_DIRECTORY = True

    def __init__(self, proxy_nodes: Sequence[Node], fileset: FileSet,
                 capacity_bytes: int,
                 extra_nodes: Sequence[Node] = ()):
        if not proxy_nodes:
            raise CacheError("need at least one proxy node")
        self.proxies = list(proxy_nodes)
        self.extra = list(extra_nodes)
        self.fileset = fileset
        self.env = self.proxies[0].env
        self.capacity = capacity_bytes
        self.stores: Dict[int, LRUStore] = {}
        self._segments: Dict[int, object] = {}
        for node in self.cache_nodes():
            self.stores[node.id] = LRUStore(capacity_bytes,
                                            name=f"cache@{node.name}")
            self._segments[node.id] = node.memory.register(
                4096, name=f"cache-seg@{node.name}")
        self.directory = (CacheDirectory(self.directory_nodes(),
                                         fileset.n_docs)
                          if self.USES_DIRECTORY else None)
        self._nodes_by_id = {n.id: n for n in self.cache_nodes()}
        # stats
        self.local_hits = 0
        self.remote_hits = 0
        self.misses = 0
        self.stale_probes = 0

    # -- node sets (overridable) ------------------------------------------
    def cache_nodes(self) -> Sequence[Node]:
        """Nodes that contribute cache memory."""
        return self.proxies

    def directory_nodes(self) -> Sequence[Node]:
        """Nodes that shard the directory (defaults to the cache nodes)."""
        return self.cache_nodes()

    # -- public API -------------------------------------------------------
    def fetch(self, proxy: Node, doc: int) -> Event:
        return self.env.process(self._fetch_wrap(proxy, doc),
                                name=f"{self.NAME}-fetch@{proxy.name}")

    def admit(self, proxy: Node, doc: int) -> Event:
        return self.env.process(self._admit_wrap(proxy, doc),
                                name=f"{self.NAME}-admit@{proxy.name}")

    def _fetch_wrap(self, proxy, doc):
        result = yield from self.fetch_gen(proxy, doc)
        return result

    def _admit_wrap(self, proxy, doc):
        yield from self.admit_gen(proxy, doc)
        return None

    # -- policy hooks --------------------------------------------------------
    def fetch_gen(self, proxy: Node, doc: int):
        raise NotImplementedError
        yield  # pragma: no cover

    def admit_gen(self, proxy: Node, doc: int):
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared mechanics ----------------------------------------------------
    def _check_doc(self, doc: int) -> None:
        if not 0 <= doc < self.fileset.n_docs:
            raise CacheError(f"doc {doc} out of range")

    def _local_get(self, node: Node, doc: int):
        """Generator: local store lookup with copy cost on hit."""
        entry = self.stores[node.id].get(doc)
        if entry is None:
            yield self.env.timeout(LOCAL_LOOKUP_US)
            return None
        size, token = entry
        yield self.env.timeout(
            LOCAL_LOOKUP_US + size * LOCAL_COPY_US_PER_BYTE)
        return token

    def _pull(self, from_node: Node, holder_id: int, doc: int):
        """Generator: one-sided read of ``doc`` out of a peer's cache.

        Returns the token, or None if the peer no longer holds the
        document (stale directory) — the probe round trip is charged.
        """
        seg = self._segments[holder_id]
        entry = self.stores[holder_id].peek(doc)
        if entry is None:
            # stale hint: we still paid a small probe read
            self.stale_probes += 1
            yield from_node.nic.rdma_read(holder_id, seg.addr, seg.rkey,
                                          8, wire_bytes=ENTRY_BYTES)
            return None
        size, token = entry
        self.stores[holder_id].get(doc)  # refresh peer-side recency
        yield from_node.nic.rdma_read(holder_id, seg.addr, seg.rkey, 8,
                                      wire_bytes=size)
        return token

    def _push(self, from_node: Node, target: Node, doc: int):
        """Generator: place ``doc`` into a (possibly remote) store."""
        size = self.fileset.size(doc)
        token = self.fileset.token(doc)
        if target.id != from_node.id:
            seg = self._segments[target.id]
            yield from_node.nic.rdma_write(target.id, seg.addr, seg.rkey,
                                           token, wire_bytes=size)
        else:
            yield self.env.timeout(size * LOCAL_COPY_US_PER_BYTE)
        store = self.stores[target.id]
        evicted = store.insert(doc, size, token)
        obs = self.env.obs
        if obs is not None:
            # evictions are emitted before the admit so the accounting
            # sanitizer sees the store shrink before it grows
            for edoc, esize in evicted:
                obs.trace.emit("cache.evict", node=target.id,
                               doc=edoc, size=esize)
                obs.metrics.counter("cache.evicts", node=target.id).inc()
            obs.trace.emit("cache.admit", node=target.id, doc=doc,
                           size=size, used=store.used,
                           capacity=store.capacity, tok=token.hex())
        yield from self._evict_fixups(from_node, target, evicted)

    def _evict_fixups(self, actor: Node, owner: Node, evicted):
        """Generator: keep the directory consistent after evictions."""
        if self.directory is None:
            return
            yield  # pragma: no cover
        for doc, _size in evicted:
            home = self.directory.host_of(doc)
            if home.id == owner.id:
                # entry lives on the evicting node: fix it in place
                # (zero-cost local memory write by the owner's agent)
                yield from self.directory.clear_if_holder(home, doc,
                                                          owner.id)
            else:
                yield from self.directory.clear_if_holder(actor, doc,
                                                          owner.id)

    # -- reconfiguration support --------------------------------------------
    def retire_node(self, victim: Node, delegate: Node,
                    migrate: bool = True):
        """Generator: hand a caching node over to another service.

        The victim's directory shard moves to ``delegate`` (fresh, i.e.
        empty).  With ``migrate=True`` the victim's cached documents are
        first pushed to the delegate over RDMA and re-registered in the
        relocated shard (cache-aware reconfiguration).  With
        ``migrate=False`` the state is simply lost — the blind
        reallocation whose "cache corruption" the paper's §6 warns
        about.  Either way the victim's store is wiped and no longer
        used for placement.
        """
        if self.directory is None:
            raise CacheError(f"{self.NAME} has no directory to delegate")
        if victim.id not in self.stores:
            raise CacheError(f"node {victim.name} is not a cache node")
        store = self.stores[victim.id]
        docs = list(store.docs())  # LRU -> MRU order
        if migrate:
            # make-before-break: populate the delegate while the old
            # shard and store still serve, then swap in a shard that is
            # already pre-loaded, so readers never observe a gap.
            # Pushing in LRU->MRU order leaves the hot head most recent
            # at the delegate, so any capacity evictions shed the tail.
            for doc in docs:
                yield from self._push(victim, delegate, doc)
            preload = {doc: (delegate.id, self.fileset.size(doc))
                       for doc in docs
                       if doc in self.stores[delegate.id]}
            self.directory.retire_shard(victim.id, delegate,
                                        preload=preload)
        else:
            self.directory.retire_shard(victim.id, delegate)
        obs = self.env.obs
        for doc in docs:
            if obs is not None:
                entry = store.peek(doc)
                if entry is not None:
                    obs.trace.emit("cache.evict", node=victim.id,
                                   doc=doc, size=entry[0])
                    obs.metrics.counter("cache.evicts",
                                        node=victim.id).inc()
            store.remove(doc)
        return None

    # -- stats + trace emission ----------------------------------------------
    def _note_local_hit(self, proxy: Node, doc: int,
                        token: bytes, t0: float) -> None:
        self.local_hits += 1
        self._obs_access("cache.hit.local", proxy, doc,
                         tok=token.hex(), t0=t0)

    def _note_remote_hit(self, proxy: Node, doc: int,
                         token: bytes, t0: float, holder: int) -> None:
        self.remote_hits += 1
        self._obs_access("cache.hit.remote", proxy, doc,
                         tok=token.hex(), t0=t0, holder=holder)

    def _note_miss(self, proxy: Node, doc: int) -> None:
        self.misses += 1
        self._obs_access("cache.miss", proxy, doc)

    _ACCESS_COUNTERS = {
        "cache.hit.local": "cache.local_hits",
        "cache.hit.remote": "cache.remote_hits",
        "cache.miss": "cache.misses",
    }

    def _obs_access(self, etype: str, proxy: Node, doc: int,
                    **extra) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.trace.emit(etype, node=proxy.id, doc=doc, **extra)
            obs.metrics.counter(self._ACCESS_COUNTERS[etype],
                                node=proxy.id).inc()

    # -- diagnostics ---------------------------------------------------------
    @property
    def aggregate_used(self) -> int:
        return sum(s.used for s in self.stores.values())

    @property
    def unique_docs_cached(self) -> int:
        seen = set()
        for store in self.stores.values():
            seen.update(store.docs())
        return len(seen)

    @property
    def total_docs_cached(self) -> int:
        return sum(len(s) for s in self.stores.values())

    def hit_ratio(self) -> float:
        total = self.local_hits + self.remote_hits + self.misses
        if total == 0:
            return 0.0
        return (self.local_hits + self.remote_hits) / total
