"""The five caching policies (paper §5.1, Fig. 6)."""

from __future__ import annotations

from typing import Sequence

from repro.net.node import Node

from repro.cache.base import CoopCacheBase, FetchResult

__all__ = [
    "ApacheCache",
    "BasicCooperativeCache",
    "CacheWithoutRedundancy",
    "MultiTierAggregateCache",
    "HybridCache",
    "SCHEMES",
]

MISS = FetchResult("miss", None)


class ApacheCache(CoopCacheBase):
    """AC — independent per-proxy LRU; no cooperation (the baseline)."""

    NAME = "AC"
    USES_DIRECTORY = False

    def fetch_gen(self, proxy: Node, doc: int):
        self._check_doc(doc)
        t0 = self.env.now
        token = yield from self._local_get(proxy, doc)
        if token is not None:
            self._note_local_hit(proxy, doc, token, t0)
            return FetchResult("local", token)
        self._note_miss(proxy, doc)
        return MISS

    def admit_gen(self, proxy: Node, doc: int):
        yield from self._push(proxy, proxy, doc)


class BasicCooperativeCache(CoopCacheBase):
    """BCC — aggregate the proxy caches over RDMA, duplicates allowed.

    Miss path: local store -> directory -> one-sided pull from the
    holder -> *also* cache locally (duplication buys future local hits
    at the price of aggregate capacity).
    """

    NAME = "BCC"

    def fetch_gen(self, proxy: Node, doc: int):
        self._check_doc(doc)
        t0 = self.env.now
        token = yield from self._local_get(proxy, doc)
        if token is not None:
            self._note_local_hit(proxy, doc, token, t0)
            return FetchResult("local", token)
        holder, _size = yield from self.directory.lookup(proxy, doc)
        if holder is not None and holder != proxy.id:
            t0 = self.env.now  # pull interval starts after the lookup
            token = yield from self._pull(proxy, holder, doc)
            if token is not None:
                self._note_remote_hit(proxy, doc, token, t0, holder)
                # duplicate locally and advertise ourselves as a holder
                yield from self._push(proxy, proxy, doc)
                yield from self.directory.update(proxy, doc, proxy.id,
                                                 self.fileset.size(doc))
                return FetchResult("remote", token)
        self._note_miss(proxy, doc)
        return MISS

    def admit_gen(self, proxy: Node, doc: int):
        yield from self._push(proxy, proxy, doc)
        yield from self.directory.update(proxy, doc, proxy.id,
                                         self.fileset.size(doc))


class CacheWithoutRedundancy(CoopCacheBase):
    """CCWR — exactly one copy cluster-wide, at the document's home.

    Duplicate elimination doubles-to-n-times the effective cache size,
    so large working sets fit; the cost is that (n-1)/n of all hits are
    one-sided remote reads.
    """

    NAME = "CCWR"

    def fetch_gen(self, proxy: Node, doc: int):
        self._check_doc(doc)
        t0 = self.env.now
        home = self.directory.host_of(doc)
        if home.id == proxy.id:
            token = yield from self._local_get(proxy, doc)
            if token is not None:
                self._note_local_hit(proxy, doc, token, t0)
                return FetchResult("local", token)
            self._note_miss(proxy, doc)
            return MISS
        holder, _size = yield from self.directory.lookup(proxy, doc)
        if holder is not None:
            t0 = self.env.now
            token = yield from self._pull(proxy, holder, doc)
            if token is not None:
                self._note_remote_hit(proxy, doc, token, t0, holder)
                return FetchResult("remote", token)
        self._note_miss(proxy, doc)
        return MISS

    def admit_gen(self, proxy: Node, doc: int):
        home = self.directory.host_of(doc)
        yield from self._push(proxy, home, doc)
        yield from self.directory.update(proxy, doc, home.id,
                                         self.fileset.size(doc))


class MultiTierAggregateCache(CacheWithoutRedundancy):
    """MTACC — CCWR whose cache/directory span extra (app-tier) nodes.

    The additional tiers' idle memory raises aggregate capacity; the
    policy is otherwise identical to CCWR.
    """

    NAME = "MTACC"

    def cache_nodes(self) -> Sequence[Node]:
        return list(self.proxies) + list(self.extra)


class HybridCache(CoopCacheBase):
    """HYBCC — duplicate small documents, single-copy large ones.

    Small documents take the BCC-style path (local duplication: the
    extra copies are cheap and convert remote hits into local ones);
    documents above ``threshold`` take the MTACC-style path over the
    full node set (capacity matters more than locality for them).

    The paper picks the scheme "based on a method that can achieve the
    best possible performance"; the 8 KB default threshold is where the
    duplication-vs-capacity crossover lands for the Fig. 6 workloads.
    """

    NAME = "HYBCC"

    def __init__(self, proxy_nodes, fileset, capacity_bytes,
                 extra_nodes=(), threshold: int = 8 * 1024):
        self.threshold = threshold
        super().__init__(proxy_nodes, fileset, capacity_bytes,
                         extra_nodes=extra_nodes)

    def cache_nodes(self) -> Sequence[Node]:
        return list(self.proxies) + list(self.extra)

    def _small(self, doc: int) -> bool:
        return self.fileset.size(doc) <= self.threshold

    def fetch_gen(self, proxy: Node, doc: int):
        self._check_doc(doc)
        t0 = self.env.now
        if self._small(doc):
            # BCC-style: local first, then any advertised holder
            token = yield from self._local_get(proxy, doc)
            if token is not None:
                self._note_local_hit(proxy, doc, token, t0)
                return FetchResult("local", token)
            holder, _size = yield from self.directory.lookup(proxy, doc)
            if holder is not None and holder != proxy.id:
                t0 = self.env.now
                token = yield from self._pull(proxy, holder, doc)
                if token is not None:
                    self._note_remote_hit(proxy, doc, token, t0, holder)
                    yield from self._push(proxy, proxy, doc)
                    yield from self.directory.update(
                        proxy, doc, proxy.id, self.fileset.size(doc))
                    return FetchResult("remote", token)
            self._note_miss(proxy, doc)
            return MISS
        # MTACC-style: single copy at the (extended-set) home
        home = self.directory.host_of(doc)
        if home.id == proxy.id:
            token = yield from self._local_get(proxy, doc)
            if token is not None:
                self._note_local_hit(proxy, doc, token, t0)
                return FetchResult("local", token)
        else:
            holder, _size = yield from self.directory.lookup(proxy, doc)
            if holder is not None:
                t0 = self.env.now
                token = yield from self._pull(proxy, holder, doc)
                if token is not None:
                    self._note_remote_hit(proxy, doc, token, t0, holder)
                    return FetchResult("remote", token)
        self._note_miss(proxy, doc)
        return MISS

    def admit_gen(self, proxy: Node, doc: int):
        if self._small(doc):
            yield from self._push(proxy, proxy, doc)
            yield from self.directory.update(proxy, doc, proxy.id,
                                             self.fileset.size(doc))
        else:
            home = self.directory.host_of(doc)
            yield from self._push(proxy, home, doc)
            yield from self.directory.update(proxy, doc, home.id,
                                             self.fileset.size(doc))


#: scheme registry in the paper's Figure 6 order
SCHEMES = {
    "AC": ApacheCache,
    "BCC": BasicCooperativeCache,
    "CCWR": CacheWithoutRedundancy,
    "MTACC": MultiTierAggregateCache,
    "HYBCC": HybridCache,
}
