"""Byte-capacity LRU store (the in-memory cache of one node)."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.errors import CacheError

__all__ = ["LRUStore"]


class LRUStore:
    """LRU over (doc -> (size, token)) bounded by total bytes."""

    def __init__(self, capacity_bytes: int, name: str = ""):
        if capacity_bytes <= 0:
            raise CacheError("cache capacity must be positive")
        self.capacity = capacity_bytes
        self.name = name
        self._entries: "OrderedDict[int, Tuple[int, bytes]]" = OrderedDict()
        self.used = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc: int) -> bool:
        return doc in self._entries

    def peek(self, doc: int) -> Optional[Tuple[int, bytes]]:
        """(size, token) without touching recency, or None."""
        return self._entries.get(doc)

    def get(self, doc: int) -> Optional[Tuple[int, bytes]]:
        """(size, token) and promote to most-recently-used, or None."""
        entry = self._entries.get(doc)
        if entry is not None:
            self._entries.move_to_end(doc)
        return entry

    def insert(self, doc: int, size: int, token: bytes
               ) -> List[Tuple[int, int]]:
        """Insert/refresh a document; returns evicted (doc, size) pairs."""
        if size <= 0:
            raise CacheError("document size must be positive")
        if size > self.capacity:
            raise CacheError(
                f"document of {size} bytes exceeds cache of {self.capacity}")
        evicted: List[Tuple[int, int]] = []
        old = self._entries.pop(doc, None)
        if old is not None:
            self.used -= old[0]
        while self.used + size > self.capacity:
            victim, (vsize, _tok) = self._entries.popitem(last=False)
            self.used -= vsize
            self.evictions += 1
            evicted.append((victim, vsize))
        self._entries[doc] = (size, token)
        self.used += size
        self.insertions += 1
        return evicted

    def remove(self, doc: int) -> bool:
        entry = self._entries.pop(doc, None)
        if entry is None:
            return False
        self.used -= entry[0]
        return True

    def docs(self):
        return tuple(self._entries)

    def check_invariants(self) -> None:
        assert self.used == sum(s for s, _ in self._entries.values())
        assert 0 <= self.used <= self.capacity
