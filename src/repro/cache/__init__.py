"""Cooperative caching schemes for multi-tier data-centers (paper §5.1).

Five schemes over a common interface (ref [13]):

* :class:`ApacheCache` (AC) — per-proxy LRU, no cooperation (baseline).
* :class:`BasicCooperativeCache` (BCC) — proxies aggregate their caches:
  a miss consults the RDMA-readable directory and pulls the document
  from a peer's memory with a one-sided read; copies may be duplicated.
* :class:`CacheWithoutRedundancy` (CCWR) — exactly one copy cluster-wide
  at the document's home proxy; bigger effective cache, every non-home
  access is remote.
* :class:`MultiTierAggregateCache` (MTACC) — CCWR over an extended node
  set that aggregates memory from additional (app-tier) nodes.
* :class:`HybridCache` (HYBCC) — small documents use the duplicating
  fast path, large documents the single-copy aggregate path.

The schemes move real 8-byte document tokens over the simulated fabric
(timed at full document size) so correctness is checkable end to end.
"""

from repro.cache.base import CoopCacheBase, FetchResult
from repro.cache.directory import CacheDirectory
from repro.cache.schemes import (
    ApacheCache,
    BasicCooperativeCache,
    CacheWithoutRedundancy,
    HybridCache,
    MultiTierAggregateCache,
    SCHEMES,
)
from repro.cache.store import LRUStore

__all__ = [
    "ApacheCache",
    "BasicCooperativeCache",
    "CacheDirectory",
    "CacheWithoutRedundancy",
    "CoopCacheBase",
    "FetchResult",
    "HybridCache",
    "LRUStore",
    "MultiTierAggregateCache",
    "SCHEMES",
]
