"""``python -m repro`` — quick figure regeneration CLI."""

import sys

from repro.cli import main

sys.exit(main())
