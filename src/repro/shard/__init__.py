"""Sharded service namespaces over consistent hashing.

The flat services put every lock home at ``lock_id % members`` and the
whole DDSS directory on one metadata node — fine for a rack, a wall at
datacenter scale.  This package spreads both namespaces across home
nodes with a virtual-node consistent-hash ring seeded from the cluster
RNG (:class:`ShardRing`), resolved by clients through a
:class:`ShardMap` whose staleness is handled the same way as the PR-7
stale-home data path: the contacted daemon *bounces* the request with
the current owner, and the client chases it a bounded number of times.

* :class:`ShardedNCoSEDManager` — N-CoSED lock table whose homes come
  from the ring; failover rehomes a dead member's locks to their ring
  successors.
* :class:`ShardedDDSS` — DDSS whose *directory serving* is sharded:
  every member daemon answers register/lookup/unregister for its ring
  slice, and eviction/restore through
  :class:`repro.reconfig.ReconfigManager` rebalances the ring with the
  existing ``migrate_unit`` machinery.
"""

from repro.shard.ring import ShardMap, ShardRing
from repro.shard.locks import ShardedNCoSEDManager
from repro.shard.directory import ShardedDDSS

__all__ = ["ShardMap", "ShardRing", "ShardedDDSS",
           "ShardedNCoSEDManager"]
