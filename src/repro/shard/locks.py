"""N-CoSED lock manager with consistent-hash lock homes.

The flat manager homes lock ``i`` at ``members[i % len(members)]`` —
fine on one rack, but at datacenter scale it couples every lock's
placement to member order and moves *every* home on membership change.
Here the home comes from a :class:`~repro.shard.ring.ShardRing` seeded
from the cluster RNG: deterministic across processes, and a member's
death moves only the locks it homed (to their ring successors), each
via the existing epoch-fenced ``_rehome`` machinery.

The wire protocol is untouched — clients still CAS/FAA the word at
``home_node(lock_id)``; only the placement function changed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigError
from repro.dlm.ncosed import NCoSEDManager
from repro.net.node import Node

from repro.shard.ring import ShardMap, ShardRing

__all__ = ["ShardedNCoSEDManager"]


class ShardedNCoSEDManager(NCoSEDManager):
    """:class:`NCoSEDManager` whose lock homes come from a shard ring."""

    SCHEME = "ncosed-shard"

    def __init__(self, cluster, n_locks: int = 64,
                 member_nodes: Optional[Sequence[Node]] = None, *,
                 vnodes: int = 16, **kwargs):
        members = list(member_nodes or cluster.nodes)
        if not members:
            raise ConfigError("sharded lock manager needs member nodes")
        self.shard_map = ShardMap(ShardRing(
            [n.id for n in members], seed=cluster.rng.seed,
            vnodes=vnodes))
        self._member_by_id: Dict[int, Node] = {n.id: n for n in members}
        #: lock -> ring owner id, invalidated wholesale on epoch change
        self._owner_cache: Dict[int, int] = {}
        self._cache_ep = self.shard_map.epoch
        super().__init__(cluster, n_locks=n_locks,
                         member_nodes=members, **kwargs)

    # -- placement ---------------------------------------------------------
    def home_node(self, lock_id: int) -> Node:
        self._check_lock(lock_id)
        override = self._home_override.get(lock_id)
        if override is not None:
            return self._member_by_id[override]
        if self.shard_map.epoch != self._cache_ep:
            self._owner_cache.clear()
            self._cache_ep = self.shard_map.epoch
        nid = self._owner_cache.get(lock_id)
        if nid is None:
            nid = self._owner_cache[lock_id] = self.shard_map.owner(
                lock_id)
        return self._member_by_id[nid]

    # -- failover ----------------------------------------------------------
    def _on_detector(self, node_id: int, transition: str) -> None:
        """Dead member: drop it from the ring, rehome its locks to
        their ring successors.

        The victim set is computed *before* the ring removal — after
        it, ``home_node`` already maps those locks to the new owners,
        and the epoch bump + holder expunge of ``_rehome`` would never
        run.  Restores stay ignored, same as the base policy: a lock
        keeps its failover home (the ``_home_override``) until the next
        failure, and the ring keeps the member out — new resolutions
        spread over the survivors.
        """
        if transition != "dead" or node_id not in self._member_by_id:
            return
        victims = [(lid, self.home_node(lid))
                   for lid in range(self.n_locks)
                   if self.home_node(lid).id == node_id]
        if (node_id in self.shard_map.members
                and len(self.shard_map.members) > 1):
            self.shard_map.remove(node_id)
            self._obs_rebalance("evict", node_id)
        avoid = set(getattr(self.detector, "unreachable_ids", ()))
        avoid.add(node_id)
        for nid in self._member_by_id:
            if self._node_dead(nid):
                avoid.add(nid)
        for lock_id, old_home in victims:
            try:
                new_id = self.shard_map.owner(lock_id, avoid=avoid)
            except ConfigError:
                continue
            self._rehome(lock_id, old_home, self._member_by_id[new_id])

    def _obs_rebalance(self, kind: str, node_id: int) -> None:
        obs = self.env.obs
        if obs is None:
            return
        obs.trace.emit("shard.rebalance", node=-1, mgr=self.obs_name,
                       kind=kind, mnode=node_id,
                       ep=self.shard_map.epoch,
                       members=len(self.shard_map.members))
        obs.metrics.counter("shard.rebalances").inc()
