"""DDSS with the metadata directory sharded across member daemons.

The flat substrate funnels every register/lookup/unregister through one
metadata node; here each member's daemon serves the ring slice a
consistent-hash :class:`~repro.shard.ring.ShardMap` assigns it, and a
daemon contacted with someone else's key replies with a **bounce**
carrying the current owner and map epoch — the client chases the hint a
bounded number of times (the control-plane twin of the data plane's
tombstone + re-resolve).  New units are also *homed* by the ring when
the caller gives no explicit placement, so directory authority and data
tend to be co-located.

Eviction through :class:`repro.reconfig.ReconfigManager` drops the
member from the ring before the existing ``migrate_unit`` machinery
moves its units — each to its new ring owner, not round-robin — and a
restore re-adds it, so clients with cached owners exercise the bounce
path under rebalance.

The backing ``_directory`` dict stays physically shared between
daemons, as in the base class: what this models is the *serving*
topology — which daemon answers for which key, where requests queue,
how stale maps are healed — not a replicated metadata store.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigError, DDSSError
from repro.ddss.substrate import DDSS
from repro.net.cluster import Cluster
from repro.net.node import Node

from repro.shard.ring import ShardMap, ShardRing

__all__ = ["ShardedDDSS"]


class ShardedDDSS(DDSS):
    """:class:`DDSS` whose directory serving is spread over the ring."""

    def __init__(self, cluster: Cluster,
                 member_nodes: Optional[Sequence[Node]] = None,
                 segment_bytes: int = 1 << 20,
                 meta_node: Optional[Node] = None, *,
                 vnodes: int = 16):
        super().__init__(cluster, member_nodes=member_nodes,
                         segment_bytes=segment_bytes,
                         meta_node=meta_node)
        self.dir_map = ShardMap(ShardRing(
            [m.id for m in self.members], seed=cluster.rng.seed,
            vnodes=vnodes))

    # -- directory routing ---------------------------------------------
    def dir_node(self, key: int) -> int:
        return self.dir_map.owner(key)

    def register_target(self) -> Tuple[int, Optional[int]]:
        key = next(self._next_key)
        return self.dir_map.owner(key), key

    def data_home(self, key: Optional[int],
                  placement: Optional[int]) -> int:
        if placement is None and key is not None:
            home = self.dir_map.owner(key)
            if home in self._segments:
                return home
        return self.pick_home(placement)

    def _dir_reject(self, node: Node, op: str,
                    key: Optional[int]) -> Optional[dict]:
        if key is None:  # pragma: no cover - defensive
            return {"error": f"{op} without a key on a sharded "
                             f"directory"}
        owner = self.dir_map.owner(key)
        if node.id != owner:
            return {"bounce": self.dir_map.epoch, "owner": owner}
        return None

    # -- rebalancing ---------------------------------------------------
    def migrate_off(self, node_id: int,
                    avoid: Sequence[int] = ()) -> int:
        """Drop ``node_id`` from the ring and move its units to their
        new ring owners.

        The ring removal comes first so ``dir_map.owner`` already
        reflects the post-eviction world when new homes are picked —
        directory authority and data move together.
        """
        if node_id in self.dir_map.members and len(self.dir_map) > 1:
            self.dir_map.remove(node_id)
            self._obs_rebalance("evict", node_id)
        banned = {node_id, *avoid}
        if not [m.id for m in self.members if m.id not in banned]:
            raise DDSSError("no live member left to rebalance onto")
        moved = 0
        victims = sorted(k for k, m in self._directory.items()
                         if m.home == node_id and not m.replicas)
        for key in victims:
            try:
                self.migrate_unit(key,
                                  self.dir_map.owner(key, avoid=banned))
            except (DDSSError, ConfigError):
                continue  # busy/full target or all owners banned
            moved += 1
        return moved

    def ring_restore(self, node_id: int) -> None:
        """Re-admit a restored member to the ring (ReconfigManager
        calls this after service restore).  Units are not moved back —
        new registrations simply start landing on the member again."""
        if (any(m.id == node_id for m in self.members)
                and node_id not in self.dir_map.members):
            self.dir_map.add(node_id)
            self._obs_rebalance("restore", node_id)

    def _obs_rebalance(self, kind: str, node_id: int) -> None:
        obs = self.env.obs
        if obs is None:
            return
        obs.trace.emit("shard.rebalance", node=self.meta_node.id,
                       mgr="ddss-dir", kind=kind, mnode=node_id,
                       ep=self.dir_map.epoch,
                       members=len(self.dir_map.members))
        obs.metrics.counter("shard.rebalances").inc()
