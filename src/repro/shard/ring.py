"""Consistent-hash ring with virtual nodes, deterministic from a seed.

Every hash is the pure-integer SplitMix64 derivation already used for
lab shard seeding (:func:`repro.sim.rng.spawn_child`), so the ring is
bit-identical across processes and platforms: same ``(seed, members,
vnodes)`` → same assignment, no Python ``hash()`` randomization, no
numpy state.  Key points and member points draw from separated domains
(a salt on the key side) so a key can never systematically collide with
a member's base point.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError
from repro.sim.rng import spawn_child

__all__ = ["ShardRing", "ShardMap"]

#: domain separator between key hashes and member vnode hashes
_KEY_SALT = 0x6B65795F72696E67  # "key_ring"


class ShardRing:
    """Maps integer keys to member node ids via consistent hashing.

    ``vnodes`` virtual points per member smooth the load split; removing
    a member moves only the keys it owned (to their ring successors),
    which is what makes rebalance-on-eviction incremental.
    """

    def __init__(self, node_ids: Iterable[int], seed: int = 0,
                 vnodes: int = 16):
        if vnodes < 1:
            raise ConfigError("need at least one virtual node per member")
        self.seed = seed
        self.vnodes = vnodes
        self._members: set = set()
        #: sorted [(point, node_id)]; duplicates impossible in practice
        #: (64-bit points), ties broken by node id either way
        self._ring: List[Tuple[int, int]] = []
        for nid in node_ids:
            self.add(nid)
        if not self._ring:
            raise ConfigError("ring needs at least one member")

    # -- membership --------------------------------------------------------
    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def _points(self, node_id: int) -> List[int]:
        base = spawn_child(self.seed, node_id)
        return [spawn_child(base, v) for v in range(self.vnodes)]

    def add(self, node_id: int) -> None:
        if node_id in self._members:
            raise ConfigError(f"node {node_id} already on the ring")
        self._members.add(node_id)
        for pt in self._points(node_id):
            insort(self._ring, (pt, node_id))

    def remove(self, node_id: int) -> None:
        if node_id not in self._members:
            raise ConfigError(f"node {node_id} not on the ring")
        if len(self._members) == 1:
            raise ConfigError("cannot remove the last ring member")
        self._members.discard(node_id)
        self._ring = [e for e in self._ring if e[1] != node_id]

    # -- resolution --------------------------------------------------------
    def key_point(self, key: int) -> int:
        return spawn_child(self.seed ^ _KEY_SALT, key)

    def owner(self, key: int, avoid: Iterable[int] = ()) -> int:
        """First ring member at or after the key's point, skipping
        ``avoid`` (walk the successors, wrap at the top)."""
        ring = self._ring
        avoid = frozenset(avoid)
        idx = bisect_left(ring, (self.key_point(key), -1))
        n = len(ring)
        for step in range(n):
            nid = ring[(idx + step) % n][1]
            if nid not in avoid:
                return nid
        raise ConfigError("every ring member is avoided")

    def assignment(self, keys: Iterable[int]) -> Dict[int, int]:
        return {k: self.owner(k) for k in keys}

    def to_json(self) -> dict:
        """Canonical description, for cross-process determinism checks."""
        return {"seed": self.seed, "vnodes": self.vnodes,
                "members": sorted(self._members),
                "ring": [[p, n] for p, n in self._ring]}


class ShardMap:
    """A versioned view of a ring: the epoch bumps on every rebalance.

    Servers hold the authoritative map; clients cache resolved owners
    and learn of staleness through *bounce* replies carrying the
    current owner (the control-plane analogue of the data plane's
    tombstone + directory re-resolve)."""

    def __init__(self, ring: ShardRing):
        self.ring = ring
        self.epoch = 0
        #: (epoch, "add"|"remove", node_id) history, for tests
        self.rebalances: List[Tuple[int, str, int]] = []

    @property
    def members(self) -> frozenset:
        return self.ring.members

    def __len__(self) -> int:
        return len(self.ring)

    def owner(self, key: int, avoid: Iterable[int] = ()) -> int:
        return self.ring.owner(key, avoid)

    def add(self, node_id: int) -> None:
        self.ring.add(node_id)
        self.epoch += 1
        self.rebalances.append((self.epoch, "add", node_id))

    def remove(self, node_id: int) -> None:
        self.ring.remove(node_id)
        self.epoch += 1
        self.rebalances.append((self.epoch, "remove", node_id))
