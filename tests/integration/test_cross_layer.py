"""Integration tests spanning multiple framework layers."""

import pytest

from repro.net import Cluster, NetworkParams
from repro.ddss import DDSS, Coherence
from repro.dlm import LockMode, NCoSEDManager
from repro.cache import HybridCache
from repro.datacenter import DataCenter
from repro.monitor import KernelStats, RdmaSyncMonitor
from repro.workloads import FileSet


class TestDdssWithDlm:
    """DDSS units guarded by the N-CoSED lock manager: a read-modify-
    write counter incremented concurrently from several nodes must not
    lose updates."""

    def test_no_lost_updates_under_ncosed(self):
        cluster = Cluster(n_nodes=5, seed=11)
        ddss = DDSS(cluster)
        dlm = NCoSEDManager(cluster, n_locks=1)
        writer_nodes = cluster.nodes[1:]
        increments_per_writer = 5
        state = {}

        def setup(env):
            client = ddss.client(cluster.nodes[0])
            state["key"] = yield client.allocate(
                8, coherence=Coherence.NULL, placement=0)
            yield client.put(state["key"], (0).to_bytes(8, "big"))

        p = cluster.env.process(setup(cluster.env))
        cluster.env.run_until_event(p)

        def writer(env, node):
            client = ddss.client(node)
            lock = dlm.client(node)
            for _ in range(increments_per_writer):
                yield lock.acquire(0, LockMode.EXCLUSIVE)
                raw = yield client.get(state["key"])
                value = int.from_bytes(raw, "big")
                yield client.put(state["key"],
                                 (value + 1).to_bytes(8, "big"))
                yield lock.release(0)
                yield env.timeout(50.0)

        procs = [cluster.env.process(writer(cluster.env, n))
                 for n in writer_nodes]
        done = cluster.env.all_of(procs)
        cluster.env.run_until_event(done, limit=1e9)

        def check(env):
            client = ddss.client(cluster.nodes[0])
            raw = yield client.get(state["key"])
            return int.from_bytes(raw, "big")

        p = cluster.env.process(check(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value == len(writer_nodes) * increments_per_writer

    def test_lost_updates_happen_without_locking(self):
        """Sanity check that the lock above is doing real work: the same
        read-modify-write pattern *without* locks loses updates."""
        cluster = Cluster(n_nodes=5, seed=11)
        ddss = DDSS(cluster)
        state = {}

        def setup(env):
            client = ddss.client(cluster.nodes[0])
            state["key"] = yield client.allocate(
                8, coherence=Coherence.NULL, placement=0)
            yield client.put(state["key"], (0).to_bytes(8, "big"))

        p = cluster.env.process(setup(cluster.env))
        cluster.env.run_until_event(p)

        def writer(env, node):
            client = ddss.client(node)
            for _ in range(5):
                raw = yield client.get(state["key"])
                value = int.from_bytes(raw, "big")
                yield client.put(state["key"],
                                 (value + 1).to_bytes(8, "big"))

        procs = [cluster.env.process(writer(cluster.env, n))
                 for n in cluster.nodes[1:]]
        cluster.env.run_until_event(cluster.env.all_of(procs), limit=1e9)

        def check(env):
            client = ddss.client(cluster.nodes[0])
            raw = yield client.get(state["key"])
            return int.from_bytes(raw, "big")

        p = cluster.env.process(check(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value < 20  # racy increments collide


class TestCacheInsideDataCenter:
    def test_hybcc_beats_ac_on_large_files(self):
        """End-to-end Fig 6 shape on a small configuration."""

        def tps_for(scheme):
            dc = DataCenter(n_proxies=2, n_app=2, scheme=scheme,
                            n_docs=300, doc_bytes=32 * 1024,
                            cache_bytes=1024 * 1024, n_sessions=12,
                            seed=9)
            return dc.run_tps(warmup_us=50_000, measure_us=150_000)

        assert tps_for("HYBCC") > 1.2 * tps_for("AC")

    def test_tokens_verified_through_whole_stack(self):
        """verify_tokens=True in the proxy asserts every served byte,
        so a clean run is an end-to-end content-correctness proof."""
        dc = DataCenter(n_proxies=3, n_app=1, scheme="CCWR",
                        n_docs=100, doc_bytes=4096,
                        cache_bytes=128 * 1024, n_sessions=8, seed=10)
        dc.run_tps(warmup_us=20_000, measure_us=60_000)
        assert dc.metrics.completed > 50


class TestMonitorOverRealServers:
    def test_monitor_sees_datacenter_load(self):
        """An RDMA monitor attached to a data-center's app tier reports
        the load the workload actually creates."""
        dc = DataCenter(n_proxies=2, n_app=2, scheme="AC",
                        n_docs=500, doc_bytes=16 * 1024,
                        cache_bytes=64 * 1024, n_sessions=16, seed=12)
        stats = {n.id: KernelStats(n) for n in dc.app_nodes}
        monitor = RdmaSyncMonitor(dc.proxy_nodes[0], stats)
        dc.clients.start()
        dc.env.run(until=50_000)
        seen = {}

        def probe(env):
            for nid in monitor.back_ids:
                report = yield monitor.query(nid)
                seen[nid] = report["n_threads"]

        p = dc.env.process(probe(dc.env))
        dc.env.run_until_event(p)
        # AC at this working set misses a lot: the app tier must be busy
        assert sum(seen.values()) > 0


class TestTransportSubstitution:
    def test_datacenter_runs_on_10gige(self):
        """The whole stack also runs over the 10GigE parameter set
        (the paper's second platform)."""
        dc = DataCenter(n_proxies=2, n_app=1, scheme="BCC",
                        n_docs=60, doc_bytes=4096,
                        cache_bytes=64 * 1024, n_sessions=6,
                        params=NetworkParams.infiniband().with_(
                            name="ib-fast", bandwidth_bpus=1800.0),
                        seed=13)
        assert dc.run_tps(warmup_us=10_000, measure_us=40_000) > 0

    def test_faster_network_helps_cooperative_caching(self):
        def tps(bw):
            dc = DataCenter(n_proxies=2, n_app=1, scheme="CCWR",
                            n_docs=200, doc_bytes=32 * 1024,
                            cache_bytes=2 * 1024 * 1024, n_sessions=10,
                            params=NetworkParams.infiniband().with_(
                                bandwidth_bpus=bw),
                            seed=14)
            return dc.run_tps(warmup_us=20_000, measure_us=80_000)

        assert tps(1800.0) > tps(200.0)
