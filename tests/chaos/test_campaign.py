"""Campaign determinism, seeded-bug finding + shrinking, and the
``repro chaos`` CLI surface."""

import json
import os

from repro.chaos import (chaos_run_scenario, find_failing, run_campaign,
                         shrink_schedule)
from repro.cli import main

# seed 2 of locks-nofence fails at index 3 with a single-fault schedule
# (a minority partition) — cheap enough to re-run in tests
BUG_SEED = 2
BUG_INDEX = 3


class TestRunRecord:
    def test_record_shape_and_verdict(self):
        rec = chaos_run_scenario(seed=3, scenario="locks", index=0)
        assert rec["verdict"] == "ok" and rec["violations"] == 0
        assert rec["scenario"] == "locks" and rec["index"] == 0
        assert rec["fence"] is True
        assert rec["events"] > 0
        assert len(rec["trace_sha"]) == 16  # canonical digest prefix
        assert len(rec["faults"]) == len(rec["schedule"])
        json.dumps(rec)  # records must stay JSON-able end to end

    def test_same_seed_same_record(self):
        a = chaos_run_scenario(seed=3, scenario="locks", index=1)
        b = chaos_run_scenario(seed=3, scenario="locks", index=1)
        assert a == b
        assert a["trace_sha"] == b["trace_sha"]


class TestCampaign:
    def test_clean_campaign_is_deterministic(self):
        kw = dict(scenarios=("locks",), seed=11, n_schedules=2)
        a = run_campaign(**kw)
        b = run_campaign(**kw)
        assert a["verdict"] == "ok"
        assert a["violations"] == [] and a["kernel_mismatches"] == []
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)

    def test_seeded_bug_lands_in_findings_not_violations(self):
        v = run_campaign(scenarios=("locks-nofence",), seed=BUG_SEED,
                         n_schedules=BUG_INDEX + 1)
        assert v["verdict"] == "ok"  # findings are expected, not failures
        assert v["violations"] == []
        hits = [f for f in v["findings"] if f["index"] == BUG_INDEX]
        assert hits
        assert any("split-brain" in m for f in hits for m in f["msgs"])

    def test_unknown_scenario_fails_fast(self):
        import pytest

        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="nope"):
            run_campaign(scenarios=("nope",), seed=0, n_schedules=1)


class TestShrink:
    def test_shrinks_seeded_bug_to_minimal_reproducer(self):
        hit = find_failing("locks-nofence", BUG_SEED,
                           n_schedules=BUG_INDEX + 1)
        assert hit is not None and hit["index"] == BUG_INDEX
        rep = shrink_schedule("locks-nofence", hit["schedule"], BUG_SEED)
        assert rep["failed"] is True
        assert rep["kept_faults"] <= 3  # acceptance: <= 3-fault reproducer
        assert rep["kept_faults"] <= rep["original_faults"]
        assert len(rep["labels"]) == rep["kept_faults"]
        # the reproducer itself must still fail when replayed
        from repro.chaos import schedule_fails
        bad, _rec = schedule_fails("locks-nofence", rep["schedule"],
                                   BUG_SEED)
        assert bad

    def test_passing_schedule_reports_not_failed(self):
        rep = shrink_schedule("locks", [], 0)  # no faults: clean run
        assert rep["failed"] is False


class TestChaosCli:
    def test_list_names_scenarios(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        assert "locks" in out and "ddss" in out and "SEEDED BUG" in out

    def test_run_report_cycle(self, tmp_path, capsys):
        verdict_path = str(tmp_path / "verdict.json")
        assert main(["chaos", "run", "locks", "--seed", "11",
                     "--schedules", "2", "--json", verdict_path]) == 0
        out = capsys.readouterr().out
        assert "verdict=ok" in out
        doc = json.load(open(verdict_path))
        assert doc["format"] == "repro-chaos-v1" and doc["runs"] == 2

        assert main(["chaos", "report", verdict_path]) == 0
        assert "verdict=ok" in capsys.readouterr().out

    def test_replay_prints_record_and_writes_json(self, tmp_path, capsys):
        rec_path = str(tmp_path / "rec.json")
        assert main(["chaos", "replay", "locks", "--seed", "3",
                     "--index", "0", "--json", rec_path]) == 0
        assert "verdict" in capsys.readouterr().out
        assert os.path.exists(rec_path)

    def test_replay_from_reproducer_file_exits_nonzero(self, tmp_path,
                                                       capsys):
        # a shrink report is a valid --schedule input for replay
        hit = find_failing("locks-nofence", BUG_SEED,
                           n_schedules=BUG_INDEX + 1)
        sched_path = str(tmp_path / "repro.json")
        with open(sched_path, "w") as fh:
            json.dump({"schedule": hit["schedule"]}, fh)
        rc = main(["chaos", "replay", "locks-nofence", "--seed",
                   str(BUG_SEED), "--schedule", sched_path])
        assert rc == 1  # violations replay exits non-zero
        assert "split-brain" in capsys.readouterr().out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["chaos", "replay", "nope"]) == 2
        assert "unknown chaos scenario" in capsys.readouterr().err
