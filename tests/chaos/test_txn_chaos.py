"""Chaos acceptance for transactions: under injected crash/partition/
slow/drop faults, committed transactions survive failover, in-flight
transactions abort cleanly (never wedge, never tear), and the combined
oracle stack (TxnOracle + HAOracle + the rest) stays green."""

import pytest

from repro.chaos import SCENARIOS, chaos_run_scenario, run_schedule
from repro.verify import TxnOracle, TraceView, replay_fresh
from repro.verify.suites import _kernel

N_SCHEDULES = 4


class TestTxnChaosRecords:
    @pytest.mark.parametrize("index", range(N_SCHEDULES))
    def test_sampled_schedules_stay_clean(self, index):
        rec = chaos_run_scenario(seed=7, scenario="txn", index=index)
        assert rec["verdict"] == "ok", rec["violation_msgs"]
        assert rec["violations"] == 0
        assert rec["events"] > 0
        assert len(rec["faults"]) >= 1

    def test_records_are_deterministic(self):
        a = chaos_run_scenario(seed=7, scenario="txn", index=0)
        b = chaos_run_scenario(seed=7, scenario="txn", index=0)
        assert a == b

    def test_slow_kernel_agrees(self):
        fast = chaos_run_scenario(seed=7, scenario="txn", index=1,
                                  kernel="fast")
        slow = chaos_run_scenario(seed=7, scenario="txn", index=1,
                                  kernel="slow")
        assert fast["verdict"] == slow["verdict"] == "ok"
        assert fast["trace_sha"] == slow["trace_sha"]


class TestFailoverSemantics:
    """White-box: build the scenario trace and inspect txn.* outcomes."""

    def _trace(self, schedule, seed=7):
        sc = SCENARIOS["txn"]
        with _kernel("fast"):
            obs = sc.builder(seed, sc.n_nodes, list(schedule), True)
        return TraceView.from_obs(obs).require_complete()

    def _crash_schedule(self):
        """A schedule with at least one crash, sampled from the space."""
        space = SCENARIOS["txn"].space()
        for index in range(16):
            schedule = space.sample(seed=7, index=index)
            if any(f["kind"] == "crash" for f in schedule):
                return schedule
        pytest.fail("no crash schedule in the first 16 samples")

    def test_commits_survive_crash_and_aborts_are_clean(self):
        schedule = self._crash_schedule()
        view = self._trace(schedule)
        etypes = [ev.etype for ev in view.events]
        committed = {ev.fields["tid"] for ev in view.events
                     if ev.etype == "txn.commit"}
        assert committed, "chaos run must still commit transactions"
        # in-flight work aborts cleanly: nothing wedges mid-publish
        assert "txn.wedged" not in etypes
        # faults actually bit the lock path: the schedule is non-vacuous
        assert "ha.expect" in etypes
        # the serializability oracle judges the chaos trace and is clean
        oracles, violations = replay_fresh(view, [TxnOracle])
        assert violations == []
        assert oracles[0].checked > 0

    def test_aborted_attempts_never_published(self):
        """Every abort in a chaos trace must be install-free — the
        TxnOracle dirty-write check has real traffic to chew on."""
        schedule = self._crash_schedule()
        view = self._trace(schedule)
        aborted = {(ev.fields["tid"], ev.fields["attempt"])
                   for ev in view.events if ev.etype == "txn.abort"}
        installs = {(ev.fields["tid"], ev.fields["attempt"])
                    for ev in view.events if ev.etype == "txn.install"}
        assert not (aborted & installs)

    def test_every_schedule_kind_appears_across_samples(self):
        space = SCENARIOS["txn"].space()
        kinds = set()
        for index in range(12):
            for f in space.sample(seed=7, index=index):
                kinds.add(f["kind"])
        assert {"crash", "partition"} <= kinds

    def test_unfenced_run_still_txn_safe(self):
        """Without the quorum fence HA bounds may flex, but transaction
        safety (TxnOracle) must hold regardless."""
        schedule = self._crash_schedule()
        rec = run_schedule("txn", schedule, seed=7, fence=False)
        txn_msgs = [m for m in rec["violation_msgs"]
                    if m.startswith("serializability")
                    or "lost update" in m or "dirty" in m
                    or "torn" in m]
        assert txn_msgs == []
